package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dpm"
	"repro/internal/faultfs"
	"repro/internal/trace"
)

func newDurableServer(t *testing.T, opts Options) *Server {
	t.Helper()
	if opts.DataDir == "" {
		opts.DataDir = t.TempDir()
	}
	s, err := Open(opts)
	if err != nil {
		t.Fatalf("open durable server: %v", err)
	}
	t.Cleanup(func() { s.Drain() })
	return s
}

// reopen drains a durable server and opens a fresh one on the same data
// dir — the crash-free restart.
func reopen(t *testing.T, s *Server, opts Options) *Server {
	t.Helper()
	s.Drain()
	opts.DataDir = s.opts.DataDir
	return newDurableServer(t, opts)
}

func applyKeyed(t *testing.T, s *Server, id, key string, ops []dpm.Operation) *ApplyResponse {
	t.Helper()
	resp, replayed, err := s.ApplyKeyed(id, key, ops)
	if err != nil {
		t.Fatalf("apply %s key %q: %v", id, key, err)
	}
	if replayed {
		t.Fatalf("fresh key %q reported replayed", key)
	}
	return resp
}

// TestRestartRecoversByteIdenticalState is the tentpole acceptance
// check at the API layer: after a drain and reopen on the same data
// dir, every session's serialized state is byte-identical to the
// pre-restart snapshot, and new creates do not collide with recovered
// ids.
func TestRestartRecoversByteIdenticalState(t *testing.T) {
	opts := Options{Shards: 2}
	s := newDurableServer(t, opts)

	byName, err := s.CreateSession(CreateSpec{Name: "simplified", Mode: dpm.ADPM, MaxOps: 60})
	if err != nil {
		t.Fatal(err)
	}
	src := `scenario tiny
object O owner d {
    property x real [0, 10]
}
constraint c1: x >= 1
problem P owner d {
    outputs { x }
    constraints { c1 }
}
`
	bySource, err := s.CreateSession(CreateSpec{Source: src, Mode: dpm.ADPM, MaxOps: 40})
	if err != nil {
		t.Fatal(err)
	}
	applyKeyed(t, s, byName.ID, "k1", []dpm.Operation{
		synth("AmpDesign", "Width", 3),
		{Kind: dpm.OpVerification, Problem: "AmpDesign", Designer: "test"},
	})
	applyKeyed(t, s, byName.ID, "", []dpm.Operation{synth("AmpDesign", "Bias", 4)})
	applyKeyed(t, s, bySource.ID, "k2", []dpm.Operation{synth("P", "x", 2)})

	want := map[string][]byte{
		byName.ID:   stateJSON(t, s, byName.ID),
		bySource.ID: stateJSON(t, s, bySource.ID),
	}

	s2 := reopen(t, s, opts)
	for id, w := range want {
		if got := stateJSON(t, s2, id); !bytes.Equal(got, w) {
			t.Errorf("recovered state of %s differs:\n pre:  %s\n post: %s", id, w, got)
		}
	}
	// Sequence restoration: a post-restart create must mint a fresh id.
	fresh, err := s2.CreateSession(CreateSpec{Name: "simplified", Mode: dpm.ADPM, MaxOps: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, dup := want[fresh.ID]; dup {
		t.Fatalf("post-restart create reused recovered id %s", fresh.ID)
	}

	// A third generation still agrees — recovery is idempotent.
	s3 := reopen(t, s2, opts)
	for id, w := range want {
		if got := stateJSON(t, s3, id); !bytes.Equal(got, w) {
			t.Errorf("second recovery of %s diverged", id)
		}
	}
}

// TestParkRestoreTransparent: on a durable server idle eviction parks
// the session; the next touch restores it with identical state instead
// of 404ing (the non-durable behavior).
func TestParkRestoreTransparent(t *testing.T) {
	var clock atomic.Int64
	opts := Options{
		Shards:      1,
		IdleTimeout: time.Minute,
		SweepEvery:  time.Hour,
		nowFn:       func() time.Time { return time.Unix(0, clock.Load()) },
	}
	s := newDurableServer(t, opts)
	c, err := s.CreateSession(CreateSpec{Name: "receiver", Mode: dpm.ADPM})
	if err != nil {
		t.Fatal(err)
	}
	applyKeyed(t, s, c.ID, "k", []dpm.Operation{synth("AnalogFE", "Diff_pair_W", 3)})
	want := stateJSON(t, s, c.ID)

	clock.Store(int64(2 * time.Minute))
	if n := s.Sweep(); n != 1 {
		t.Fatalf("sweep evicted %d, want 1", n)
	}
	st := s.Stats().Shards[0]
	if st.Parked != 1 || st.Sessions != 0 || st.Evicted != 1 {
		t.Fatalf("post-park gauges %+v, want 1 parked / 0 live", st)
	}

	if got := stateJSON(t, s, c.ID); !bytes.Equal(got, want) {
		t.Errorf("restored state differs:\n pre:  %s\n post: %s", want, got)
	}
	st = s.Stats().Shards[0]
	if st.Parked != 0 || st.Sessions != 1 || st.Restored != 1 {
		t.Errorf("post-restore gauges %+v, want 1 live / 1 restored", st)
	}
	// The restored session keeps working.
	applyKeyed(t, s, c.ID, "", []dpm.Operation{
		{Kind: dpm.OpVerification, Problem: "AnalogFE", Designer: "test"},
	})
}

// TestIdempotentApply: a keyed batch applies exactly once — retries get
// the cached acknowledgement, including after park/restore and after a
// full restart (the key rides in the WAL).
func TestIdempotentApply(t *testing.T) {
	opts := Options{Shards: 1}
	s := newDurableServer(t, opts)
	c, err := s.CreateSession(CreateSpec{Name: "simplified", Mode: dpm.ADPM, MaxOps: 50})
	if err != nil {
		t.Fatal(err)
	}
	batch := []dpm.Operation{synth("AmpDesign", "Width", 3)}
	first := applyKeyed(t, s, c.ID, "once", batch)
	firstJSON, _ := json.Marshal(first)
	want := stateJSON(t, s, c.ID)

	retry, replayed, err := s.ApplyKeyed(c.ID, "once", batch)
	if err != nil || !replayed {
		t.Fatalf("retry: replayed=%v err=%v, want replayed ack", replayed, err)
	}
	retryJSON, _ := json.Marshal(retry)
	if !bytes.Equal(firstJSON, retryJSON) {
		t.Errorf("replayed ack differs:\n first: %s\n retry: %s", firstJSON, retryJSON)
	}
	if got := stateJSON(t, s, c.ID); !bytes.Equal(got, want) {
		t.Errorf("retried key mutated state")
	}

	s2 := reopen(t, s, opts)
	retry2, replayed, err := s2.ApplyKeyed(c.ID, "once", batch)
	if err != nil || !replayed {
		t.Fatalf("post-restart retry: replayed=%v err=%v", replayed, err)
	}
	retry2JSON, _ := json.Marshal(retry2)
	if !bytes.Equal(firstJSON, retry2JSON) {
		t.Errorf("post-restart replayed ack differs:\n first: %s\n retry: %s", firstJSON, retry2JSON)
	}
	if got := stateJSON(t, s2, c.ID); !bytes.Equal(got, want) {
		t.Errorf("post-restart retried key mutated state")
	}
}

// TestDeleteDurable: deletes are logged, so a deleted session stays
// deleted across restart, and deleting a parked session works without
// restoring it.
func TestDeleteDurable(t *testing.T) {
	var clock atomic.Int64
	opts := Options{
		Shards:      1,
		IdleTimeout: time.Minute,
		SweepEvery:  time.Hour,
		nowFn:       func() time.Time { return time.Unix(0, clock.Load()) },
	}
	s := newDurableServer(t, opts)
	live, err := s.CreateSession(CreateSpec{Name: "simplified", Mode: dpm.ADPM})
	if err != nil {
		t.Fatal(err)
	}
	parked, err := s.CreateSession(CreateSpec{Name: "simplified", Mode: dpm.ADPM})
	if err != nil {
		t.Fatal(err)
	}
	applyKeyed(t, s, parked.ID, "", []dpm.Operation{synth("AmpDesign", "Width", 3)})

	clock.Store(int64(2 * time.Minute))
	if n := s.Sweep(); n != 2 {
		t.Fatalf("sweep evicted %d, want 2", n)
	}
	// Touch one back to live; delete both (one live, one parked).
	if _, err := s.State(live.ID); err != nil {
		t.Fatal(err)
	}
	sum, err := s.Delete(parked.ID)
	if err != nil {
		t.Fatalf("delete parked: %v", err)
	}
	if !sum.Deleted || sum.Operations != 1 {
		t.Errorf("parked delete summary %+v, want Deleted with its 1 op accounted", sum)
	}
	if _, err := s.Delete(live.ID); err != nil {
		t.Fatal(err)
	}

	s2 := reopen(t, s, opts)
	for _, id := range []string{live.ID, parked.ID} {
		if _, err := s2.State(id); !errors.Is(err, ErrUnknownSession) {
			t.Errorf("deleted session %s resurrected after restart: %v", id, err)
		}
	}
}

// TestRotationCompacts: with a tiny segment threshold the shard
// rotates, old segments disappear, and recovery from the
// snapshot-headed segment is still byte-identical.
func TestRotationCompacts(t *testing.T) {
	opts := Options{Shards: 1, SegmentBytes: 512}
	s := newDurableServer(t, opts)
	c, err := s.CreateSession(CreateSpec{Name: "simplified", Mode: dpm.ADPM, MaxOps: 200})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		applyKeyed(t, s, c.ID, "", []dpm.Operation{
			{Kind: dpm.OpVerification, Problem: "AmpDesign", Designer: "test"},
		})
	}
	if rot := s.Stats().Shards[0].Rotations; rot == 0 {
		t.Fatal("no rotation despite 512-byte segments")
	}
	want := stateJSON(t, s, c.ID)
	s2 := reopen(t, s, opts)
	if got := stateJSON(t, s2, c.ID); !bytes.Equal(got, want) {
		t.Errorf("post-rotation recovery differs:\n pre:  %s\n post: %s", want, got)
	}
}

// TestRotationDoublingGuard: once a session's history outgrows the
// segment limit, every snapshot is itself over-limit — naive
// size-triggered rotation would then rewrite the full state on every
// append (O(history²) I/O). The doubling rule must keep rotations
// logarithmic-ish, not per-append, while recovery stays exact.
func TestRotationDoublingGuard(t *testing.T) {
	opts := Options{Shards: 1, SegmentBytes: 256, MaxOps: 1 << 20}
	s := newDurableServer(t, opts)
	c, err := s.CreateSession(CreateSpec{Name: "simplified", Mode: dpm.ADPM, MaxOps: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	const batches = 60
	for i := 0; i < batches; i++ {
		applyKeyed(t, s, c.ID, "", []dpm.Operation{
			{Kind: dpm.OpVerification, Problem: "AmpDesign", Designer: "test"},
		})
	}
	rot := s.Stats().Shards[0].Rotations
	if rot == 0 {
		t.Fatal("no rotation despite 256-byte segments")
	}
	if rot > batches/3 {
		t.Errorf("%d rotations for %d batches — rotation storm, the doubling guard is not holding", rot, batches)
	}
	want := stateJSON(t, s, c.ID)
	s2 := reopen(t, s, opts)
	if got := stateJSON(t, s2, c.ID); !bytes.Equal(got, want) {
		t.Errorf("recovery under over-limit snapshots differs:\n pre:  %s\n post: %s", want, got)
	}
}

// TestMetaShardMismatch: reopening a data dir with a different shard
// count must fail loudly instead of misrouting recovered ids.
func TestMetaShardMismatch(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Shards: 2, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s.Drain()
	if _, err := Open(Options{Shards: 4, DataDir: dir}); !errors.Is(err, ErrStorage) {
		t.Fatalf("shard-count mismatch: %v, want ErrStorage", err)
	}
}

// TestStorageFailureRejectsWithoutGhostState: when the WAL cannot log a
// batch the request must fail with ErrStorage and the session state
// must be untouched — no ghost applies that recovery would not see.
func TestStorageFailureRejectsWithoutGhostState(t *testing.T) {
	var failSyncs atomic.Bool
	fsys := &faultfs.Fault{OnSync: func(n int, name string) error {
		if failSyncs.Load() && strings.HasSuffix(name, ".seg") {
			return faultfs.ErrInjected
		}
		return nil
	}}
	opts := Options{Shards: 1, FS: fsys}
	s := newDurableServer(t, opts)
	c, err := s.CreateSession(CreateSpec{Name: "simplified", Mode: dpm.ADPM, MaxOps: 50})
	if err != nil {
		t.Fatal(err)
	}
	applyKeyed(t, s, c.ID, "", []dpm.Operation{synth("AmpDesign", "Width", 3)})
	want := stateJSON(t, s, c.ID)

	failSyncs.Store(true)
	_, _, err = s.ApplyKeyed(c.ID, "doomed", []dpm.Operation{synth("AmpDesign", "Bias", 4)})
	if !errors.Is(err, ErrStorage) {
		t.Fatalf("apply with broken fsync: %v, want ErrStorage", err)
	}
	if got := stateJSON(t, s, c.ID); !bytes.Equal(got, want) {
		t.Errorf("failed append still mutated state:\n pre:  %s\n post: %s", want, got)
	}
	if !s.Stats().Shards[0].WALBroken {
		t.Error("WALBroken gauge not set after fsync failure")
	}
	// Fail-stop: later writes keep failing fast (fsyncgate discipline).
	_, _, err = s.ApplyKeyed(c.ID, "", []dpm.Operation{synth("AmpDesign", "Bias", 4)})
	if !errors.Is(err, ErrStorage) {
		t.Fatalf("apply on broken log: %v, want ErrStorage", err)
	}
	// Reads still serve.
	if _, err := s.State(c.ID); err != nil {
		t.Errorf("read on broken-log shard failed: %v", err)
	}
}

// TestDurableTraceReconciles: a durable shard's trace — including
// recover, wal-append, evict(park), and restore events — still ends in
// a run-end that reconciles, across park/restore and a restart.
func TestDurableTraceReconciles(t *testing.T) {
	var clock atomic.Int64
	dir := t.TempDir()
	run := func(buf *bytes.Buffer, firstGen bool) {
		rec := trace.New(trace.Options{W: buf})
		opts := Options{
			Shards:        1,
			DataDir:       dir,
			IdleTimeout:   time.Minute,
			SweepEvery:    time.Hour,
			nowFn:         func() time.Time { return time.Unix(0, clock.Load()) },
			ShardRecorder: func(int) *trace.Recorder { return rec },
		}
		s, err := Open(opts)
		if err != nil {
			t.Fatal(err)
		}
		var id string
		if firstGen {
			c, err := s.CreateSession(CreateSpec{Name: "simplified", Mode: dpm.ADPM, MaxOps: 50})
			if err != nil {
				t.Fatal(err)
			}
			id = c.ID
			applyKeyed(t, s, id, "a", []dpm.Operation{synth("AmpDesign", "Width", 3)})
			// Park, then restore, then apply more: the restore replay must
			// not double-trace the first batch.
			clock.Add(int64(2 * time.Minute))
			if n := s.Sweep(); n != 1 {
				t.Fatalf("sweep evicted %d, want 1", n)
			}
			applyKeyed(t, s, id, "b", []dpm.Operation{synth("AmpDesign", "Bias", 4)})
		} else {
			// Second generation: the recovered session replays with the
			// tracer attached (this stream never saw its ops).
			id = "s0-0"
			applyKeyed(t, s, id, "c", []dpm.Operation{
				{Kind: dpm.OpVerification, Problem: "AmpDesign", Designer: "test"},
			})
		}
		s.Drain()
		if err := rec.Close(); err != nil {
			t.Fatal(err)
		}
	}

	var gen1, gen2 bytes.Buffer
	run(&gen1, true)
	run(&gen2, false)

	for name, buf := range map[string]*bytes.Buffer{"gen1": &gen1, "gen2": &gen2} {
		st, err := trace.ValidateJSONL(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s trace does not validate: %v\n%s", name, err, buf.Bytes())
		}
		if st.ByKind["wal-append"] == 0 {
			t.Errorf("%s: no wal-append events", name)
		}
		if name == "gen1" && st.ByKind["restore"] == 0 {
			t.Errorf("gen1: no restore event after park+touch")
		}
		if name == "gen2" && st.ByKind["recover"] == 0 {
			t.Errorf("gen2: no recover event on reopen")
		}
	}
}

// TestNonDurableServerUnchanged: without a DataDir nothing durable
// happens — no WAL files, eviction still destroys, keys still work
// (in-memory only).
func TestNonDurableServerUnchanged(t *testing.T) {
	s := newTestServer(t, Options{Shards: 1})
	c := mustCreate(t, s, "simplified", 50)
	first := applyKeyed(t, s, c.ID, "k", []dpm.Operation{synth("AmpDesign", "Width", 3)})
	_, replayed, err := s.ApplyKeyed(c.ID, "k", []dpm.Operation{synth("AmpDesign", "Width", 3)})
	if err != nil || !replayed {
		t.Fatalf("in-memory idempotency: replayed=%v err=%v", replayed, err)
	}
	if first == nil || s.Stats().Shards[0].WALAppends != 0 {
		t.Error("non-durable server wrote WAL records")
	}
}
