package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/dpm"
	"repro/internal/scenario"
)

// FuzzServerOps throws arbitrary bodies at the op-batch endpoint of a
// live in-process server and checks the two hard invariants the batch
// path promises:
//
//  1. no panic and no 500 — a 500 would mean a validated operation
//     failed to apply, i.e. dpm.Validate's error set has a hole and the
//     "atomic without rollback" argument is broken;
//  2. any non-200 response leaves the session state byte-identical
//     (serialized bindings, movement windows, metrics).
func FuzzServerOps(f *testing.F) {
	seeds := []string{
		`{"ops":[{"kind":"synthesis","problem":"AmpDesign","assignments":[{"prop":"Width","value":3}]}]}`,
		`{"ops":[{"kind":"synthesis","problem":"AmpDesign","assignments":[{"prop":"Width","value":3},{"prop":"Bias","value":19}]}]}`,
		`{"ops":[{"kind":"verification","problem":"AmpDesign"}]}`,
		`{"ops":[{"kind":"verification","problem":"Top","verify":["MaxPower"]}]}`,
		`{"ops":[{"kind":"decomposition","problem":"Top"}]}`,
		`{"ops":[{"kind":"decomposition","problem":"AmpDesign"}]}`,
		`{"ops":[]}`,
		`{"ops":[{"kind":"synthesis","problem":"AmpDesign","assignments":[{"prop":"Width","value":"oops"}]}]}`,
		`{"ops":[{"kind":"synthesis","problem":"Ghost","assignments":[{"prop":"Width","value":1}]},{"kind":"synthesis","problem":"AmpDesign","assignments":[{"prop":"Ind","value":2}]}]}`,
		`{"ops":[{"kind":"melt","problem":"Top"}]}`,
		`{"ops":[{"kind":"synthesis","problem":"AmpDesign","assignments":[{"prop":"Width","value":null}]}]}`,
		`{"ops":[{"kind":"synthesis","problem":"AmpDesign","assignments":[{"prop":"Width","value":1e308}]},{"kind":"synthesis","problem":"AmpDesign","assignments":[{"prop":"Width","value":-1e308}]}]}`,
		`not json at all`,
		`{"ops": 3}`,
		`{"ops":[{"kind":"synthesis","problem":"AmpDesign"}]} trailing`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		s := New(Options{Shards: 1, MaxOps: 8})
		defer s.Drain()
		h := s.Handler()
		c, err := s.Create(scenario.Simplified(), dpm.ADPM, 0)
		if err != nil {
			t.Fatal(err)
		}
		before := fuzzState(t, h, c.ID)

		rr := httptest.NewRecorder()
		req := httptest.NewRequest("POST", "/sessions/"+c.ID+"/ops", bytes.NewReader(body))
		h.ServeHTTP(rr, req)

		if rr.Code >= 500 {
			t.Fatalf("op batch answered %d — validated-batch invariant broken: %s\nbody: %q",
				rr.Code, rr.Body, body)
		}
		if rr.Code != http.StatusOK {
			if after := fuzzState(t, h, c.ID); !bytes.Equal(before, after) {
				t.Fatalf("rejected batch (status %d) mutated session state\nbody: %q\nbefore: %s\nafter:  %s",
					rr.Code, body, before, after)
			}
		}
	})
}

// FuzzCreateSession throws arbitrary bodies at session creation —
// including arbitrary DDDL source text reaching the parser and network
// builder — and checks that the server either creates a servable
// session (201 whose id answers GET state) or rejects cleanly with a
// 4xx, never panicking or answering 500.
func FuzzCreateSession(f *testing.F) {
	seeds := []string{
		`{"scenario":"simplified"}`,
		`{"scenario":"receiver","mode":"conventional","max_ops":10}`,
		`{"scenario":"sensor","mode":"ADPM"}`,
		`{"scenario":"nope"}`,
		`{"source":"scenario T\nproperty X continuous [0, 1]\nproblem Top owner a { outputs { X } }"}`,
		`{"source":"problem {{{"}`,
		`{"source":"scenario T"}`,
		`{"mode":"ADPM"}`,
		`{"scenario":"simplified","source":"x"}`,
		`{"max_ops":-5,"scenario":"simplified"}`,
		`[]`,
		`{"scenario":"simplified"`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		s := New(Options{Shards: 1, MaxOps: 8})
		defer s.Drain()
		h := s.Handler()

		rr := httptest.NewRecorder()
		req := httptest.NewRequest("POST", "/sessions", bytes.NewReader(body))
		h.ServeHTTP(rr, req)
		if rr.Code >= 500 {
			t.Fatalf("create answered %d: %s\nbody: %q", rr.Code, rr.Body, body)
		}
		if rr.Code == http.StatusCreated {
			var c CreateResponse
			if err := json.Unmarshal(rr.Body.Bytes(), &c); err != nil {
				t.Fatalf("201 with unparsable body: %v", err)
			}
			st := httptest.NewRecorder()
			h.ServeHTTP(st, httptest.NewRequest("GET", "/sessions/"+c.ID+"/state", nil))
			if st.Code != http.StatusOK {
				t.Fatalf("created session %q does not serve state: %d", c.ID, st.Code)
			}
		}
	})
}

// fuzzState fetches the serialized session state via the HTTP stack.
func fuzzState(t *testing.T, h http.Handler, id string) []byte {
	t.Helper()
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/sessions/"+id+"/state", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("state: status %d", rr.Code)
	}
	return rr.Body.Bytes()
}
