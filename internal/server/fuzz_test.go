package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dpm"
)

// FuzzServerOps throws arbitrary bodies at the op-batch endpoint of a
// live durable server and checks the hard invariants the batch path
// promises, interleaving a crash/recover cycle mid-corpus:
//
//  1. no panic and no 500 — a 500 would mean a validated operation
//     failed to apply, i.e. dpm.Validate's error set has a hole and the
//     "atomic without rollback" argument is broken;
//  2. any non-200 response leaves the session state byte-identical
//     (serialized bindings, movement windows, metrics);
//  3. after a hard crash (the data dir copied as the dead process left
//     it) a fresh server recovers the session byte-identical, still
//     never answers 500, and a retry of the same keyed batch is a
//     cached no-op ack.
func FuzzServerOps(f *testing.F) {
	seeds := []string{
		`{"ops":[{"kind":"synthesis","problem":"AmpDesign","assignments":[{"prop":"Width","value":3}]}]}`,
		`{"ops":[{"kind":"synthesis","problem":"AmpDesign","assignments":[{"prop":"Width","value":3},{"prop":"Bias","value":19}]}]}`,
		`{"ops":[{"kind":"verification","problem":"AmpDesign"}]}`,
		`{"ops":[{"kind":"verification","problem":"Top","verify":["MaxPower"]}]}`,
		`{"ops":[{"kind":"decomposition","problem":"Top"}]}`,
		`{"ops":[{"kind":"decomposition","problem":"AmpDesign"}]}`,
		`{"ops":[]}`,
		`{"ops":[{"kind":"synthesis","problem":"AmpDesign","assignments":[{"prop":"Width","value":"oops"}]}]}`,
		`{"ops":[{"kind":"synthesis","problem":"Ghost","assignments":[{"prop":"Width","value":1}]},{"kind":"synthesis","problem":"AmpDesign","assignments":[{"prop":"Ind","value":2}]}]}`,
		`{"ops":[{"kind":"melt","problem":"Top"}]}`,
		`{"ops":[{"kind":"synthesis","problem":"AmpDesign","assignments":[{"prop":"Width","value":null}]}]}`,
		`{"ops":[{"kind":"synthesis","problem":"AmpDesign","assignments":[{"prop":"Width","value":1e308}]},{"kind":"synthesis","problem":"AmpDesign","assignments":[{"prop":"Width","value":-1e308}]}]}`,
		`not json at all`,
		`{"ops": 3}`,
		`{"ops":[{"kind":"synthesis","problem":"AmpDesign"}]} trailing`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		dir := t.TempDir()
		s, err := Open(Options{Shards: 1, MaxOps: 8, DataDir: dir})
		if err != nil {
			t.Fatal(err)
		}
		h := s.Handler()
		c, err := s.CreateSession(CreateSpec{Name: "simplified", Mode: dpm.ADPM})
		if err != nil {
			t.Fatal(err)
		}
		before := fuzzState(t, h, c.ID)

		send := func(h http.Handler) *httptest.ResponseRecorder {
			rr := httptest.NewRecorder()
			req := httptest.NewRequest("POST", "/sessions/"+c.ID+"/ops", bytes.NewReader(body))
			req.Header.Set("Idempotency-Key", "fuzz-1")
			h.ServeHTTP(rr, req)
			return rr
		}
		rr := send(h)
		if rr.Code >= 500 {
			t.Fatalf("op batch answered %d — validated-batch invariant broken: %s\nbody: %q",
				rr.Code, rr.Body, body)
		}
		after := fuzzState(t, h, c.ID)
		if rr.Code != http.StatusOK && !bytes.Equal(before, after) {
			t.Fatalf("rejected batch (status %d) mutated session state\nbody: %q\nbefore: %s\nafter:  %s",
				rr.Code, body, before, after)
		}

		// Crash mid-corpus: under SyncAlways every acknowledged record is
		// already on disk, so a raw copy of the data dir is exactly what a
		// killed process would leave behind. Recover from it and re-check
		// every invariant.
		crashDir := cloneDataDir(t, dir)
		s.Drain()
		s2, err := Open(Options{Shards: 1, MaxOps: 8, DataDir: crashDir})
		if err != nil {
			t.Fatalf("recovery open after crash: %v\nbody: %q", err, body)
		}
		defer s2.Drain()
		h2 := s2.Handler()
		if got := fuzzState(t, h2, c.ID); !bytes.Equal(got, after) {
			t.Fatalf("crash recovery lost or invented state\nbody: %q\npre-crash: %s\nrecovered: %s",
				body, after, got)
		}
		rr2 := send(h2)
		if rr2.Code >= 500 {
			t.Fatalf("post-recovery retry answered %d: %s\nbody: %q", rr2.Code, rr2.Body, body)
		}
		if rr.Code == http.StatusOK {
			// The accepted batch's key survived the crash: the retry must be
			// a cached ack, not a second application.
			if rr2.Code != http.StatusOK || rr2.Header().Get("Idempotent-Replay") != "true" {
				t.Fatalf("keyed retry after crash not replayed (status %d, replay %q)\nbody: %q",
					rr2.Code, rr2.Header().Get("Idempotent-Replay"), body)
			}
		}
		if got := fuzzState(t, h2, c.ID); !bytes.Equal(got, after) {
			t.Fatalf("post-recovery retry mutated state\nbody: %q\nwant: %s\ngot:  %s", body, after, got)
		}
	})
}

// cloneDataDir copies a durable server's data dir byte-for-byte — the
// crash image a killed process leaves behind.
func cloneDataDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		if info.IsDir() {
			return os.MkdirAll(filepath.Join(dst, rel), 0o755)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(dst, rel), b, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	return dst
}

// FuzzCreateSession throws arbitrary bodies at session creation —
// including arbitrary DDDL source text reaching the parser and network
// builder — and checks that the server either creates a servable
// session (201 whose id answers GET state) or rejects cleanly with a
// 4xx, never panicking or answering 500.
func FuzzCreateSession(f *testing.F) {
	seeds := []string{
		`{"scenario":"simplified"}`,
		`{"scenario":"receiver","mode":"conventional","max_ops":10}`,
		`{"scenario":"sensor","mode":"ADPM"}`,
		`{"scenario":"nope"}`,
		`{"source":"scenario T\nproperty X continuous [0, 1]\nproblem Top owner a { outputs { X } }"}`,
		`{"source":"problem {{{"}`,
		`{"source":"scenario T"}`,
		`{"mode":"ADPM"}`,
		`{"scenario":"simplified","source":"x"}`,
		`{"max_ops":-5,"scenario":"simplified"}`,
		`[]`,
		`{"scenario":"simplified"`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		s := New(Options{Shards: 1, MaxOps: 8})
		defer s.Drain()
		h := s.Handler()

		rr := httptest.NewRecorder()
		req := httptest.NewRequest("POST", "/sessions", bytes.NewReader(body))
		h.ServeHTTP(rr, req)
		if rr.Code >= 500 {
			t.Fatalf("create answered %d: %s\nbody: %q", rr.Code, rr.Body, body)
		}
		if rr.Code == http.StatusCreated {
			var c CreateResponse
			if err := json.Unmarshal(rr.Body.Bytes(), &c); err != nil {
				t.Fatalf("201 with unparsable body: %v", err)
			}
			st := httptest.NewRecorder()
			h.ServeHTTP(st, httptest.NewRequest("GET", "/sessions/"+c.ID+"/state", nil))
			if st.Code != http.StatusOK {
				t.Fatalf("created session %q does not serve state: %d", c.ID, st.Code)
			}
		}
	})
}

// fuzzState fetches the serialized session state via the HTTP stack.
func fuzzState(t *testing.T, h http.Handler, id string) []byte {
	t.Helper()
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/sessions/"+id+"/state", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("state: status %d", rr.Code)
	}
	return rr.Body.Bytes()
}
