package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/dpm"
	"repro/internal/wal"
)

// maxBodyBytes bounds request bodies; DDDL sources and op batches are
// small, so anything past this is hostile or broken.
const maxBodyBytes = 1 << 20

// ErrTooLarge reports a request body over maxBodyBytes. Surfaced as
// HTTP 413.
var ErrTooLarge = errors.New("server: request body too large")

// ErrTimeout reports a client that sent its headers but then stalled
// the body past the server's ReadTimeout. Surfaced as HTTP 408.
var ErrTimeout = errors.New("server: timed out reading request body")

// Slow-client limits for NewHTTPServer. A peer that cannot deliver its
// headers (or its ≤1MiB body) inside these windows is holding a
// connection hostage, not designing.
const (
	// DefaultReadHeaderTimeout bounds the wait for request headers; Go's
	// http.Server answers an overrun with 408 on its own.
	DefaultReadHeaderTimeout = 5 * time.Second
	// DefaultReadTimeout bounds reading the entire request.
	DefaultReadTimeout = 30 * time.Second
	// DefaultIdleTimeout bounds keep-alive connections between requests.
	DefaultIdleTimeout = 2 * time.Minute
)

// NewHTTPServer wraps the handler in an http.Server hardened against
// slow and oversized clients: header and whole-request read deadlines
// (slowloris defense — a stalled header gets the connection closed, a
// stalled body surfaces as 408 via decodeBody) and a MaxBytesHandler so
// even handlers that never touch the body cannot be streamed at.
// Body-reading handlers still apply their own MaxBytesReader, which
// maps to the 413 taxonomy.
func NewHTTPServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           http.MaxBytesHandler(h, maxBodyBytes),
		ReadHeaderTimeout: DefaultReadHeaderTimeout,
		ReadTimeout:       DefaultReadTimeout,
		IdleTimeout:       DefaultIdleTimeout,
	}
}

// Handler returns the adpmd HTTP API:
//
//	POST   /sessions             create a session from a scenario
//	POST   /sessions/{id}/ops    apply one atomic op batch
//	GET    /sessions/{id}/state  full design-state snapshot (cached per generation)
//	GET    /sessions/{id}/events live notification stream (SSE)
//	DELETE /sessions/{id}        retire a session
//	GET    /stats               live shard gauges
//	GET    /healthz             liveness (503 while draining)
//	GET    /readyz              readiness (503 while draining or WAL-broken)
//
// Every route is wrapped with the per-endpoint latency recorder
// (Server.Latency, expvar "adpmd_latency").
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /sessions", s.instrument("create", s.handleCreate))
	mux.HandleFunc("POST /sessions/{id}/ops", s.instrument("ops", s.handleOps))
	mux.HandleFunc("GET /sessions/{id}/state", s.instrument("state", s.handleState))
	mux.HandleFunc("GET /sessions/{id}/events", s.instrument("events", s.handleEvents))
	mux.HandleFunc("DELETE /sessions/{id}", s.instrument("delete", s.handleDelete))
	mux.HandleFunc("GET /stats", s.instrument("stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	}))
	mux.HandleFunc("GET /healthz", s.instrument("healthz", func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	}))
	mux.HandleFunc("GET /readyz", s.instrument("readyz", s.handleReady))
	// Migration protocol (driven by a cluster router; see
	// internal/cluster and migrate.go's crash-ordering contract).
	mux.HandleFunc("POST /sessions/{id}/migrate", s.instrument("migrate", s.handleMigrateBegin))
	mux.HandleFunc("POST /sessions/{id}/migrate/complete", s.instrument("migrate", s.handleMigrateComplete))
	mux.HandleFunc("POST /sessions/{id}/migrate/abort", s.instrument("migrate", s.handleMigrateAbort))
	mux.HandleFunc("POST /adopt", s.instrument("adopt", s.handleAdopt))
	return mux
}

// handleMigrateBegin parks and freezes the session, answering with its
// exported image for the router to ship.
func (s *Server) handleMigrateBegin(w http.ResponseWriter, r *http.Request) {
	img, err := s.BeginMigrate(r.PathValue("id"))
	if err != nil {
		writeErrReq(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, img)
}

// migrateCompleteRequest is the POST .../migrate/complete body.
type migrateCompleteRequest struct {
	Location string `json:"location"`
}

func (s *Server) handleMigrateComplete(w http.ResponseWriter, r *http.Request) {
	var req migrateCompleteRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeErr(w, err)
		return
	}
	if err := s.CompleteMigrate(r.PathValue("id"), req.Location); err != nil {
		writeErrReq(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "moved", "location": req.Location})
}

func (s *Server) handleMigrateAbort(w http.ResponseWriter, r *http.Request) {
	if err := s.AbortMigrate(r.PathValue("id")); err != nil {
		writeErrReq(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "aborted"})
}

// handleAdopt installs a shipped session image (the HTTP twin of the
// replica transport's "adopt" verb; both land in Server.AdoptSession).
func (s *Server) handleAdopt(w http.ResponseWriter, r *http.Request) {
	var img wal.SessionImage
	if err := decodeBody(w, r, &img); err != nil {
		writeErr(w, err)
		return
	}
	if err := s.AdoptSession(&img); err != nil {
		writeErrReq(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "adopted", "id": img.ID})
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req CreateRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeErr(w, err)
		return
	}
	if req.Source != "" && req.Scenario != "" {
		writeErr(w, fmt.Errorf("%w: scenario and source are mutually exclusive", ErrInvalid))
		return
	}
	mode := dpm.ADPM
	switch req.Mode {
	case "", "ADPM", "adpm":
	case "conventional":
		mode = dpm.Conventional
	default:
		writeErr(w, fmt.Errorf("%w: unknown mode %q", ErrInvalid, req.Mode))
		return
	}
	// CreateSession resolves the name/source itself and — durably — logs
	// exactly what the client sent, so recovery reparses the same input.
	resp, err := s.CreateSession(CreateSpec{
		ID:     req.ID,
		Name:   req.Scenario,
		Source: req.Source,
		Mode:   mode,
		MaxOps: req.MaxOps,
	})
	if err != nil {
		writeErrReq(w, r, err)
		return
	}
	writeJSON(w, http.StatusCreated, resp)
}

func (s *Server) handleOps(w http.ResponseWriter, r *http.Request) {
	var req OpsRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeErr(w, err)
		return
	}
	key := req.Key
	if h := r.Header.Get("Idempotency-Key"); h != "" {
		if key != "" && key != h {
			writeErr(w, fmt.Errorf("%w: Idempotency-Key header and body key disagree", ErrInvalid))
			return
		}
		key = h
	}
	ops := make([]dpm.Operation, len(req.Ops))
	for i, wo := range req.Ops {
		op, err := wo.toOperation()
		if err != nil {
			writeErr(w, fmt.Errorf("op %d: %w", i, err))
			return
		}
		ops[i] = op
	}
	resp, replayed, err := s.ApplyKeyed(r.PathValue("id"), key, ops)
	if err != nil {
		writeErrReq(w, r, err)
		return
	}
	if replayed {
		// The batch was already applied under this key; this is the
		// cached acknowledgement, not a second application.
		w.Header().Set("Idempotent-Replay", "true")
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleState(w http.ResponseWriter, r *http.Request) {
	// The pre-serialized snapshot (generation-keyed cache): byte-for-byte
	// what writeJSON(StateResponse) produced before the cache existed.
	b, err := s.StateBytes(r.PathValue("id"))
	if err != nil {
		writeErrReq(w, r, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(b)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	resp, err := s.Delete(r.PathValue("id"))
	if err != nil {
		writeErrReq(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// decodeBody reads one JSON value and rejects trailing garbage. A body
// over maxBodyBytes surfaces as ErrTooLarge (413), distinct from
// malformed JSON (400).
func decodeBody(w http.ResponseWriter, r *http.Request, v interface{}) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return fmt.Errorf("%w: body exceeds %d bytes", ErrTooLarge, mbe.Limit)
		}
		if errors.Is(err, os.ErrDeadlineExceeded) {
			// The connection's read deadline (Server.ReadTimeout) expired
			// mid-body: the client stalled, not malformed JSON.
			return ErrTimeout
		}
		return fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	if dec.More() {
		return fmt.Errorf("%w: trailing data after JSON body", ErrInvalid)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// writeErr maps the server error taxonomy onto HTTP statuses.
func writeErr(w http.ResponseWriter, err error) { writeErrReq(w, nil, err) }

// writeErrReq is writeErr with the request available, so a moved
// session's 307 can carry a full Location (forwarding base + the
// path the client actually asked for).
func writeErrReq(w http.ResponseWriter, r *http.Request, err error) {
	status := http.StatusInternalServerError
	var me *MovedError
	switch {
	case errors.As(err, &me):
		// The session migrated: same method, same body, new owner. 307
		// (not 301/302) so POSTs retry verbatim — the idempotency key
		// layer makes the cross-node retry exactly-once.
		loc := me.Location
		if r != nil && (strings.HasPrefix(loc, "http://") || strings.HasPrefix(loc, "https://")) {
			loc = strings.TrimSuffix(loc, "/") + r.URL.RequestURI()
		}
		w.Header().Set("Location", loc)
		status = http.StatusTemporaryRedirect
	case errors.Is(err, ErrMigrating):
		// Frozen mid-transfer: ownership resolves within the migration's
		// round trip, so a short retry lands on whichever side won.
		w.Header().Set("Retry-After", "1")
		status = http.StatusServiceUnavailable
	case errors.Is(err, ErrInvalid):
		status = http.StatusBadRequest
	case errors.Is(err, ErrUnknownSession):
		status = http.StatusNotFound
	case errors.Is(err, ErrTimeout):
		status = http.StatusRequestTimeout
	case errors.Is(err, ErrTooLarge):
		status = http.StatusRequestEntityTooLarge
	case errors.Is(err, ErrBudget):
		status = http.StatusConflict
	case errors.Is(err, ErrKeyConflict):
		// Idempotency key reused with a byte-different batch: the
		// request parses but contradicts the key's first use.
		status = http.StatusUnprocessableEntity
	case errors.Is(err, ErrAckEvicted):
		// The key's cached acknowledgement aged out of the per-session
		// LRU: replaying it could silently re-apply, so fail closed.
		status = http.StatusUnprocessableEntity
	case errors.Is(err, ErrBusy):
		// Backpressure: the shard mailbox was full. The hint scales with
		// how congested the mailbox was at rejection (1s..4s) so clients
		// back off harder the deeper the queue.
		retry := 1
		var be *busyError
		if errors.As(err, &be) {
			retry = be.RetrySeconds()
		}
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		status = http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		status = http.StatusServiceUnavailable
	case errors.Is(err, ErrStorage):
		// The WAL could not log the request; nothing was applied.
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
