package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/dddl"
	"repro/internal/dpm"
	"repro/internal/scenario"
)

// maxBodyBytes bounds request bodies; DDDL sources and op batches are
// small, so anything past this is hostile or broken.
const maxBodyBytes = 1 << 20

// Handler returns the adpmd HTTP API:
//
//	POST   /sessions            create a session from a scenario
//	POST   /sessions/{id}/ops   apply one atomic op batch
//	GET    /sessions/{id}/state full design-state snapshot
//	DELETE /sessions/{id}       retire a session
//	GET    /stats               live shard gauges
//	GET    /healthz             liveness (503 while draining)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /sessions", s.handleCreate)
	mux.HandleFunc("POST /sessions/{id}/ops", s.handleOps)
	mux.HandleFunc("GET /sessions/{id}/state", s.handleState)
	mux.HandleFunc("DELETE /sessions/{id}", s.handleDelete)
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req CreateRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeErr(w, err)
		return
	}
	var scn *dddl.Scenario
	var err error
	switch {
	case req.Source != "" && req.Scenario != "":
		writeErr(w, fmt.Errorf("%w: scenario and source are mutually exclusive", ErrInvalid))
		return
	case req.Source != "":
		if scn, err = dddl.ParseString(req.Source); err != nil {
			writeErr(w, fmt.Errorf("%w: %v", ErrInvalid, err))
			return
		}
	case req.Scenario != "":
		if scn, err = scenario.ByName(req.Scenario); err != nil {
			writeErr(w, fmt.Errorf("%w: %v", ErrInvalid, err))
			return
		}
	default:
		writeErr(w, fmt.Errorf("%w: scenario or source is required", ErrInvalid))
		return
	}
	mode := dpm.ADPM
	switch req.Mode {
	case "", "ADPM", "adpm":
	case "conventional":
		mode = dpm.Conventional
	default:
		writeErr(w, fmt.Errorf("%w: unknown mode %q", ErrInvalid, req.Mode))
		return
	}
	resp, err := s.Create(scn, mode, req.MaxOps)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, resp)
}

func (s *Server) handleOps(w http.ResponseWriter, r *http.Request) {
	var req OpsRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeErr(w, err)
		return
	}
	ops := make([]dpm.Operation, len(req.Ops))
	for i, wo := range req.Ops {
		op, err := wo.toOperation()
		if err != nil {
			writeErr(w, fmt.Errorf("op %d: %w", i, err))
			return
		}
		ops[i] = op
	}
	resp, err := s.Apply(r.PathValue("id"), ops)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleState(w http.ResponseWriter, r *http.Request) {
	resp, err := s.State(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	resp, err := s.Delete(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// decodeBody reads one JSON value and rejects trailing garbage.
func decodeBody(w http.ResponseWriter, r *http.Request, v interface{}) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	if dec.More() {
		return fmt.Errorf("%w: trailing data after JSON body", ErrInvalid)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// writeErr maps the server error taxonomy onto HTTP statuses.
func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrInvalid):
		status = http.StatusBadRequest
	case errors.Is(err, ErrUnknownSession):
		status = http.StatusNotFound
	case errors.Is(err, ErrBudget):
		status = http.StatusConflict
	case errors.Is(err, ErrBusy):
		// Backpressure: the shard mailbox is full. Retryable shortly.
		w.Header().Set("Retry-After", "1")
		status = http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
