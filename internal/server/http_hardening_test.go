package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestSlowClientTimeouts exercises the slowloris defenses NewHTTPServer
// configures: a client that stalls its HEADERS is disconnected when
// ReadHeaderTimeout passes (net/http closes silently), and a client
// that sends headers but stalls its BODY gets an explicit 408 from the
// decodeBody taxonomy when ReadTimeout expires.
func TestSlowClientTimeouts(t *testing.T) {
	s := newTestServer(t, Options{Shards: 1})
	hs := NewHTTPServer("127.0.0.1:0", s.Handler())
	if hs.ReadHeaderTimeout != DefaultReadHeaderTimeout || hs.ReadTimeout != DefaultReadTimeout {
		t.Fatalf("NewHTTPServer timeouts %v/%v, want %v/%v",
			hs.ReadHeaderTimeout, hs.ReadTimeout, DefaultReadHeaderTimeout, DefaultReadTimeout)
	}
	// The default seconds-scale values would stall the test; the knobs
	// stay plain http.Server fields.
	hs.ReadHeaderTimeout = 50 * time.Millisecond
	hs.ReadTimeout = 150 * time.Millisecond

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go hs.Serve(ln)
	t.Cleanup(func() { hs.Close() })

	t.Run("stalled-headers-disconnected", func(t *testing.T) {
		conn, err := net.DialTimeout("tcp", ln.Addr().String(), time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		if _, err := conn.Write([]byte("GET /healthz HTTP/1.1\r\nHost: x\r\n")); err != nil {
			t.Fatal(err)
		}
		// Never send the terminating CRLF: the server must cut us off
		// instead of holding the goroutine forever.
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, err := bufio.NewReader(conn).ReadString('\n'); err == nil {
			t.Error("stalled header got a response, want the connection closed")
		} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
			t.Error("stalled header connection still open after ReadHeaderTimeout")
		}
	})

	t.Run("stalled-body-408", func(t *testing.T) {
		conn, err := net.DialTimeout("tcp", ln.Addr().String(), time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		// Complete headers promising a body that never arrives.
		if _, err := conn.Write([]byte("POST /sessions HTTP/1.1\r\nHost: x\r\nContent-Type: application/json\r\nContent-Length: 100\r\n\r\n{")); err != nil {
			t.Fatal(err)
		}
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		status, err := bufio.NewReader(conn).ReadString('\n')
		if err != nil {
			t.Fatalf("reading response to stalled body: %v", err)
		}
		if !strings.Contains(status, "408") {
			t.Errorf("stalled body got %q, want a 408", strings.TrimSpace(status))
		}
	})
}

// TestOversizedBodyGets413: a body past maxBodyBytes maps to 413 (not a
// generic 400), via the MaxBytesError branch of decodeBody.
func TestOversizedBodyGets413(t *testing.T) {
	s := newTestServer(t, Options{Shards: 1})
	h := s.Handler()
	big := `{"scenario":"simplified","source":"` + strings.Repeat("x", maxBodyBytes+1) + `"}`
	rr := do(h, "POST", "/sessions", big)
	if rr.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized create body: status %d, want 413", rr.Code)
	}
	c := createViaHTTP(t, h, `{"scenario":"simplified"}`)
	rr = do(h, "POST", "/sessions/"+c.ID+"/ops", `{"key":"`+strings.Repeat("y", maxBodyBytes+1)+`"}`)
	if rr.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized ops body: status %d, want 413", rr.Code)
	}
	// A body just under the cap still parses (and fails for its content,
	// not its size).
	rr = do(h, "POST", "/sessions", `{"scenario":"nope"}`)
	if rr.Code != http.StatusBadRequest {
		t.Errorf("small invalid body: status %d, want 400", rr.Code)
	}
}

// TestRetryAfterDerivedFromMailbox: a rejection from a saturated
// mailbox carries a Retry-After derived from the observed depth —
// a full mailbox advises the max backoff (4s), and the header is
// always within 1..4.
func TestRetryAfterDerivedFromMailbox(t *testing.T) {
	s := newTestServer(t, Options{Shards: 1, MailboxSize: 2})
	h := s.Handler()
	c := createViaHTTP(t, h, `{"scenario":"simplified"}`)
	sh := s.shards[0]

	// Wedge the event loop, then fill the mailbox to capacity.
	block := make(chan struct{})
	wedged := make(chan struct{})
	go sh.submit(func() { close(wedged); <-block })
	<-wedged
	for i := 0; i < cap(sh.mailbox); i++ {
		go sh.submit(func() {})
	}
	deadline := time.Now().Add(time.Second)
	for len(sh.mailbox) < cap(sh.mailbox) {
		if time.Now().After(deadline) {
			t.Fatal("could not saturate the mailbox")
		}
		time.Sleep(time.Millisecond)
	}

	rr := do(h, "GET", "/sessions/"+c.ID+"/state", "")
	close(block)
	if rr.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated shard: status %d, want 429", rr.Code)
	}
	ra := rr.Header().Get("Retry-After")
	secs, err := strconv.Atoi(ra)
	if err != nil || secs < 1 || secs > 4 {
		t.Fatalf("Retry-After %q, want an integer in [1,4]", ra)
	}
	if want := 1 + 3*cap(sh.mailbox)/cap(sh.mailbox); secs != want {
		t.Errorf("full mailbox Retry-After = %d, want %d", secs, want)
	}
}

// TestRetrySecondsScaling pins the depth→seconds mapping.
func TestRetrySecondsScaling(t *testing.T) {
	for _, tc := range []struct {
		depth, capacity, want int
	}{
		{0, 64, 1}, {21, 64, 1}, {22, 64, 2}, {43, 64, 3}, {64, 64, 4}, {5, 0, 1},
	} {
		e := &busyError{depth: tc.depth, capacity: tc.capacity}
		if got := e.RetrySeconds(); got != tc.want {
			t.Errorf("RetrySeconds(%d/%d) = %d, want %d", tc.depth, tc.capacity, got, tc.want)
		}
	}
}

// TestIdempotencyKeyOverHTTP: the Idempotency-Key header (or body key)
// makes POST /ops exactly-once, with the replay marked by the
// Idempotent-Replay response header.
func TestIdempotencyKeyOverHTTP(t *testing.T) {
	s := newTestServer(t, Options{Shards: 1})
	h := s.Handler()
	c := createViaHTTP(t, h, `{"scenario":"simplified","max_ops":50}`)
	body := `{"ops":[{"kind":"synthesis","problem":"AmpDesign","designer":"circuit",
	  "assignments":[{"prop":"Width","value":3}]}]}`

	send := func(withHeader bool) *http.Response {
		req := httptest.NewRequest("POST", "/sessions/"+c.ID+"/ops", strings.NewReader(body))
		if withHeader {
			req.Header.Set("Idempotency-Key", "try-1")
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec.Result()
	}
	first := send(true)
	if first.StatusCode != http.StatusOK || first.Header.Get("Idempotent-Replay") != "" {
		t.Fatalf("first keyed apply: status %d replay %q", first.StatusCode, first.Header.Get("Idempotent-Replay"))
	}
	var firstAck ApplyResponse
	json.NewDecoder(first.Body).Decode(&firstAck)

	second := send(true)
	if second.StatusCode != http.StatusOK || second.Header.Get("Idempotent-Replay") != "true" {
		t.Fatalf("retried keyed apply: status %d replay %q", second.StatusCode, second.Header.Get("Idempotent-Replay"))
	}
	var secondAck ApplyResponse
	json.NewDecoder(second.Body).Decode(&secondAck)
	if fmt.Sprintf("%+v", firstAck) != fmt.Sprintf("%+v", secondAck) {
		t.Errorf("replayed ack differs: %+v vs %+v", firstAck, secondAck)
	}

	// The state saw exactly one application.
	st, err := s.State(c.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.Operations != 1 {
		t.Errorf("state shows %d operations after a retried keyed batch, want 1", st.Operations)
	}

	// Body key and header disagreeing is a client bug → 400.
	req := httptest.NewRequest("POST", "/sessions/"+c.ID+"/ops",
		strings.NewReader(`{"key":"other","ops":[{"kind":"verification","problem":"AmpDesign"}]}`))
	req.Header.Set("Idempotency-Key", "try-1")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Result().StatusCode != http.StatusBadRequest {
		t.Errorf("disagreeing keys: status %d, want 400", rec.Result().StatusCode)
	}
}
