package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/scenario"
)

// do runs one request against the handler and returns the recorder.
func do(h http.Handler, method, path, body string) *httptest.ResponseRecorder {
	rr := httptest.NewRecorder()
	var req *http.Request
	if body == "" {
		req = httptest.NewRequest(method, path, nil)
	} else {
		req = httptest.NewRequest(method, path, strings.NewReader(body))
	}
	h.ServeHTTP(rr, req)
	return rr
}

func createViaHTTP(t *testing.T, h http.Handler, body string) CreateResponse {
	t.Helper()
	rr := do(h, "POST", "/sessions", body)
	if rr.Code != http.StatusCreated {
		t.Fatalf("create: status %d: %s", rr.Code, rr.Body)
	}
	var c CreateResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &c); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestHTTPLifecycle(t *testing.T) {
	s := newTestServer(t, Options{Shards: 2})
	h := s.Handler()

	c := createViaHTTP(t, h, `{"scenario":"simplified","max_ops":50}`)
	if c.MaxOps != 50 || c.Mode != "ADPM" {
		t.Errorf("create response %+v, want max_ops 50 mode ADPM", c)
	}

	rr := do(h, "POST", "/sessions/"+c.ID+"/ops",
		`{"ops":[{"kind":"synthesis","problem":"AmpDesign","designer":"circuit",
		  "assignments":[{"prop":"Width","value":3},{"prop":"Bias","value":4}]},
		 {"kind":"verification","problem":"AmpDesign"}]}`)
	if rr.Code != http.StatusOK {
		t.Fatalf("ops: status %d: %s", rr.Code, rr.Body)
	}
	var ack ApplyResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &ack); err != nil {
		t.Fatal(err)
	}
	if ack.Applied != 2 || ack.Remaining != 48 || len(ack.Transitions) != 2 {
		t.Errorf("ops ack %+v, want 2 applied with 48 remaining", ack)
	}

	rr = do(h, "GET", "/sessions/"+c.ID+"/state", "")
	if rr.Code != http.StatusOK {
		t.Fatalf("state: status %d", rr.Code)
	}
	var st StateResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Operations != 2 || st.ID != c.ID {
		t.Errorf("state %+v does not reflect the batch", st)
	}

	if rr = do(h, "GET", "/stats", ""); rr.Code != http.StatusOK {
		t.Errorf("stats: status %d", rr.Code)
	}
	if rr = do(h, "GET", "/healthz", ""); rr.Code != http.StatusOK {
		t.Errorf("healthz: status %d", rr.Code)
	}

	rr = do(h, "DELETE", "/sessions/"+c.ID, "")
	if rr.Code != http.StatusOK {
		t.Fatalf("delete: status %d: %s", rr.Code, rr.Body)
	}
	if rr = do(h, "GET", "/sessions/"+c.ID+"/state", ""); rr.Code != http.StatusNotFound {
		t.Errorf("state after delete: status %d, want 404", rr.Code)
	}
}

func TestHTTPCreateFromDDDLSource(t *testing.T) {
	s := newTestServer(t, Options{Shards: 1})
	h := s.Handler()
	body, err := json.Marshal(CreateRequest{Source: scenario.SimplifiedSource, Mode: "conventional"})
	if err != nil {
		t.Fatal(err)
	}
	c := createViaHTTP(t, h, string(body))
	if c.Mode != "conventional" {
		t.Errorf("mode = %q, want conventional", c.Mode)
	}
	if rr := do(h, "GET", "/sessions/"+c.ID+"/state", ""); rr.Code != http.StatusOK {
		t.Errorf("state on DDDL-sourced session: status %d", rr.Code)
	}
}

func TestHTTPErrorStatuses(t *testing.T) {
	s := newTestServer(t, Options{Shards: 1})
	h := s.Handler()
	c := createViaHTTP(t, h, `{"scenario":"simplified","max_ops":1}`)

	// Bind key "k1" to a batch so the table can exercise the keyed
	// replay (200 + Idempotent-Replay) and key-conflict (422) rows.
	keyedBody := `{"ops":[{"kind":"verification","problem":"Top"}],"key":"k1"}`
	if rr := do(h, "POST", "/sessions/"+c.ID+"/ops", keyedBody); rr.Code != 200 {
		t.Fatalf("keyed apply: status %d: %s", rr.Code, rr.Body)
	}

	cases := []struct {
		name, method, path, body string
		want                     int
	}{
		{"bad json", "POST", "/sessions", `{`, 400},
		{"no scenario", "POST", "/sessions", `{}`, 400},
		{"both scenario and source", "POST", "/sessions", `{"scenario":"simplified","source":"x"}`, 400},
		{"unknown scenario", "POST", "/sessions", `{"scenario":"nope"}`, 400},
		{"bad dddl", "POST", "/sessions", `{"source":"problem {{{"}`, 400},
		{"unknown mode", "POST", "/sessions", `{"scenario":"simplified","mode":"warp"}`, 400},
		{"trailing garbage", "POST", "/sessions", `{"scenario":"simplified"} extra`, 400},
		{"unknown id", "POST", "/sessions/zig/ops", `{"ops":[{"kind":"verification","problem":"Top"}]}`, 404},
		{"unknown id state", "GET", "/sessions/s4-1/state", "", 404},
		{"unknown id delete", "DELETE", "/sessions/s0-77", "", 404},
		{"unknown op kind", "POST", "/sessions/" + c.ID + "/ops", `{"ops":[{"kind":"melt","problem":"Top"}]}`, 400},
		{"bad value type", "POST", "/sessions/" + c.ID + "/ops",
			`{"ops":[{"kind":"synthesis","problem":"AmpDesign","assignments":[{"prop":"Width","value":[1]}]}]}`, 400},
		{"empty batch", "POST", "/sessions/" + c.ID + "/ops", `{"ops":[]}`, 400},
		{"over budget", "POST", "/sessions/" + c.ID + "/ops",
			`{"ops":[{"kind":"verification","problem":"Top"},{"kind":"verification","problem":"Top"}]}`, 409},
		{"keyed replay", "POST", "/sessions/" + c.ID + "/ops", keyedBody, 200},
		// Same key, byte-different batch: the key stays bound to its
		// first body; the conflict wins over the exhausted budget.
		{"key conflict", "POST", "/sessions/" + c.ID + "/ops",
			`{"ops":[{"kind":"verification","problem":"AmpDesign"}],"key":"k1"}`, 422},
	}
	for _, tc := range cases {
		if rr := do(h, tc.method, tc.path, tc.body); rr.Code != tc.want {
			t.Errorf("%s: status %d, want %d (body %s)", tc.name, rr.Code, tc.want, rr.Body)
		}
	}
}

func TestHTTPDrainingStatuses(t *testing.T) {
	s := New(Options{Shards: 1})
	h := s.Handler()
	c := createViaHTTP(t, h, `{"scenario":"simplified"}`)
	s.Drain()

	if rr := do(h, "GET", "/healthz", ""); rr.Code != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining: status %d, want 503", rr.Code)
	}
	if rr := do(h, "POST", "/sessions", `{"scenario":"simplified"}`); rr.Code != http.StatusServiceUnavailable {
		t.Errorf("create while draining: status %d, want 503", rr.Code)
	}
	if rr := do(h, "POST", "/sessions/"+c.ID+"/ops",
		`{"ops":[{"kind":"verification","problem":"Top"}]}`); rr.Code != http.StatusServiceUnavailable {
		t.Errorf("ops while draining: status %d, want 503", rr.Code)
	}
	// Stats still works so operators can watch the drain.
	if rr := do(h, "GET", "/stats", ""); rr.Code != http.StatusOK {
		t.Errorf("stats while draining: status %d, want 200", rr.Code)
	}
}
