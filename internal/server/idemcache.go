package server

import (
	"container/list"
	"crypto/sha256"
	"errors"
)

// ErrAckEvicted reports an idempotency key whose acknowledgement aged
// out of the bounded per-session cache. The retry's body matches the
// original, so re-applying would be wrong (the batch already applied)
// and acking blind would fabricate a response — the server fails closed
// instead. Surfaced as HTTP 422 like ErrKeyConflict: both are "this key
// cannot be honored", distinguishable by message.
var ErrAckEvicted = errors.New("server: idempotency acknowledgement evicted (retry window exceeded)")

// DefaultIdemCap is the per-session cached-ack bound when
// Options.IdemCap is 0.
const DefaultIdemCap = 1024

// idemCache is one session's idempotency state, bounded so a long-lived
// session cannot grow it without limit. Two tiers with different costs
// and different caps:
//
//   - hashes pins every key ever used to the SHA-256 of its
//     wire-canonical batch. A hash is 32 bytes and must never be
//     evicted — dropping it would let a conflicting reuse (same key,
//     different body) slip through as a replay or a double-apply.
//   - acks holds the full cached acknowledgements, LRU-bounded at cap.
//     An evicted ack fails the retry closed (ErrAckEvicted) rather than
//     re-applying; exactly-once is preserved, only the cached response
//     is lost.
//
// The cache is rebuilt through the same Add path during WAL replay, so
// the bound (and the LRU order, which follows the log order) survives
// park/restore and crash recovery.
type idemCache struct {
	cap    int // ack bound; <= 0 means unlimited
	hashes map[string][sha256.Size]byte
	acks   map[string]*list.Element
	lru    *list.List // front = most recent
}

// idemNode is one LRU entry.
type idemNode struct {
	key  string
	resp *ApplyResponse
}

// idemOutcome classifies a key lookup.
type idemOutcome int

const (
	// idemMiss: key never used; apply fresh.
	idemMiss idemOutcome = iota
	// idemReplay: key used with this exact body and the ack is cached;
	// return it without applying.
	idemReplay
	// idemConflict: key used with a byte-different body (ErrKeyConflict).
	idemConflict
	// idemEvicted: key used with this body but the ack aged out
	// (ErrAckEvicted; fail closed).
	idemEvicted
)

// newIdemCache builds a cache with the resolved bound: 0 selects
// DefaultIdemCap, negative means unlimited.
func newIdemCache(capacity int) *idemCache {
	if capacity == 0 {
		capacity = DefaultIdemCap
	}
	return &idemCache{
		cap:    capacity,
		hashes: map[string][sha256.Size]byte{},
		acks:   map[string]*list.Element{},
		lru:    list.New(),
	}
}

// lookup classifies a keyed retry and returns the cached ack on replay.
func (c *idemCache) lookup(key string, hash [sha256.Size]byte) (*ApplyResponse, idemOutcome) {
	h, ok := c.hashes[key]
	if !ok {
		return nil, idemMiss
	}
	if h != hash {
		return nil, idemConflict
	}
	el, ok := c.acks[key]
	if !ok {
		return nil, idemEvicted
	}
	c.lru.MoveToFront(el)
	return el.Value.(*idemNode).resp, idemReplay
}

// add records a fresh keyed acknowledgement, evicting the
// least-recently-used ack past the bound. The key's hash is pinned
// unconditionally.
func (c *idemCache) add(key string, hash [sha256.Size]byte, resp *ApplyResponse) {
	c.hashes[key] = hash
	if el, ok := c.acks[key]; ok {
		el.Value.(*idemNode).resp = resp
		c.lru.MoveToFront(el)
		return
	}
	c.acks[key] = c.lru.PushFront(&idemNode{key: key, resp: resp})
	if c.cap > 0 {
		for c.lru.Len() > c.cap {
			oldest := c.lru.Back()
			c.lru.Remove(oldest)
			delete(c.acks, oldest.Value.(*idemNode).key)
		}
	}
}

// len returns the number of cached acks (tests).
func (c *idemCache) len() int { return c.lru.Len() }
