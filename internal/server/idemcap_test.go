package server

import (
	"bytes"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/dpm"
)

// The bounded ack cache's contract (ISSUE 7 bugfix): a session stores
// at most IdemCap cached acknowledgements, LRU-evicted; a key whose
// ack aged out is answered exactly-once-or-fail-closed — 422
// ErrAckEvicted, never a silent re-application. Conflict hashes are
// pinned forever, so a byte-different body under an evicted key is
// still a conflict, not an eviction.

// fillIdemKeys applies n distinct keyed one-op batches, k0..k<n-1>.
func fillIdemKeys(t *testing.T, s *Server, id string, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, replayed, err := s.ApplyKeyed(id, fmt.Sprintf("k%d", i), []dpm.Operation{verify("Top")}); err != nil || replayed {
			t.Fatalf("keyed apply %d: err=%v replayed=%v", i, err, replayed)
		}
	}
}

func TestIdemCapEvictsOldestAckFailsClosed(t *testing.T) {
	s := newTestServer(t, Options{Shards: 1, IdemCap: 2})
	c := mustCreate(t, s, "simplified", 0)
	fillIdemKeys(t, s, c.ID, 3) // k0's ack is evicted by k2

	before := stateJSON(t, s, c.ID)
	opsBefore, _ := s.State(c.ID)

	// Resending k0 with its original body: the ack is gone, so the
	// server cannot prove it would not re-apply — fail closed.
	if _, _, err := s.ApplyKeyed(c.ID, "k0", []dpm.Operation{verify("Top")}); !errors.Is(err, ErrAckEvicted) {
		t.Fatalf("evicted key resend err = %v, want ErrAckEvicted", err)
	}
	// Nothing was applied — not silently re-applied.
	if after := stateJSON(t, s, c.ID); !bytes.Equal(before, after) {
		t.Fatal("evicted-key resend changed session state")
	}
	opsAfter, _ := s.State(c.ID)
	if opsAfter.Operations != opsBefore.Operations {
		t.Fatalf("evicted-key resend re-applied: %d ops, had %d", opsAfter.Operations, opsBefore.Operations)
	}

	// The newest keys still replay from cache.
	for _, k := range []string{"k1", "k2"} {
		if _, replayed, err := s.ApplyKeyed(c.ID, k, []dpm.Operation{verify("Top")}); err != nil || !replayed {
			t.Fatalf("key %s: err=%v replayed=%v, want cached replay", k, err, replayed)
		}
	}
}

func TestIdemCapConflictOutlivesEviction(t *testing.T) {
	s := newTestServer(t, Options{Shards: 1, IdemCap: 1})
	c := mustCreate(t, s, "simplified", 0)
	fillIdemKeys(t, s, c.ID, 2) // k0's ack evicted immediately by k1

	// Byte-different body under the evicted key: the pinned hash still
	// detects the contradiction — conflict, not eviction.
	if _, _, err := s.ApplyKeyed(c.ID, "k0", []dpm.Operation{verify("AmpDesign")}); !errors.Is(err, ErrKeyConflict) {
		t.Fatalf("conflicting body under evicted key err = %v, want ErrKeyConflict", err)
	}
}

func TestIdemCapLRUOrderIsUseOrder(t *testing.T) {
	s := newTestServer(t, Options{Shards: 1, IdemCap: 2})
	c := mustCreate(t, s, "simplified", 0)
	fillIdemKeys(t, s, c.ID, 2)

	// Touch k0 so k1 becomes the least recently used...
	if _, replayed, err := s.ApplyKeyed(c.ID, "k0", []dpm.Operation{verify("Top")}); err != nil || !replayed {
		t.Fatalf("touch k0: err=%v replayed=%v", err, replayed)
	}
	// ... then a third key evicts k1, not k0.
	if _, _, err := s.ApplyKeyed(c.ID, "k2", []dpm.Operation{verify("Top")}); err != nil {
		t.Fatal(err)
	}
	if _, replayed, err := s.ApplyKeyed(c.ID, "k0", []dpm.Operation{verify("Top")}); err != nil || !replayed {
		t.Fatalf("k0 after touch: err=%v replayed=%v, want still cached", err, replayed)
	}
	if _, _, err := s.ApplyKeyed(c.ID, "k1", []dpm.Operation{verify("Top")}); !errors.Is(err, ErrAckEvicted) {
		t.Fatalf("k1 err = %v, want ErrAckEvicted", err)
	}
}

func TestIdemCapUnlimited(t *testing.T) {
	s := newTestServer(t, Options{Shards: 1, IdemCap: -1})
	c := mustCreate(t, s, "simplified", 0)
	fillIdemKeys(t, s, c.ID, DefaultIdemCap+10)
	// Every key — including the very first — still replays.
	if _, replayed, err := s.ApplyKeyed(c.ID, "k0", []dpm.Operation{verify("Top")}); err != nil || !replayed {
		t.Fatalf("k0 under unlimited cap: err=%v replayed=%v", err, replayed)
	}
}

// TestIdemCapSurvivesRestart: replay rebuilds the ack cache through the
// same bounded add path, so the LRU bound (and which keys aged out)
// carries across a durable restart.
func TestIdemCapSurvivesRestart(t *testing.T) {
	opts := Options{Shards: 1, DataDir: t.TempDir(), IdemCap: 2}
	s := newDurableServer(t, opts)
	c := mustCreate(t, s, "simplified", 0)
	fillIdemKeys(t, s, c.ID, 3)

	s2 := reopen(t, s, opts)
	if _, _, err := s2.ApplyKeyed(c.ID, "k0", []dpm.Operation{verify("Top")}); !errors.Is(err, ErrAckEvicted) {
		t.Fatalf("evicted key after restart err = %v, want ErrAckEvicted", err)
	}
	for _, k := range []string{"k1", "k2"} {
		if _, replayed, err := s2.ApplyKeyed(c.ID, k, []dpm.Operation{verify("Top")}); err != nil || !replayed {
			t.Fatalf("key %s after restart: err=%v replayed=%v, want cached replay", k, err, replayed)
		}
	}
	// Conflict detection also survives for the evicted key.
	if _, _, err := s2.ApplyKeyed(c.ID, "k0", []dpm.Operation{verify("AmpDesign")}); !errors.Is(err, ErrKeyConflict) {
		t.Fatalf("conflict under evicted key after restart err = %v, want ErrKeyConflict", err)
	}
}

// TestIdemCapHTTP422 pins the wire taxonomy: an evicted ack surfaces as
// 422, same class as a key conflict — the request is well-formed but
// cannot be satisfied safely.
func TestIdemCapHTTP422(t *testing.T) {
	s := newTestServer(t, Options{Shards: 1, IdemCap: 1})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	c := mustCreate(t, s, "simplified", 0)

	post := func(key string) *http.Response {
		t.Helper()
		body := `{"ops":[{"kind":"verification","problem":"Top","designer":"test"}]}`
		req, err := http.NewRequest("POST", ts.URL+"/sessions/"+c.ID+"/ops", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Idempotency-Key", key)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	if resp := post("a"); resp.StatusCode != http.StatusOK {
		t.Fatalf("first keyed POST status %d", resp.StatusCode)
	}
	if resp := post("b"); resp.StatusCode != http.StatusOK { // evicts a
		t.Fatalf("second keyed POST status %d", resp.StatusCode)
	}
	resp := post("a")
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("evicted-key POST status %d, want 422", resp.StatusCode)
	}
}
