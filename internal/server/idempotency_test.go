package server

// Idempotency-key edge cases, each with a deterministic documented
// outcome (OpsRequest doc):
//   - empty key   → unkeyed: the batch applies on every send;
//   - key + byte-different body → 422 (ErrKeyConflict), nothing
//     applied, the key stays bound to its first body — including
//     across a durable restart, where the hash is rebuilt from the
//     WAL's canonical bytes;
//   - keys are per-session: the same key on two sessions applies
//     independently on each.

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/dpm"
)

func verify(problem string) dpm.Operation {
	return dpm.Operation{Kind: dpm.OpVerification, Problem: problem, Designer: "test"}
}

func TestIdempotencyEmptyKeyAppliesEveryTime(t *testing.T) {
	s := newTestServer(t, Options{Shards: 1})
	c := mustCreate(t, s, "simplified", 4)
	for i := 1; i <= 3; i++ {
		resp, replayed, err := s.ApplyKeyed(c.ID, "", []dpm.Operation{verify("Top")})
		if err != nil {
			t.Fatalf("unkeyed send %d: %v", i, err)
		}
		if replayed {
			t.Fatalf("unkeyed send %d reported replayed", i)
		}
		if resp.Remaining != 4-i {
			t.Fatalf("unkeyed send %d: remaining %d, want %d", i, resp.Remaining, 4-i)
		}
	}
	st, err := s.State(c.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.Operations != 3 {
		t.Fatalf("unkeyed batches applied %d times, want 3", st.Operations)
	}
}

func TestIdempotencyKeyConflict(t *testing.T) {
	s := newTestServer(t, Options{Shards: 1})
	c := mustCreate(t, s, "simplified", 4)

	first, replayed, err := s.ApplyKeyed(c.ID, "k", []dpm.Operation{verify("Top")})
	if err != nil || replayed {
		t.Fatalf("first keyed send: err=%v replayed=%v", err, replayed)
	}
	before := stateJSON(t, s, c.ID)

	// Byte-different body under the same key: rejected, nothing applied.
	if _, _, err := s.ApplyKeyed(c.ID, "k", []dpm.Operation{verify("AmpDesign")}); !errors.Is(err, ErrKeyConflict) {
		t.Fatalf("conflicting body: err=%v, want ErrKeyConflict", err)
	}
	if after := stateJSON(t, s, c.ID); !bytes.Equal(before, after) {
		t.Fatalf("rejected conflicting batch changed state:\n%s\nvs\n%s", before, after)
	}

	// The key stays bound to its first body: the original batch still
	// replays its cached acknowledgement ...
	again, replayed, err := s.ApplyKeyed(c.ID, "k", []dpm.Operation{verify("Top")})
	if err != nil || !replayed {
		t.Fatalf("original body after conflict: err=%v replayed=%v, want cached replay", err, replayed)
	}
	if again.Remaining != first.Remaining || again.Stage != first.Stage {
		t.Fatalf("replay differs from first ack: %+v vs %+v", again, first)
	}
	// ... and the conflicting body keeps being rejected.
	if _, _, err := s.ApplyKeyed(c.ID, "k", []dpm.Operation{verify("AmpDesign")}); !errors.Is(err, ErrKeyConflict) {
		t.Fatalf("second conflicting send: err=%v, want ErrKeyConflict", err)
	}
}

func TestIdempotencyKeyCrossSession(t *testing.T) {
	s := newTestServer(t, Options{Shards: 2})
	a := mustCreate(t, s, "simplified", 4)
	b := mustCreate(t, s, "simplified", 4)

	if _, replayed, err := s.ApplyKeyed(a.ID, "shared", []dpm.Operation{verify("Top")}); err != nil || replayed {
		t.Fatalf("session a: err=%v replayed=%v", err, replayed)
	}
	// Same key, different session, different body: applies fresh there —
	// no replay, no conflict.
	if _, replayed, err := s.ApplyKeyed(b.ID, "shared", []dpm.Operation{verify("AmpDesign")}); err != nil || replayed {
		t.Fatalf("session b with reused key: err=%v replayed=%v, want fresh apply", err, replayed)
	}
	stA, err := s.State(a.ID)
	if err != nil {
		t.Fatal(err)
	}
	stB, err := s.State(b.ID)
	if err != nil {
		t.Fatal(err)
	}
	if stA.Operations != 1 || stB.Operations != 1 {
		t.Fatalf("per-session key scoping broken: ops %d/%d, want 1/1", stA.Operations, stB.Operations)
	}
}

// TestIdempotencyKeyConflictSurvivesRestart: the conflict hash is
// rebuilt from the WAL's canonical batch bytes on recovery, so a
// restarted server still refuses the same key with a different body
// and still replays the original one.
func TestIdempotencyKeyConflictSurvivesRestart(t *testing.T) {
	opts := Options{Shards: 1, DataDir: t.TempDir()}
	s := newDurableServer(t, opts)
	c := mustCreate(t, s, "simplified", 4)
	applyKeyed(t, s, c.ID, "k", []dpm.Operation{verify("Top")})

	s2 := reopen(t, s, opts)
	if _, replayed, err := s2.ApplyKeyed(c.ID, "k", []dpm.Operation{verify("Top")}); err != nil || !replayed {
		t.Fatalf("same body after restart: err=%v replayed=%v, want cached replay", err, replayed)
	}
	if _, _, err := s2.ApplyKeyed(c.ID, "k", []dpm.Operation{verify("AmpDesign")}); !errors.Is(err, ErrKeyConflict) {
		t.Fatalf("conflicting body after restart: err=%v, want ErrKeyConflict", err)
	}
}
