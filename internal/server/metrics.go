package server

import (
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/stats"
)

// Per-endpoint latency metrics. Every API route is wrapped by
// instrument, which records one sample per request — wall-clock latency
// into a log-bucketed histogram (stats.LogHist, ≤3.1% quantile error)
// and the response status into exact counters. The recorders are
// lock-guarded rather than per-goroutine because one sample per HTTP
// request is far off the propagation hot path; the engine benches
// (7/12 allocs/op) never touch this code.

// endpointLabels is the fixed route set, in display order.
var endpointLabels = []string{"create", "ops", "state", "events", "delete", "migrate", "adopt", "stats", "healthz", "readyz"}

// endpointRecorder accumulates one route's latency and status counts.
type endpointRecorder struct {
	mu       sync.Mutex
	hist     stats.LogHist
	statuses map[int]uint64
	errors   uint64
}

func (er *endpointRecorder) record(status int, d time.Duration) {
	er.mu.Lock()
	defer er.mu.Unlock()
	if er.statuses == nil {
		er.statuses = map[int]uint64{}
	}
	er.hist.Observe(d.Nanoseconds())
	er.statuses[status]++
	if status >= 400 {
		er.errors++
	}
}

// latencySet holds every route's recorder; built once per Server.
type latencySet struct {
	byLabel map[string]*endpointRecorder
}

func newLatencySet() *latencySet {
	ls := &latencySet{byLabel: map[string]*endpointRecorder{}}
	for _, l := range endpointLabels {
		ls.byLabel[l] = &endpointRecorder{}
	}
	return ls
}

// statusWriter captures the response status for the recorder.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer so instrumented SSE handlers
// can stream (the events endpoint type-asserts http.Flusher).
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap supports http.ResponseController passthrough.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// instrument wraps one route with the labeled latency recorder.
func (s *Server) instrument(label string, h http.HandlerFunc) http.HandlerFunc {
	er := s.lat.byLabel[label]
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		start := s.opts.nowFn()
		h(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		er.record(sw.status, s.opts.nowFn().Sub(start))
	}
}

// EndpointLatency is one route's latency snapshot: exact request/status
// counts and log-bucketed quantiles in nanoseconds. Exposed on expvar
// (PublishDebug, variable "adpmd_latency") so a scraping load generator
// or dashboard can read server-side latency next to the shard gauges.
type EndpointLatency struct {
	Endpoint string            `json:"endpoint"`
	Requests uint64            `json:"requests"`
	Errors   uint64            `json:"errors"`
	Statuses map[string]uint64 `json:"statuses,omitempty"`
	P50Ns    int64             `json:"p50_ns"`
	P90Ns    int64             `json:"p90_ns"`
	P99Ns    int64             `json:"p99_ns"`
	P999Ns   int64             `json:"p999_ns"`
	MaxNs    int64             `json:"max_ns"`
	MeanNs   float64           `json:"mean_ns"`
}

// Latency snapshots every route's latency recorder, in the fixed
// endpoint order. Routes that never served a request are included with
// zero counts so the set of keys is stable for scrapers.
func (s *Server) Latency() []EndpointLatency {
	out := make([]EndpointLatency, 0, len(endpointLabels))
	for _, label := range endpointLabels {
		er := s.lat.byLabel[label]
		er.mu.Lock()
		el := EndpointLatency{
			Endpoint: label,
			Requests: er.hist.Count(),
			Errors:   er.errors,
			P50Ns:    er.hist.Quantile(0.50),
			P90Ns:    er.hist.Quantile(0.90),
			P99Ns:    er.hist.Quantile(0.99),
			P999Ns:   er.hist.Quantile(0.999),
			MaxNs:    er.hist.Max(),
			MeanNs:   er.hist.Mean(),
		}
		if len(er.statuses) > 0 {
			el.Statuses = make(map[string]uint64, len(er.statuses))
			for code, n := range er.statuses {
				el.Statuses[strconv.Itoa(code)] = n
			}
		}
		er.mu.Unlock()
		out = append(out, el)
	}
	return out
}

// Readiness taxonomy (GET /readyz). Statuses, per shard and overall:
//
//	"ready"       shard accepts work
//	"draining"    intake stopped (server-wide)
//	"broken"      the shard's WAL failed sticky-broken (degraded overall)
//	"catching-up" quorum leader whose peer is out of sync: the next
//	              write would stall on (or fail) catch-up, so the node
//	              is not ready for traffic yet
//	"following"   replication follower; not servable until promoted
//
// Anything but "ready" overall answers 503 — orchestrators and load
// generators gate on the code, dashboards read the per-shard rows.

// ShardReady is one shard's row of the /readyz report.
type ShardReady struct {
	Shard    int    `json:"shard"`
	Status   string `json:"status"`
	Sessions int64  `json:"sessions"`
	Parked   int64  `json:"parked,omitempty"`
	// Repl is the shard's replication state (Options.ReplStatus); nil
	// on an unreplicated server.
	Repl *ReplStatus `json:"repl,omitempty"`
}

// ReadyReport is the full /readyz body.
type ReadyReport struct {
	Status string       `json:"status"`
	Shards []ShardReady `json:"shards"`
}

// Ready computes the readiness report; ok is true when the server
// should answer 200.
func (s *Server) Ready() (ReadyReport, bool) {
	draining := s.draining.Load()
	rep := ReadyReport{Status: "ready"}
	degrade := func(status string) {
		// Overall status keeps the most severe shard condition, in
		// taxonomy order: draining outranks broken outranks catching-up.
		rank := map[string]int{"ready": 0, "catching-up": 1, "following": 2, "broken": 3, "draining": 4}
		if rank[status] > rank[rep.Status] {
			rep.Status = status
		}
	}
	for _, sh := range s.shards {
		row := ShardReady{
			Shard:    sh.idx,
			Status:   "ready",
			Sessions: sh.nSessions.Load(),
			Parked:   sh.nParked.Load(),
		}
		if s.opts.ReplStatus != nil {
			st := s.opts.ReplStatus(sh.idx)
			row.Repl = &st
			switch {
			case st.Role == "follower":
				row.Status = "following"
			case st.Quorum && !st.InSync:
				row.Status = "catching-up"
			}
		}
		if sh.walBroken.Load() {
			row.Status = "broken"
		}
		if draining {
			row.Status = "draining"
		}
		if row.Status != "ready" {
			degrade(row.Status)
		}
		rep.Shards = append(rep.Shards, row)
	}
	if draining {
		rep.Status = "draining"
	} else if rep.Status == "broken" {
		rep.Status = "degraded"
	}
	return rep, rep.Status == "ready"
}

// handleReady is GET /readyz: readiness, as opposed to /healthz's
// liveness. A server is ready when it accepts new work — not draining,
// no shard WAL sticky-broken, and (when replicated in quorum mode) the
// peer caught up. The body reports every shard's status so operators
// see *which* shard holds a rolling restart back.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	rep, ok := s.Ready()
	code := http.StatusOK
	if !ok {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, rep)
}
