package server

import (
	"bytes"
	"fmt"

	"repro/internal/wal"
)

// Cross-pair session migration, the generalization of ParkAll's
// park-then-transfer: one session parks, its WAL image ships to the
// destination pair (internal/cluster orchestrates the transfer over the
// internal/replica transport), and ownership flips under a new cluster
// epoch. The protocol's crash-ordering is adopt-before-tombstone:
//
//  1. BeginMigrate parks the session and freezes it (ErrMigrating);
//  2. the orchestrator ships the image and the destination adopts it
//     (AdoptSession — one durable wal.TypeAdopt record);
//  3. CompleteMigrate appends the wal.TypeMoved tombstone here and
//     starts answering with ErrMoved (HTTP 307 + Location).
//
// A crash after (2) but before (3) leaves two durable copies with the
// source still owning — safe, because the frozen source never acked
// anything the destination lacks, and AdoptSession is idempotent (an
// equal-or-longer resident image makes re-adoption a no-op), so the
// orchestrator just re-runs the transfer. A crash before (2) aborts:
// the source recovers the session as parked (BeginMigrate's freeze is
// deliberately volatile — restart = abort).

// MovedError is ErrMoved carrying the forwarding address; the HTTP
// layer renders it as 307 + Location.
type MovedError struct {
	ID string
	// Location is the forwarding address recorded by CompleteMigrate —
	// by convention the destination pair's client base URL.
	Location string
}

func (e *MovedError) Error() string {
	return fmt.Sprintf("server: session %s moved to %s", e.ID, e.Location)
}

// Is makes errors.Is(err, ErrMoved) hold for MovedError values.
func (e *MovedError) Is(target error) bool { return target == ErrMoved }

// ValidateExternalID checks an externally-minted session id: the "c"
// prefix (the namespace disjoint from server-minted "s<shard>-<seq>"
// ids), a sane length, and a conservative alphabet so ids embed
// cleanly in URLs, WAL records, and trace lines.
func ValidateExternalID(id string) error {
	if len(id) < 2 || len(id) > 64 {
		return fmt.Errorf("%w: external session id must be 2..64 bytes, got %d", ErrInvalid, len(id))
	}
	if id[0] != 'c' {
		return fmt.Errorf("%w: external session id %q must start with %q", ErrInvalid, id, "c")
	}
	for i := 1; i < len(id); i++ {
		c := id[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '-' || c == '_' {
			continue
		}
		return fmt.Errorf("%w: external session id %q has invalid byte %q", ErrInvalid, id, c)
	}
	return nil
}

// BeginMigrate parks a session (live engine dropped, image retained)
// and freezes it: until CompleteMigrate or AbortMigrate resolves the
// transfer, every request on it answers ErrMigrating. Returns a deep
// copy of the image for the orchestrator to ship. Only durable servers
// can migrate (the image is the WAL's, and the tombstone must be
// loggable).
func (s *Server) BeginMigrate(id string) (*wal.SessionImage, error) {
	sh, err := s.shardFor(id)
	if err != nil {
		return nil, err
	}
	var img *wal.SessionImage
	var merr error
	err = sh.submit(func() {
		if sh.wal == nil {
			merr = fmt.Errorf("%w: migration requires a durable server", ErrInvalid)
			return
		}
		if hs := sh.sessions[id]; hs != nil {
			sh.park(hs)
		}
		p := sh.parked[id]
		if p == nil {
			switch {
			case sh.migrating[id] != nil:
				merr = fmt.Errorf("%w: session %q", ErrMigrating, id)
			case sh.moved[id] != "":
				merr = &MovedError{ID: id, Location: sh.moved[id]}
			default:
				merr = ErrUnknownSession
			}
			return
		}
		delete(sh.parked, id)
		sh.nParked.Store(int64(len(sh.parked)))
		sh.migrating[id] = p
		img = p.img.Clone()
	})
	if err != nil {
		return nil, err
	}
	return img, merr
}

// CompleteMigrate resolves a BeginMigrate by appending the moved
// tombstone: the destination has durably adopted the image, so this
// pair's copy is abandoned and every future request answers ErrMoved
// with the given forwarding location. The park-time summary folds into
// the shard totals — the operations happened here, and the trace
// reconciliation must still see them.
func (s *Server) CompleteMigrate(id, location string) error {
	sh, err := s.shardFor(id)
	if err != nil {
		return err
	}
	var merr error
	err = sh.submit(func() {
		p := sh.migrating[id]
		if p == nil {
			merr = ErrUnknownSession
			return
		}
		if location == "" {
			merr = fmt.Errorf("%w: moved location is required", ErrInvalid)
			return
		}
		if merr = sh.appendWAL(&wal.Record{Type: wal.TypeMoved, Session: id, Location: location}); merr != nil {
			return
		}
		delete(sh.migrating, id)
		sh.moved[id] = location
		sh.nMoved.Store(int64(len(sh.moved)))
		sum := p.sum
		sum.Evicted = true
		sh.closedSessions = append(sh.closedSessions, sum)
		sh.totals.add(sum)
		sh.migrated.Add(1)
	})
	if err != nil {
		return err
	}
	return merr
}

// AbortMigrate unfreezes a session whose transfer failed before the
// destination adopted it: the image returns to the parked set and the
// next touch restores it as if the migration never started.
func (s *Server) AbortMigrate(id string) error {
	sh, err := s.shardFor(id)
	if err != nil {
		return err
	}
	var merr error
	err = sh.submit(func() {
		p := sh.migrating[id]
		if p == nil {
			merr = ErrUnknownSession
			return
		}
		delete(sh.migrating, id)
		sh.parked[id] = p
		sh.nParked.Store(int64(len(sh.parked)))
	})
	if err != nil {
		return err
	}
	return merr
}

// AdoptSession installs a migrated-in image: one durable wal.TypeAdopt
// record, after which the session is parked here (first touch restores
// it by the same replay path recovery uses) and any moved tombstone
// for the id is cleared (a session migrating back home). Idempotent:
// re-adopting an image no longer than the resident copy's history is a
// no-op success, so a migration orchestrator that crashed between
// adopt and tombstone can simply re-run the transfer.
func (s *Server) AdoptSession(img *wal.SessionImage) error {
	if img == nil || img.ID == "" {
		return fmt.Errorf("%w: adopt requires a session image", ErrInvalid)
	}
	if img.Moved != "" {
		return fmt.Errorf("%w: adopt image carries a moved tombstone", ErrInvalid)
	}
	sh, err := s.shardFor(img.ID)
	if err != nil {
		return err
	}
	var merr error
	err = sh.submit(func() {
		if sh.wal == nil {
			merr = fmt.Errorf("%w: adoption requires a durable server", ErrInvalid)
			return
		}
		id := img.ID
		if sh.migrating[id] != nil {
			// This pair is mid-export of the same id; adopting now would
			// fork the history.
			merr = fmt.Errorf("%w: session %q", ErrMigrating, id)
			return
		}
		var residentImg *wal.SessionImage
		if hs := sh.sessions[id]; hs != nil {
			residentImg = hs.img
		} else if p := sh.parked[id]; p != nil {
			residentImg = p.img
		}
		if residentImg != nil {
			resident := len(residentImg.Ops)
			if resident >= len(img.Ops) {
				// Duplicate delivery of a transfer that already landed.
				return
			}
			// A shorter resident copy is a stale leftover of an earlier
			// transfer that was aborted after this pair adopted (the source
			// kept serving and grew the history). Replacing it is safe only
			// when the incoming image extends it — a non-prefix means the
			// histories forked, which no re-transfer may paper over.
			if !prefixOf(residentImg.Ops, img.Ops) {
				merr = fmt.Errorf("%w: adopt of %q diverges from the resident copy (forked history)", ErrInvalid, id)
				return
			}
			if hs := sh.sessions[id]; hs != nil {
				// Drop the stale live engine; the adopted image below
				// replaces its parked form.
				sh.park(hs)
			}
		}
		cp := img.Clone()
		if merr = sh.appendWAL(&wal.Record{Type: wal.TypeAdopt, Sessions: []wal.SessionImage{*cp.Clone()}}); merr != nil {
			return
		}
		delete(sh.moved, id)
		sh.nMoved.Store(int64(len(sh.moved)))
		sh.installParked(cp)
		sh.adopted.Add(1)
		sh.maybeRotate()
	})
	if err != nil {
		return err
	}
	return merr
}

// Adopt makes *Server satisfy internal/replica's Adopter extension, so
// a leader can accept migrated sessions directly over the replica
// transport (cmd/adpmd's -adopt listener).
func (s *Server) Adopt(img *wal.SessionImage) error { return s.AdoptSession(img) }

// prefixOf reports whether the resident batch history is an exact
// prefix of the incoming one (same keys, same op bytes).
func prefixOf(resident, incoming []wal.OpsEntry) bool {
	if len(resident) > len(incoming) {
		return false
	}
	for i := range resident {
		if resident[i].Key != incoming[i].Key || !bytes.Equal(resident[i].Ops, incoming[i].Ops) {
			return false
		}
	}
	return true
}

// installParked registers an image as a parked session (recovery and
// adoption share it). Loop goroutine only.
func (sh *shard) installParked(img *wal.SessionImage) {
	label := ""
	if scn, err := resolveImageScenario(img); err == nil {
		label = scn.Name
	}
	sh.parked[img.ID] = &parkedSession{
		img:      img,
		scenario: label,
		sum:      SessionSummary{ID: img.ID, Scenario: label, Mode: img.Mode, Evicted: true},
		lastUsed: sh.now(),
	}
	sh.nParked.Store(int64(len(sh.parked)))
}

// MovedLocation reports the forwarding address of a migrated-away
// session ("" when the id has no tombstone here).
func (s *Server) MovedLocation(id string) string {
	sh, err := s.shardFor(id)
	if err != nil {
		return ""
	}
	var loc string
	_ = sh.submit(func() { loc = sh.moved[id] })
	return loc
}
