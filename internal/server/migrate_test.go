package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/dpm"
	"repro/internal/wal"
)

// migratedSession creates a durable session with two applied batches
// and returns its id plus its serialized state.
func migratedSession(t *testing.T, s *Server) (string, []byte) {
	t.Helper()
	c := mustCreate(t, s, "simplified", 0)
	applyKeyed(t, s, c.ID, "m1", []dpm.Operation{synth("AmpDesign", "Width", 3)})
	applyKeyed(t, s, c.ID, "m2", []dpm.Operation{synth("AmpDesign", "Ind", 2)})
	st, err := s.StateBytes(c.ID)
	if err != nil {
		t.Fatal(err)
	}
	return c.ID, st
}

// TestBeginMigrateFreezes pins step 1 of the protocol: the session
// parks, every request answers ErrMigrating, and the exported image
// carries the full batch history.
func TestBeginMigrateFreezes(t *testing.T) {
	s := newDurableServer(t, Options{Shards: 1})
	id, _ := migratedSession(t, s)

	img, err := s.BeginMigrate(id)
	if err != nil {
		t.Fatal(err)
	}
	if img.ID != id || len(img.Ops) != 2 {
		t.Fatalf("exported image id=%q ops=%d, want %q with 2 batches", img.ID, len(img.Ops), id)
	}
	if _, err := s.State(id); !errors.Is(err, ErrMigrating) {
		t.Fatalf("State during migration: %v, want ErrMigrating", err)
	}
	if _, err := s.Apply(id, []dpm.Operation{synth("AmpDesign", "Bias", 4)}); !errors.Is(err, ErrMigrating) {
		t.Fatalf("Apply during migration: %v, want ErrMigrating", err)
	}
	// A second begin on the frozen session must refuse, not double-export.
	if _, err := s.BeginMigrate(id); !errors.Is(err, ErrMigrating) {
		t.Fatalf("second BeginMigrate: %v, want ErrMigrating", err)
	}
}

// TestAbortMigrateUnfreezes pins the failure path: after an abort the
// session serves again as if the migration never started.
func TestAbortMigrateUnfreezes(t *testing.T) {
	s := newDurableServer(t, Options{Shards: 1})
	id, before := migratedSession(t, s)

	if _, err := s.BeginMigrate(id); err != nil {
		t.Fatal(err)
	}
	if err := s.AbortMigrate(id); err != nil {
		t.Fatal(err)
	}
	after, err := s.StateBytes(id)
	if err != nil {
		t.Fatalf("State after abort: %v", err)
	}
	if !bytes.Equal(before, after) {
		t.Error("abort changed the session state")
	}
	if _, _, err := s.ApplyKeyed(id, "m3", []dpm.Operation{synth("AmpDesign", "Bias", 4)}); err != nil {
		t.Fatalf("apply after abort: %v", err)
	}
}

// TestCompleteMigrateTombstones pins step 3: the moved tombstone is
// durable — ErrMoved with the forwarding location, surviving a restart.
func TestCompleteMigrateTombstones(t *testing.T) {
	s := newDurableServer(t, Options{Shards: 1})
	id, _ := migratedSession(t, s)

	if _, err := s.BeginMigrate(id); err != nil {
		t.Fatal(err)
	}
	if err := s.CompleteMigrate(id, "http://pair-b"); err != nil {
		t.Fatal(err)
	}
	var moved *MovedError
	if _, err := s.State(id); !errors.As(err, &moved) || moved.Location != "http://pair-b" {
		t.Fatalf("State after complete: %v, want MovedError to http://pair-b", err)
	}
	if loc := s.MovedLocation(id); loc != "http://pair-b" {
		t.Fatalf("MovedLocation = %q", loc)
	}

	s = reopen(t, s, Options{Shards: 1})
	if _, err := s.State(id); !errors.Is(err, ErrMoved) {
		t.Fatalf("tombstone lost across restart: %v, want ErrMoved", err)
	}
	if loc := s.MovedLocation(id); loc != "http://pair-b" {
		t.Fatalf("MovedLocation after restart = %q", loc)
	}
}

// TestAdoptSessionRestoresState pins the receiving side: the adopted
// image serves the exact state the source had, and acked keys replay.
func TestAdoptSessionRestoresState(t *testing.T) {
	src := newDurableServer(t, Options{Shards: 1})
	id, want := migratedSession(t, src)
	img, err := src.BeginMigrate(id)
	if err != nil {
		t.Fatal(err)
	}

	dst := newDurableServer(t, Options{Shards: 1})
	if err := dst.AdoptSession(img); err != nil {
		t.Fatal(err)
	}
	got, err := dst.StateBytes(id)
	if err != nil {
		t.Fatalf("adopted session does not serve: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("adopted state differs:\n  src: %s\n  dst: %s", want, got)
	}
	// The idempotency keys migrated with the history: a retry of an
	// acked batch must be a replay, not a second application.
	_, replayed, err := dst.ApplyKeyed(id, "m2", []dpm.Operation{synth("AmpDesign", "Ind", 2)})
	if err != nil {
		t.Fatal(err)
	}
	if !replayed {
		t.Error("acked key m2 applied fresh on the destination")
	}
	// Adoption is durable: the session survives a destination restart.
	dst = reopen(t, dst, Options{Shards: 1})
	if got, err = dst.StateBytes(id); err != nil || !bytes.Equal(got, want) {
		t.Fatalf("adopted session after restart: %v (state equal: %v)", err, bytes.Equal(got, want))
	}
}

// TestAdoptSessionIdempotency pins the re-run semantics that make the
// orchestrator crash-safe: duplicate adopt is a no-op, a strict
// extension replaces, a forked history is refused.
func TestAdoptSessionIdempotency(t *testing.T) {
	src := newDurableServer(t, Options{Shards: 1})
	id, _ := migratedSession(t, src)
	short, err := src.BeginMigrate(id)
	if err != nil {
		t.Fatal(err)
	}
	// Grow the source history past the exported image: abort, apply one
	// more batch, re-export the longer image.
	if err := src.AbortMigrate(id); err != nil {
		t.Fatal(err)
	}
	applyKeyed(t, src, id, "m3", []dpm.Operation{synth("AmpDesign", "Bias", 4)})
	long, err := src.BeginMigrate(id)
	if err != nil {
		t.Fatal(err)
	}
	want, ok := long.Ops, len(long.Ops) == 3
	if !ok {
		t.Fatalf("long image has %d batches, want 3", len(want))
	}

	dst := newDurableServer(t, Options{Shards: 1})
	if err := dst.AdoptSession(short); err != nil {
		t.Fatal(err)
	}
	// Duplicate delivery of the same transfer: no-op success.
	if err := dst.AdoptSession(short); err != nil {
		t.Fatalf("duplicate adopt: %v", err)
	}
	// The longer image extends the resident prefix: replace.
	if err := dst.AdoptSession(long); err != nil {
		t.Fatalf("extension adopt: %v", err)
	}
	st, err := dst.State(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.Operations != 3 {
		t.Fatalf("after extension adopt: %d operations, want 3", st.Operations)
	}
	// Re-adopting the now-shorter image: no-op, nothing rolls back.
	if err := dst.AdoptSession(short); err != nil {
		t.Fatalf("stale re-adopt: %v", err)
	}
	if st, _ = dst.State(id); st.Operations != 3 {
		t.Fatalf("stale re-adopt rolled back to %d operations", st.Operations)
	}

	// A forked history — same length as resident, different bytes — is
	// the one thing re-transfer must never paper over.
	fork := long.Clone()
	fork.Ops = append([]wal.OpsEntry(nil), fork.Ops...)
	fork.Ops[2] = wal.OpsEntry{Key: "mX", Ops: fork.Ops[2].Ops}
	fork.Ops = append(fork.Ops, wal.OpsEntry{Key: "mY", Ops: fork.Ops[1].Ops})
	if err := dst.AdoptSession(fork); !errors.Is(err, ErrInvalid) {
		t.Fatalf("forked adopt: %v, want ErrInvalid", err)
	}
}

// TestMigrateHTTP pins the wire rendering of the whole protocol: the
// begin/complete/abort/adopt endpoints, 503 + Retry-After while frozen,
// and 307 + full Location after the move.
func TestMigrateHTTP(t *testing.T) {
	src := newDurableServer(t, Options{Shards: 1})
	dst := newDurableServer(t, Options{Shards: 1})
	id, want := migratedSession(t, src)
	hs, hd := src.Handler(), dst.Handler()

	post := func(h http.Handler, path string, body []byte) *httptest.ResponseRecorder {
		t.Helper()
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body)))
		return rr
	}

	// Begin over HTTP exports the image.
	rr := post(hs, "/sessions/"+id+"/migrate", nil)
	if rr.Code != http.StatusOK {
		t.Fatalf("begin: %d: %s", rr.Code, rr.Body)
	}
	imgBytes := rr.Body.Bytes()

	// Frozen: session routes answer 503 with a Retry-After hint.
	get := httptest.NewRecorder()
	hs.ServeHTTP(get, httptest.NewRequest(http.MethodGet, "/sessions/"+id+"/state", nil))
	if get.Code != http.StatusServiceUnavailable || get.Header().Get("Retry-After") == "" {
		t.Fatalf("state while frozen: %d (Retry-After %q), want 503 with hint", get.Code, get.Header().Get("Retry-After"))
	}

	// Adopt on the destination over HTTP.
	if rr = post(hd, "/adopt", imgBytes); rr.Code != http.StatusOK {
		t.Fatalf("adopt: %d: %s", rr.Code, rr.Body)
	}

	// Complete with the destination's base as the forwarding address.
	body, _ := json.Marshal(map[string]string{"location": "http://pair-b:8080"})
	if rr = post(hs, "/sessions/"+id+"/migrate/complete", body); rr.Code != http.StatusOK {
		t.Fatalf("complete: %d: %s", rr.Code, rr.Body)
	}

	// The source answers 307 whose Location is base + original path.
	get = httptest.NewRecorder()
	hs.ServeHTTP(get, httptest.NewRequest(http.MethodGet, "/sessions/"+id+"/state", nil))
	if get.Code != http.StatusTemporaryRedirect {
		t.Fatalf("state after move: %d, want 307", get.Code)
	}
	if loc := get.Header().Get("Location"); loc != "http://pair-b:8080/sessions/"+id+"/state" {
		t.Fatalf("Location %q, want base+path", loc)
	}

	// The destination serves the identical state.
	get = httptest.NewRecorder()
	hd.ServeHTTP(get, httptest.NewRequest(http.MethodGet, "/sessions/"+id+"/state", nil))
	if get.Code != http.StatusOK || !bytes.Equal(bytes.TrimSpace(get.Body.Bytes()), bytes.TrimSpace(want)) {
		t.Fatalf("destination state: %d\n  want: %s\n  got:  %s", get.Code, want, get.Body)
	}

	// Abort on an unknown session maps to 404.
	if rr = post(hs, "/sessions/cnosuch/migrate/abort", nil); rr.Code != http.StatusNotFound {
		t.Fatalf("abort unknown: %d, want 404", rr.Code)
	}
}

// TestMigrateRequiresDurable pins that an ephemeral server refuses the
// protocol outright.
func TestMigrateRequiresDurable(t *testing.T) {
	s := newTestServer(t, Options{Shards: 1})
	c := mustCreate(t, s, "simplified", 0)
	if _, err := s.BeginMigrate(c.ID); !errors.Is(err, ErrInvalid) {
		t.Fatalf("BeginMigrate on ephemeral server: %v, want ErrInvalid", err)
	}
	if err := s.AdoptSession(&wal.SessionImage{ID: "cx1"}); !errors.Is(err, ErrInvalid) {
		t.Fatalf("AdoptSession on ephemeral server: %v, want ErrInvalid", err)
	}
}

// TestValidateExternalID pins the id namespace contract.
func TestValidateExternalID(t *testing.T) {
	for _, ok := range []string{"c1", "cp0x42", "cA-b_9"} {
		if err := ValidateExternalID(ok); err != nil {
			t.Errorf("%q rejected: %v", ok, err)
		}
	}
	for _, bad := range []string{"", "c", "s1-2", "x123", "c id", "c/../x", "c" + strings.Repeat("a", 64)} {
		if err := ValidateExternalID(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}
