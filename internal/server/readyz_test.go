package server

import (
	"encoding/json"
	"errors"
	"testing"

	"repro/internal/dpm"
	"repro/internal/faultfs"
	"repro/internal/wal"
)

// replStub scripts Options.ReplStatus per shard for the taxonomy test.
func replStub(byShard map[int]ReplStatus) func(int) ReplStatus {
	return func(shard int) ReplStatus { return byShard[shard] }
}

// TestReadyzTaxonomy walks the /readyz status taxonomy: per-shard rows
// and the overall status/HTTP code for every readiness condition.
func TestReadyzTaxonomy(t *testing.T) {
	cases := []struct {
		name       string
		repl       func(int) ReplStatus
		drain      bool
		breakShard bool
		wantCode   int
		wantStatus string
		wantShard0 string
	}{
		{
			name:       "ready",
			wantCode:   200,
			wantStatus: "ready",
			wantShard0: "ready",
		},
		{
			name:       "draining",
			drain:      true,
			wantCode:   503,
			wantStatus: "draining",
			wantShard0: "draining",
		},
		{
			name:       "broken shard degrades",
			breakShard: true,
			wantCode:   503,
			wantStatus: "degraded",
			wantShard0: "broken",
		},
		{
			name: "quorum leader in sync",
			repl: replStub(map[int]ReplStatus{
				0: {Role: "leader", Quorum: true, InSync: true},
				1: {Role: "leader", Quorum: true, InSync: true},
			}),
			wantCode:   200,
			wantStatus: "ready",
			wantShard0: "ready",
		},
		{
			name: "quorum leader catching up",
			repl: replStub(map[int]ReplStatus{
				0: {Role: "leader", Quorum: true, InSync: false, LagRecords: 7, LagBytes: 512},
				1: {Role: "leader", Quorum: true, InSync: true},
			}),
			wantCode:   503,
			wantStatus: "catching-up",
			wantShard0: "catching-up",
		},
		{
			name: "async leader lagging stays ready",
			repl: replStub(map[int]ReplStatus{
				0: {Role: "leader", Quorum: false, InSync: false, LagRecords: 7},
				1: {Role: "leader", Quorum: false, InSync: true},
			}),
			wantCode:   200,
			wantStatus: "ready",
			wantShard0: "ready",
		},
		{
			name: "follower role not servable",
			repl: replStub(map[int]ReplStatus{
				0: {Role: "follower", InSync: true},
				1: {Role: "follower", InSync: true},
			}),
			wantCode:   503,
			wantStatus: "following",
			wantShard0: "following",
		},
		{
			name: "draining outranks catching up",
			repl: replStub(map[int]ReplStatus{
				0: {Role: "leader", Quorum: true, InSync: false},
			}),
			drain:      true,
			wantCode:   503,
			wantStatus: "draining",
			wantShard0: "draining",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fsys := faultfs.NewMemFS()
			fault := &faultfs.Fault{Inner: fsys}
			s, err := Open(Options{Shards: 2, DataDir: "data", FS: fault, ReplStatus: tc.repl})
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			defer s.Kill()
			if _, err := s.CreateSession(CreateSpec{Name: "simplified", Mode: dpm.ADPM, MaxOps: 10}); err != nil {
				t.Fatalf("create: %v", err)
			}
			if tc.breakShard {
				// Fail the next fsync: the shard's WAL goes sticky-broken.
				fault.OnSync = func(n int, name string) error { return errors.New("injected") }
				if _, err := s.CreateSession(CreateSpec{Name: "simplified", Mode: dpm.ADPM, MaxOps: 10}); err == nil {
					t.Fatalf("expected storage failure")
				}
				fault.OnSync = nil
			}
			if tc.drain {
				s.Drain()
			}
			rr := do(s.Handler(), "GET", "/readyz", "")
			if rr.Code != tc.wantCode {
				t.Fatalf("code = %d, want %d (body %s)", rr.Code, tc.wantCode, rr.Body.String())
			}
			var rep ReadyReport
			if err := json.Unmarshal(rr.Body.Bytes(), &rep); err != nil {
				t.Fatalf("body: %v", err)
			}
			if rep.Status != tc.wantStatus {
				t.Fatalf("status = %q, want %q", rep.Status, tc.wantStatus)
			}
			if len(rep.Shards) != 2 {
				t.Fatalf("want 2 shard rows, got %d", len(rep.Shards))
			}
			var row0 ShardReady
			for _, row := range rep.Shards {
				if row.Shard == 0 {
					row0 = row
				}
			}
			if tc.breakShard {
				// Only the shard that hit the fault reports broken.
				broken := 0
				for _, row := range rep.Shards {
					if row.Status == "broken" {
						broken++
						row0 = row
					}
				}
				if broken != 1 {
					t.Fatalf("want exactly 1 broken shard, got %d (%+v)", broken, rep.Shards)
				}
			}
			if row0.Status != tc.wantShard0 {
				t.Fatalf("shard 0 status = %q, want %q (%+v)", row0.Status, tc.wantShard0, rep.Shards)
			}
			if tc.repl != nil {
				if row0.Repl == nil {
					t.Fatalf("shard row missing repl state")
				}
				want := tc.repl(row0.Shard)
				if *row0.Repl != want {
					t.Fatalf("repl = %+v, want %+v", *row0.Repl, want)
				}
			}
		})
	}
}

// TestReadyzReportsReplLag checks the lag gauges survive the JSON trip.
func TestReadyzReportsReplLag(t *testing.T) {
	s, err := Open(Options{Shards: 1, ReplStatus: replStub(map[int]ReplStatus{
		0: {Role: "leader", Quorum: false, InSync: false, LagRecords: 3, LagBytes: 222},
	})})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Kill()
	rr := do(s.Handler(), "GET", "/readyz", "")
	if rr.Code != 200 {
		t.Fatalf("async lag must stay ready, got %d", rr.Code)
	}
	var rep ReadyReport
	if err := json.Unmarshal(rr.Body.Bytes(), &rep); err != nil {
		t.Fatalf("body: %v", err)
	}
	if got := rep.Shards[0].Repl; got == nil || got.LagRecords != 3 || got.LagBytes != 222 {
		t.Fatalf("lag gauges lost: %+v", got)
	}
}

// TestShipperSeamForwardsInCommitOrder exercises Options.Repl with a
// recording stub: every WAL mutation arrives, tagged with its shard,
// in commit order — the contract internal/replica builds on.
func TestShipperSeamForwardsInCommitOrder(t *testing.T) {
	rec := &recordingShipper{}
	s, err := Open(Options{Shards: 1, DataDir: "data", FS: faultfs.NewMemFS(), Repl: rec})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Kill()
	c, err := s.CreateSession(CreateSpec{Name: "simplified", Mode: dpm.ADPM, MaxOps: 10})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := s.Delete(c.ID); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if len(rec.events) < 2 {
		t.Fatalf("shipper saw %d events, want >= 2", len(rec.events))
	}
	var lastOff int64 = -1
	for i, ev := range rec.events {
		if ev.shard != 0 {
			t.Fatalf("event %d on shard %d", i, ev.shard)
		}
		if ev.ev.Kind == wal.ShipAppend {
			if ev.ev.Off <= lastOff {
				t.Fatalf("append offsets not monotone: %d after %d", ev.ev.Off, lastOff)
			}
			lastOff = ev.ev.Off
		}
	}
}

type shippedEvent struct {
	shard int
	ev    wal.ShipEvent
}

type recordingShipper struct{ events []shippedEvent }

func (r *recordingShipper) Ship(shard int, ev wal.ShipEvent) error {
	r.events = append(r.events, shippedEvent{shard, ev})
	return nil
}
