package server

import (
	"sort"

	"repro/internal/wal"
)

// Shipper is the replication seam: when Options.Repl is set, every
// shard's WAL forwards each local mutation (append, rotation, group
// commit) to it in commit order, via wal.Options.Ship. An error from
// an append ship propagates through the WAL into ErrStorage — the
// batch stays logged locally but is never acknowledged, which is
// exactly the quorum durability contract (internal/replica implements
// this interface; the server only defines the seam, so it stays
// ignorant of transports and peers).
type Shipper interface {
	Ship(shard int, ev wal.ShipEvent) error
}

// ReplStatus is one shard's replication state as reported on /readyz.
// The server does not compute it — Options.ReplStatus supplies it, so
// the readiness taxonomy stays decoupled from the replication
// implementation.
type ReplStatus struct {
	// Role is "leader" or "follower".
	Role string `json:"role"`
	// Quorum reports the ack mode (leader side).
	Quorum bool `json:"quorum,omitempty"`
	// InSync is true when the peer holds everything local.
	InSync bool `json:"in_sync"`
	// LagRecords/LagBytes gauge how far the peer is behind (async mode
	// grows these while the link is down; quorum keeps them at zero).
	LagRecords int64 `json:"lag_records,omitempty"`
	LagBytes   int64 `json:"lag_bytes,omitempty"`
}

// ParkAll parks every live session on every durable shard —
// persist-then-evict for the whole server, the leader-side half of
// park-then-transfer session migration. After ParkAll the sessions
// exist only as WAL images (which replication ships to the peer), so
// a subsequent drain + handoff moves them wholesale: the promoted
// peer restores each one on first touch by the same replay path a
// restart uses. Returns the number of sessions parked; non-durable
// shards are left alone (parking without a WAL would lose data).
func (s *Server) ParkAll() int {
	total := 0
	for _, sh := range s.shards {
		n := 0
		err := sh.submit(func() {
			if sh.wal == nil {
				return
			}
			ids := make([]string, 0, len(sh.sessions))
			for id := range sh.sessions {
				ids = append(ids, id)
			}
			sort.Strings(ids)
			for _, id := range ids {
				sh.park(sh.sessions[id])
			}
			n = len(ids)
		})
		if err == nil {
			total += n
		}
	}
	return total
}
