package server

import (
	"errors"
	"testing"
)

// TestRetrySecondsClamp pins the Retry-After hint to [1,4] across the
// boundary observations (ISSUE 7 bugfix): a zero-capacity mailbox used
// to divide by zero, and a depth over-reported past capacity (racy read
// mid-drain) used to hint absurd backoffs.
func TestRetrySecondsClamp(t *testing.T) {
	cases := []struct {
		depth, capacity int
		want            int
	}{
		{0, 0, 1},    // no signal at all
		{5, 0, 1},    // zero capacity: no denominator, clamp low
		{0, 64, 1},   // zero depth: emptied between observation points
		{-3, 64, 1},  // negative depth can't happen, but never panic
		{1, 64, 1},   // barely congested
		{21, 64, 1},  // just under the 1/3 threshold
		{22, 64, 2},  // crosses 1/3
		{32, 64, 2},  // half full
		{43, 64, 3},  // two thirds
		{63, 64, 3},  // nearly full
		{64, 64, 4},  // exactly full
		{100, 64, 4}, // over-reported depth: clamp high
		{1000, 1, 4}, // degenerate 1-slot mailbox, huge over-report
		{1, 1, 4},    // full 1-slot mailbox
	}
	for _, tc := range cases {
		e := &busyError{depth: tc.depth, capacity: tc.capacity}
		if got := e.RetrySeconds(); got != tc.want {
			t.Errorf("RetrySeconds(depth=%d, cap=%d) = %d, want %d", tc.depth, tc.capacity, got, tc.want)
		}
		if !errors.Is(e, ErrBusy) {
			t.Errorf("busyError{%d,%d} does not match ErrBusy", tc.depth, tc.capacity)
		}
	}
}
