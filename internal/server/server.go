// Package server hosts many concurrent design sessions behind a
// sharded event-loop architecture, the serving-side counterpart of the
// paper's Minerva III DPM server: each shard owns a disjoint set of
// sessions (one DPM + notification bus + Result per session) and runs
// them on a single goroutine, so per-session state needs no locking and
// every operation batch is applied atomically with the same
// budget-before-δ invariant as the simulation engines (teamsim.Session).
//
// Shards communicate through bounded mailboxes: a full mailbox rejects
// the request with ErrBusy (backpressure, surfaced as HTTP 429) instead
// of queueing unboundedly. Idle sessions are evicted on a timer; their
// final metrics are folded into the shard totals, so eviction never
// loses accounting. Drain stops intake, executes every already-enqueued
// task (no acknowledged operation is lost), folds live sessions into
// per-shard summaries, and closes each shard's trace with a run-end
// event carrying the aggregated totals — a drained shard trace passes
// trace.ValidateJSONL's reconciliation.
package server

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/constraint"
	"repro/internal/dddl"
	"repro/internal/dpm"
	"repro/internal/teamsim"
	"repro/internal/trace"
)

// Defaults.
const (
	// DefaultShards is the shard count when Options.Shards is 0.
	DefaultShards = 4
	// DefaultMailboxSize bounds each shard's pending-task queue.
	DefaultMailboxSize = 64
)

// Request-level errors, mapped to HTTP statuses by the handler layer.
var (
	// ErrBusy reports a full shard mailbox (backpressure; retryable).
	ErrBusy = errors.New("server: shard mailbox full")
	// ErrDraining reports a server that has stopped intake.
	ErrDraining = errors.New("server: draining")
	// ErrUnknownSession reports a session id that resolves to nothing.
	ErrUnknownSession = errors.New("server: unknown session")
	// ErrBudget reports an op batch larger than the session's remaining
	// operation budget. Nothing was applied.
	ErrBudget = errors.New("server: operation budget exceeded")
	// ErrInvalid reports a malformed or unappliable request. Nothing was
	// applied.
	ErrInvalid = errors.New("server: invalid request")
)

// Options parameterize a Server.
type Options struct {
	// Shards is the number of session shards; 0 means DefaultShards.
	Shards int
	// MailboxSize bounds each shard's pending requests; 0 means
	// DefaultMailboxSize. A full mailbox rejects with ErrBusy.
	MailboxSize int
	// MaxOps is the per-session operation budget ceiling; 0 means
	// teamsim.DefaultMaxOps. Session creates may request less, never
	// more.
	MaxOps int
	// IdleTimeout evicts sessions untouched for this long; 0 disables
	// eviction.
	IdleTimeout time.Duration
	// SweepEvery is the eviction sweep period; 0 means IdleTimeout/4.
	SweepEvery time.Duration
	// PropOpts tunes ADPM propagation for hosted sessions.
	PropOpts constraint.PropagateOptions
	// ShardRecorder, when non-nil, supplies one trace recorder per
	// shard. The shard emits a run-start per created session, per-op
	// events via the engine instrumentation, an evict event per
	// eviction, and one aggregated run-end at drain.
	ShardRecorder func(shard int) *trace.Recorder

	// nowFn overrides the clock (tests); nil means time.Now.
	nowFn func() time.Time
}

// Totals aggregates the reconciliation metrics across sessions.
type Totals struct {
	Operations    int   `json:"operations"`
	Evaluations   int64 `json:"evaluations"`
	Spins         int   `json:"spins"`
	Notifications int   `json:"notifications"`
}

func (t *Totals) add(s SessionSummary) {
	t.Operations += s.Operations
	t.Evaluations += s.Evaluations
	t.Spins += s.Spins
	t.Notifications += s.Notifications
}

// SessionSummary is the final accounting of one retired session.
type SessionSummary struct {
	ID            string `json:"id"`
	Scenario      string `json:"scenario"`
	Mode          string `json:"mode"`
	Evicted       bool   `json:"evicted,omitempty"`
	Deleted       bool   `json:"deleted,omitempty"`
	Completed     bool   `json:"completed,omitempty"`
	Operations    int    `json:"operations"`
	Evaluations   int64  `json:"evaluations"`
	Spins         int    `json:"spins"`
	Notifications int    `json:"notifications"`
}

// ShardSummary is one shard's final accounting, returned by Drain.
type ShardSummary struct {
	Shard int `json:"shard"`
	// Sessions lists every session the shard ever retired (deleted,
	// evicted, or live at drain), in retirement order.
	Sessions  []SessionSummary `json:"sessions,omitempty"`
	Totals    Totals           `json:"totals"`
	Evictions int              `json:"evictions"`
}

// Server hosts design sessions across shards.
type Server struct {
	opts     Options
	shards   []*shard
	seq      atomic.Uint64
	draining atomic.Bool

	drainOnce sync.Once
	drainRes  []ShardSummary
}

// hostedSession is one live session owned by a shard.
type hostedSession struct {
	id       string
	scenario string
	sess     *teamsim.Session
	lastUsed time.Time
}

// task is one unit of work executed on a shard's event loop.
type task struct {
	fn   func()
	done chan struct{}
}

// shard owns a disjoint set of sessions; all access to them happens on
// the loop goroutine.
type shard struct {
	idx  int
	opts *Options
	rec  *trace.Recorder

	mu      sync.Mutex
	closed  bool
	mailbox chan task
	quit    chan struct{}
	done    chan struct{}

	// Loop-goroutine state.
	sessions       map[string]*hostedSession
	closedSessions []SessionSummary
	totals         Totals
	summary        ShardSummary

	// Gauges, readable from any goroutine (expvar / Stats).
	nSessions atomic.Int64
	created   atomic.Uint64
	evicted   atomic.Uint64
	deleted   atomic.Uint64
	rejected  atomic.Uint64
}

// New starts a server with opts.Shards event loops.
func New(opts Options) *Server {
	if opts.Shards <= 0 {
		opts.Shards = DefaultShards
	}
	if opts.MailboxSize <= 0 {
		opts.MailboxSize = DefaultMailboxSize
	}
	if opts.MaxOps <= 0 {
		opts.MaxOps = teamsim.DefaultMaxOps
	}
	if opts.IdleTimeout > 0 && opts.SweepEvery <= 0 {
		opts.SweepEvery = opts.IdleTimeout / 4
	}
	if opts.nowFn == nil {
		opts.nowFn = time.Now
	}
	s := &Server{opts: opts}
	for i := 0; i < opts.Shards; i++ {
		var rec *trace.Recorder
		if opts.ShardRecorder != nil {
			rec = opts.ShardRecorder(i)
		}
		sh := &shard{
			idx:      i,
			opts:     &s.opts,
			rec:      rec,
			mailbox:  make(chan task, opts.MailboxSize),
			quit:     make(chan struct{}),
			done:     make(chan struct{}),
			sessions: map[string]*hostedSession{},
		}
		s.shards = append(s.shards, sh)
		go sh.loop()
	}
	return s
}

// Shards returns the configured shard count.
func (s *Server) Shards() int { return len(s.shards) }

// submit runs fn on the shard's event loop and waits for it. The mutex
// orders submission against drain: once closed is set no new task can
// enter the mailbox, so the drain sweep that empties the mailbox sees
// every task whose submit succeeded.
func (sh *shard) submit(fn func()) error {
	t := task{fn: fn, done: make(chan struct{})}
	sh.mu.Lock()
	if sh.closed {
		sh.mu.Unlock()
		return ErrDraining
	}
	select {
	case sh.mailbox <- t:
		sh.mu.Unlock()
	default:
		sh.mu.Unlock()
		sh.rejected.Add(1)
		return ErrBusy
	}
	<-t.done
	return nil
}

// loop is the shard's event loop: one task at a time, periodic eviction
// sweeps, and a final drain pass that executes everything still queued
// before folding live sessions into the summary.
func (sh *shard) loop() {
	var sweepC <-chan time.Time
	if sh.opts.IdleTimeout > 0 {
		tick := time.NewTicker(sh.opts.SweepEvery)
		defer tick.Stop()
		sweepC = tick.C
	}
	for {
		select {
		case t := <-sh.mailbox:
			t.fn()
			close(t.done)
		case <-sweepC:
			sh.sweepNow()
		case <-sh.quit:
			for {
				select {
				case t := <-sh.mailbox:
					t.fn()
					close(t.done)
				default:
					sh.finalize()
					close(sh.done)
					return
				}
			}
		}
	}
}

// now returns the shard clock reading.
func (sh *shard) now() time.Time { return sh.opts.nowFn() }

// retire finalizes a session, folds its metrics into the shard totals,
// and removes it from the live set. Loop goroutine only.
func (sh *shard) retire(hs *hostedSession, evicted, deleted bool) SessionSummary {
	res := hs.sess.Finish()
	sum := SessionSummary{
		ID:            hs.id,
		Scenario:      hs.scenario,
		Mode:          res.Mode.String(),
		Evicted:       evicted,
		Deleted:       deleted,
		Completed:     res.Completed,
		Operations:    res.Operations,
		Evaluations:   res.Evaluations,
		Spins:         res.Spins,
		Notifications: res.Notifications,
	}
	sh.closedSessions = append(sh.closedSessions, sum)
	sh.totals.add(sum)
	delete(sh.sessions, hs.id)
	sh.nSessions.Store(int64(len(sh.sessions)))
	return sum
}

// sweepNow evicts every session idle past the timeout. Loop goroutine
// only. Returns the number evicted.
func (sh *shard) sweepNow() int {
	if sh.opts.IdleTimeout <= 0 {
		return 0
	}
	now := sh.now()
	var ids []string
	for id, hs := range sh.sessions {
		if now.Sub(hs.lastUsed) >= sh.opts.IdleTimeout {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	for _, id := range ids {
		hs := sh.sessions[id]
		sum := sh.retire(hs, true, false)
		sh.evicted.Add(1)
		if sh.rec.Enabled() {
			sh.rec.Emit(trace.Event{
				Kind:          trace.KindEvict,
				Name:          sum.ID,
				Scenario:      sum.Scenario,
				Operations:    sum.Operations,
				Evaluations:   sum.Evaluations,
				Spins:         sum.Spins,
				Notifications: sum.Notifications,
			})
		}
	}
	return len(ids)
}

// finalize folds the sessions still live at drain into the summary and
// closes the shard trace with the aggregated run-end. Loop goroutine
// only, exactly once.
func (sh *shard) finalize() {
	ids := make([]string, 0, len(sh.sessions))
	for id := range sh.sessions {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		sh.retire(sh.sessions[id], false, false)
	}
	sh.summary = ShardSummary{
		Shard:     sh.idx,
		Sessions:  sh.closedSessions,
		Totals:    sh.totals,
		Evictions: int(sh.evicted.Load()),
	}
	if sh.rec.Enabled() {
		// One shard-level run-end carrying the totals of every session
		// that ever lived here: the stream's summed operation events
		// reconcile against exactly these numbers (trace.ValidateJSONL).
		sh.rec.Emit(trace.Event{
			Kind:          trace.KindRunEnd,
			Operations:    sh.totals.Operations,
			Evaluations:   sh.totals.Evaluations,
			Spins:         sh.totals.Spins,
			Notifications: sh.totals.Notifications,
		})
	}
}

// shardFor resolves a session id ("s<shard>-<seq>") to its shard.
func (s *Server) shardFor(id string) (*shard, error) {
	rest, ok := strings.CutPrefix(id, "s")
	if !ok {
		return nil, ErrUnknownSession
	}
	idxStr, _, ok := strings.Cut(rest, "-")
	if !ok {
		return nil, ErrUnknownSession
	}
	idx, err := strconv.Atoi(idxStr)
	if err != nil || idx < 0 || idx >= len(s.shards) {
		return nil, ErrUnknownSession
	}
	return s.shards[idx], nil
}

// Create builds a session from the scenario and places it on a shard
// (round-robin). The expensive construction — network build, initial
// ADPM propagation — happens on the caller's goroutine; only the map
// insert runs on the shard loop.
func (s *Server) Create(scn *dddl.Scenario, mode dpm.Mode, maxOps int) (*CreateResponse, error) {
	if s.draining.Load() {
		return nil, ErrDraining
	}
	if maxOps <= 0 || maxOps > s.opts.MaxOps {
		maxOps = s.opts.MaxOps
	}
	sess, err := teamsim.NewSession(scn, mode, maxOps, s.opts.PropOpts)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	seq := s.seq.Add(1) - 1
	sh := s.shards[int(seq%uint64(len(s.shards)))]
	hs := &hostedSession{
		id:       fmt.Sprintf("s%d-%d", sh.idx, seq),
		scenario: scn.Name,
		sess:     sess,
	}
	var resp *CreateResponse
	err = sh.submit(func() {
		sess.SetTracer(sh.rec)
		if sh.rec.Enabled() {
			sh.rec.Emit(trace.Event{Kind: trace.KindRunStart,
				Name: hs.id, Scenario: hs.scenario, Mode: mode.String()})
		}
		hs.lastUsed = sh.now()
		sh.sessions[hs.id] = hs
		sh.nSessions.Store(int64(len(sh.sessions)))
		sh.created.Add(1)
		resp = &CreateResponse{
			ID:         hs.id,
			Scenario:   hs.scenario,
			Mode:       mode.String(),
			MaxOps:     maxOps,
			Shard:      sh.idx,
			Stage:      sess.D.Stage(),
			Violations: sess.D.Net.Violations(),
		}
	})
	if err != nil {
		return nil, err
	}
	return resp, nil
}

// Apply executes one operation batch atomically against a session:
// either every operation in the batch applies (in order) or none does.
// Atomicity needs no rollback — the whole batch is pre-checked against
// the remaining budget and every operation is validated with
// dpm.Validate, whose error set mirrors Apply's exactly, before the
// first δ runs.
func (s *Server) Apply(id string, ops []dpm.Operation) (*ApplyResponse, error) {
	sh, err := s.shardFor(id)
	if err != nil {
		return nil, err
	}
	var resp *ApplyResponse
	var aerr error
	err = sh.submit(func() {
		hs := sh.sessions[id]
		if hs == nil {
			aerr = ErrUnknownSession
			return
		}
		hs.lastUsed = sh.now()
		if len(ops) == 0 {
			aerr = fmt.Errorf("%w: empty op batch", ErrInvalid)
			return
		}
		if rem := hs.sess.Remaining(); rem < len(ops) {
			aerr = fmt.Errorf("%w: batch of %d ops, %d remaining", ErrBudget, len(ops), rem)
			return
		}
		for i := range ops {
			if verr := hs.sess.D.Validate(ops[i]); verr != nil {
				aerr = fmt.Errorf("%w: op %d: %v", ErrInvalid, i, verr)
				return
			}
		}
		resp = &ApplyResponse{ID: id}
		for i := range ops {
			tr, err := hs.sess.Apply(ops[i])
			if err != nil {
				// Validate mirrors Apply's full error set and the budget
				// was pre-checked, so this is unreachable; if the
				// invariant ever breaks (the fuzzers hunt for it), fail
				// loudly rather than return a half-applied batch as OK.
				aerr = fmt.Errorf("server: state diverged: validated op %d failed: %v", i, err)
				resp = nil
				return
			}
			resp.Transitions = append(resp.Transitions, transitionState(tr))
		}
		resp.Stage = hs.sess.D.Stage()
		resp.Applied = len(ops)
		resp.Remaining = hs.sess.Remaining()
		resp.Done = hs.sess.D.Done()
		resp.Violations = hs.sess.D.Net.Violations()
	})
	if err != nil {
		return nil, err
	}
	return resp, aerr
}

// State returns a full snapshot of the session's design state.
func (s *Server) State(id string) (*StateResponse, error) {
	sh, err := s.shardFor(id)
	if err != nil {
		return nil, err
	}
	var resp *StateResponse
	var serr error
	err = sh.submit(func() {
		hs := sh.sessions[id]
		if hs == nil {
			serr = ErrUnknownSession
			return
		}
		hs.lastUsed = sh.now()
		resp = buildState(hs)
	})
	if err != nil {
		return nil, err
	}
	return resp, serr
}

// Delete retires a session and returns its final accounting.
func (s *Server) Delete(id string) (*SessionSummary, error) {
	sh, err := s.shardFor(id)
	if err != nil {
		return nil, err
	}
	var resp *SessionSummary
	var derr error
	err = sh.submit(func() {
		hs := sh.sessions[id]
		if hs == nil {
			derr = ErrUnknownSession
			return
		}
		sum := sh.retire(hs, false, true)
		sh.deleted.Add(1)
		resp = &sum
	})
	if err != nil {
		return nil, err
	}
	return resp, derr
}

// Sweep runs an eviction pass on every shard immediately and returns
// the number of sessions evicted. The periodic sweeper calls the same
// per-shard logic; this entry point exists for tests and operators.
func (s *Server) Sweep() int {
	total := 0
	for _, sh := range s.shards {
		n := 0
		if err := sh.submit(func() { n = sh.sweepNow() }); err == nil {
			total += n
		}
	}
	return total
}

// Draining reports whether Drain has been initiated.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain stops intake, waits for every shard to execute its already
// accepted requests (no acknowledged operation is lost), retires all
// live sessions, and returns the per-shard summaries. Idempotent;
// concurrent callers all receive the same summaries.
func (s *Server) Drain() []ShardSummary {
	s.drainOnce.Do(func() {
		s.draining.Store(true)
		for _, sh := range s.shards {
			sh.mu.Lock()
			if !sh.closed {
				sh.closed = true
				close(sh.quit)
			}
			sh.mu.Unlock()
		}
		out := make([]ShardSummary, len(s.shards))
		for i, sh := range s.shards {
			<-sh.done
			out[i] = sh.summary
		}
		s.drainRes = out
	})
	return s.drainRes
}

// ShardStats is one shard's live gauges.
type ShardStats struct {
	Shard        int    `json:"shard"`
	Sessions     int64  `json:"sessions"`
	MailboxDepth int    `json:"mailbox_depth"`
	MailboxCap   int    `json:"mailbox_cap"`
	Created      uint64 `json:"created"`
	Evicted      uint64 `json:"evicted"`
	Deleted      uint64 `json:"deleted"`
	Rejected     uint64 `json:"rejected"`
}

// Stats is the server-wide gauge snapshot (expvar / GET /stats).
type Stats struct {
	Draining bool         `json:"draining"`
	Shards   []ShardStats `json:"shards"`
}

// Stats snapshots the live gauges of every shard.
func (s *Server) Stats() Stats {
	st := Stats{Draining: s.draining.Load()}
	for _, sh := range s.shards {
		st.Shards = append(st.Shards, ShardStats{
			Shard:        sh.idx,
			Sessions:     sh.nSessions.Load(),
			MailboxDepth: len(sh.mailbox),
			MailboxCap:   cap(sh.mailbox),
			Created:      sh.created.Load(),
			Evicted:      sh.evicted.Load(),
			Deleted:      sh.deleted.Load(),
			Rejected:     sh.rejected.Load(),
		})
	}
	return st
}
