// Package server hosts many concurrent design sessions behind a
// sharded event-loop architecture, the serving-side counterpart of the
// paper's Minerva III DPM server: each shard owns a disjoint set of
// sessions (one DPM + notification bus + Result per session) and runs
// them on a single goroutine, so per-session state needs no locking and
// every operation batch is applied atomically with the same
// budget-before-δ invariant as the simulation engines (teamsim.Session).
//
// Shards communicate through bounded mailboxes: a full mailbox rejects
// the request with ErrBusy (backpressure, surfaced as HTTP 429) instead
// of queueing unboundedly. Idle sessions are evicted on a timer; their
// final metrics are folded into the shard totals, so eviction never
// loses accounting. Drain stops intake, executes every already-enqueued
// task (no acknowledged operation is lost), folds live sessions into
// per-shard summaries, and closes each shard's trace with a run-end
// event carrying the aggregated totals — a drained shard trace passes
// trace.ValidateJSONL's reconciliation.
package server

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/constraint"
	"repro/internal/dddl"
	"repro/internal/dpm"
	"repro/internal/faultfs"
	"repro/internal/notify"
	"repro/internal/scenario"
	"repro/internal/teamsim"
	"repro/internal/trace"
	"repro/internal/vclock"
	"repro/internal/wal"
)

// Defaults.
const (
	// DefaultShards is the shard count when Options.Shards is 0.
	DefaultShards = 4
	// DefaultMailboxSize bounds each shard's pending-task queue.
	DefaultMailboxSize = 64
)

// Request-level errors, mapped to HTTP statuses by the handler layer.
var (
	// ErrBusy reports a full shard mailbox (backpressure; retryable).
	ErrBusy = errors.New("server: shard mailbox full")
	// ErrDraining reports a server that has stopped intake.
	ErrDraining = errors.New("server: draining")
	// ErrUnknownSession reports a session id that resolves to nothing.
	ErrUnknownSession = errors.New("server: unknown session")
	// ErrBudget reports an op batch larger than the session's remaining
	// operation budget. Nothing was applied.
	ErrBudget = errors.New("server: operation budget exceeded")
	// ErrInvalid reports a malformed or unappliable request. Nothing was
	// applied.
	ErrInvalid = errors.New("server: invalid request")
	// ErrKeyConflict reports an idempotency key reused with a
	// byte-different batch body (wire-canonical form). The cached ack is
	// not returned — acking would silently drop whichever batch the
	// client meant to send — and nothing is applied. Surfaced as HTTP
	// 422.
	ErrKeyConflict = errors.New("server: idempotency key reused with a different batch")
	// ErrMoved reports a session that migrated to another pair: the
	// request reached the old owner, which answers with the forwarding
	// address recorded by the migration. Surfaced as HTTP 307 with a
	// Location header, so an idempotent retry lands on the new owner.
	ErrMoved = errors.New("server: session moved")
	// ErrMigrating reports a session frozen mid-migration: its image has
	// been exported but ownership has not flipped yet. Retryable —
	// surfaced as HTTP 503 with Retry-After, the same taxonomy as a
	// transient storage stall.
	ErrMigrating = errors.New("server: session migrating")
)

// Options parameterize a Server.
type Options struct {
	// Shards is the number of session shards; 0 means DefaultShards.
	Shards int
	// MailboxSize bounds each shard's pending requests; 0 means
	// DefaultMailboxSize. A full mailbox rejects with ErrBusy.
	MailboxSize int
	// MaxOps is the per-session operation budget ceiling; 0 means
	// teamsim.DefaultMaxOps. Session creates may request less, never
	// more.
	MaxOps int
	// IdleTimeout evicts sessions untouched for this long; 0 disables
	// eviction.
	IdleTimeout time.Duration
	// SweepEvery is the eviction sweep period; 0 means IdleTimeout/4.
	SweepEvery time.Duration
	// PropOpts tunes ADPM propagation for hosted sessions.
	PropOpts constraint.PropagateOptions
	// ShardRecorder, when non-nil, supplies one trace recorder per
	// shard. The shard emits a run-start per created session, per-op
	// events via the engine instrumentation, an evict event per
	// eviction, and one aggregated run-end at drain.
	ShardRecorder func(shard int) *trace.Recorder

	// DataDir, when non-empty, makes sessions durable: every shard
	// write-ahead-logs its accepted transitions under
	// DataDir/shard-<i>/ and recovers them on Open by deterministic
	// replay. Idle eviction becomes persist-then-evict with lazy
	// restore instead of data loss.
	DataDir string
	// Fsync selects the WAL durability discipline (wal.SyncAlways when
	// zero: fsync before every acknowledgement).
	Fsync wal.SyncPolicy
	// SyncEvery is the group-commit period under wal.SyncInterval; 0
	// means DefaultSyncEvery.
	SyncEvery time.Duration
	// SegmentBytes rotates (and snapshot-compacts) a shard's WAL
	// segment past this size; 0 means wal.DefaultSegmentBytes.
	SegmentBytes int64
	// FS is the filesystem under the WAL; nil means the real one. The
	// chaos suite injects faults here.
	FS faultfs.FS

	// Repl, when non-nil, receives every shard WAL mutation in commit
	// order (leader→follower replication; see Shipper). Requires
	// DataDir.
	Repl Shipper
	// ReplStatus, when non-nil, reports per-shard replication state on
	// GET /readyz. Independent of Repl so a follower-side host can
	// report its role through the same taxonomy. A quorum leader with
	// an out-of-sync peer reports 503 (writes would stall on catch-up).
	ReplStatus func(shard int) ReplStatus

	// Heartbeat is the SSE keep-alive comment period on
	// GET /sessions/{id}/events; 0 means DefaultHeartbeat.
	Heartbeat time.Duration
	// IdemCap bounds the per-session idempotency-ack cache: at most this
	// many cached acknowledgements are retained (LRU), while every key
	// ever used keeps its body hash so conflicting reuse is still
	// rejected. 0 means DefaultIdemCap; negative means unlimited (the
	// pre-cap behavior).
	IdemCap int

	// Clock supplies every time reading and ticker in the serving stack
	// (idle sweeps, group-commit syncs, SSE heartbeats, latency
	// accounting); nil means the real clock. The deterministic
	// simulation injects a vclock.Manual here — whose tickers are inert,
	// so the harness drives timer work explicitly via Sweep and
	// SyncWALs.
	Clock vclock.Clock

	// nowFn overrides just the now-reading (tests); nil means Clock.Now.
	nowFn func() time.Time
}

// DefaultSyncEvery is the SyncInterval group-commit period when unset.
const DefaultSyncEvery = 25 * time.Millisecond

// Totals aggregates the reconciliation metrics across sessions.
type Totals struct {
	Operations    int   `json:"operations"`
	Evaluations   int64 `json:"evaluations"`
	Spins         int   `json:"spins"`
	Notifications int   `json:"notifications"`
}

func (t *Totals) add(s SessionSummary) {
	t.Operations += s.Operations
	t.Evaluations += s.Evaluations
	t.Spins += s.Spins
	t.Notifications += s.Notifications
}

// SessionSummary is the final accounting of one retired session.
type SessionSummary struct {
	ID            string `json:"id"`
	Scenario      string `json:"scenario"`
	Mode          string `json:"mode"`
	Evicted       bool   `json:"evicted,omitempty"`
	Deleted       bool   `json:"deleted,omitempty"`
	Completed     bool   `json:"completed,omitempty"`
	Operations    int    `json:"operations"`
	Evaluations   int64  `json:"evaluations"`
	Spins         int    `json:"spins"`
	Notifications int    `json:"notifications"`
}

// ShardSummary is one shard's final accounting, returned by Drain.
type ShardSummary struct {
	Shard int `json:"shard"`
	// Sessions lists every session the shard ever retired (deleted,
	// evicted, or live at drain), in retirement order.
	Sessions  []SessionSummary `json:"sessions,omitempty"`
	Totals    Totals           `json:"totals"`
	Evictions int              `json:"evictions"`
}

// Server hosts design sessions across shards.
type Server struct {
	opts     Options
	shards   []*shard
	seq      atomic.Uint64
	draining atomic.Bool
	lat      *latencySet

	// subStop, once closed, ends every SSE stream and rejects new
	// subscriptions: the drain-aware shutdown signal for the fan-out
	// layer. Closed by StopSubscribers (Drain calls it first), so
	// long-lived event streams never hold up http.Server.Shutdown.
	subStop     chan struct{}
	subStopOnce sync.Once

	drainOnce sync.Once
	drainRes  []ShardSummary
}

// hostedSession is one live session owned by a shard.
type hostedSession struct {
	id       string
	scenario string
	sess     *teamsim.Session
	lastUsed time.Time
	// img is the session's durable image (create parameters + accepted
	// batch history); nil on a non-durable server.
	img *wal.SessionImage
	// idem caches client idempotency acknowledgements (bounded LRU):
	// a retried key returns the cached ack instead of double-applying —
	// provided the retry's batch body hashes identically (ErrKeyConflict
	// otherwise) and the ack is still cached (ErrAckEvicted otherwise:
	// fail closed, never silently re-apply).
	idem *idemCache

	// events is the session's notification log: every event its applied
	// transitions produced, in order. IDs are 1-based log positions —
	// deterministic across park/restore and crash recovery, because
	// replay regenerates the identical log — and double as SSE event ids
	// for Last-Event-ID resume.
	events []notify.Event
	// hub fans events out to live SSE subscribers; nil until the first
	// subscriber attaches, closed when the session retires or parks.
	hub *notify.Hub

	// gen counts accepted mutations (batch applies); the serialized
	// state snapshot is cached keyed by it, so GET /state between
	// mutations is a byte copy, not a re-serialization.
	gen      uint64
	cacheGen uint64
	cache    []byte
}

// task is one unit of work executed on a shard's event loop.
type task struct {
	fn   func()
	done chan struct{}
}

// shard owns a disjoint set of sessions; all access to them happens on
// the loop goroutine.
type shard struct {
	idx  int
	opts *Options
	rec  *trace.Recorder
	// seqNow reads the server's session-sequence counter; rotation
	// snapshots record it so the id high-water survives compaction.
	seqNow func() uint64

	mu      sync.Mutex
	closed  bool
	mailbox chan task
	quit    chan struct{}
	done    chan struct{}
	killed  atomic.Bool

	// Loop-goroutine state.
	sessions map[string]*hostedSession
	parked   map[string]*parkedSession
	// migrating holds sessions frozen between BeginMigrate and
	// Complete/AbortMigrate: the image has been handed to the migration
	// orchestrator, so every request answers ErrMigrating until
	// ownership resolves (serving from the old copy could lose a batch
	// the new owner never sees).
	migrating map[string]*parkedSession
	// moved maps migrated-away session ids to their forwarding address
	// (wal.TypeMoved tombstones; survive restarts and snapshots).
	moved          map[string]string
	closedSessions []SessionSummary
	totals         Totals
	summary        ShardSummary
	wal            *wal.Log
	// segBase is the segment size right after the last rotation (or
	// open) — i.e. roughly the snapshot's own footprint. Rotation also
	// waits for the segment to double past it, so a snapshot larger
	// than the segment limit cannot trigger rotation on every append.
	segBase int64

	// hubStats aggregates live-subscriber delivery accounting across
	// every session hub the shard owns.
	hubStats notify.HubStats

	// Gauges, readable from any goroutine (expvar / Stats).
	nSessions   atomic.Int64
	nParked     atomic.Int64
	nMoved      atomic.Int64
	migrated    atomic.Uint64
	adopted     atomic.Uint64
	created     atomic.Uint64
	evicted     atomic.Uint64
	restored    atomic.Uint64
	deleted     atomic.Uint64
	rejected    atomic.Uint64
	walAppends  atomic.Uint64
	walBytes    atomic.Uint64
	rotations   atomic.Uint64
	walBroken   atomic.Bool
	stateHits   atomic.Uint64
	stateMisses atomic.Uint64
}

// New starts a server with opts.Shards event loops. It is the
// non-durable constructor kept for compatibility: with Options.DataDir
// set it panics on a recovery failure — durable callers use Open and
// handle the error.
func New(opts Options) *Server {
	s, err := Open(opts)
	if err != nil {
		panic(err)
	}
	return s
}

// Open starts a server, recovering every durable session from
// Options.DataDir when one is configured: each shard's WAL is scanned,
// torn tails are truncated, and the surviving records fold into session
// images that restore lazily (by deterministic replay) on first touch.
func Open(opts Options) (*Server, error) {
	if opts.Shards <= 0 {
		opts.Shards = DefaultShards
	}
	if opts.MailboxSize <= 0 {
		opts.MailboxSize = DefaultMailboxSize
	}
	if opts.MaxOps <= 0 {
		opts.MaxOps = teamsim.DefaultMaxOps
	}
	if opts.IdleTimeout > 0 && opts.SweepEvery <= 0 {
		opts.SweepEvery = opts.IdleTimeout / 4
	}
	if opts.SyncEvery <= 0 {
		opts.SyncEvery = DefaultSyncEvery
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = wal.DefaultSegmentBytes
	}
	if opts.FS == nil {
		opts.FS = faultfs.OS{}
	}
	if opts.Clock == nil {
		opts.Clock = vclock.System{}
	}
	if opts.nowFn == nil {
		opts.nowFn = opts.Clock.Now
	}
	if opts.Heartbeat <= 0 {
		opts.Heartbeat = DefaultHeartbeat
	}
	s := &Server{opts: opts, lat: newLatencySet(), subStop: make(chan struct{})}
	durable := opts.DataDir != ""
	if durable {
		if err := checkMeta(opts.FS, opts.DataDir, opts.Shards); err != nil {
			return nil, err
		}
	}
	var maxSeq uint64
	haveSeq := false
	for i := 0; i < opts.Shards; i++ {
		var rec *trace.Recorder
		if opts.ShardRecorder != nil {
			rec = opts.ShardRecorder(i)
		}
		sh := &shard{
			idx:       i,
			opts:      &s.opts,
			rec:       rec,
			seqNow:    s.seq.Load,
			mailbox:   make(chan task, opts.MailboxSize),
			quit:      make(chan struct{}),
			done:      make(chan struct{}),
			sessions:  map[string]*hostedSession{},
			parked:    map[string]*parkedSession{},
			migrating: map[string]*parkedSession{},
			moved:     map[string]string{},
		}
		if durable {
			seq, ok, err := sh.openShardWAL(opts.DataDir, opts.Fsync, opts.SegmentBytes, opts.FS)
			if err != nil {
				for _, prev := range s.shards {
					if prev.wal != nil {
						prev.wal.Close()
					}
				}
				return nil, err
			}
			if ok {
				haveSeq = true
				if seq > maxSeq {
					maxSeq = seq
				}
			}
		}
		s.shards = append(s.shards, sh)
	}
	if haveSeq {
		// Recovered ids embed the global sequence; resume past the
		// highest one so new sessions never collide.
		s.seq.Store(maxSeq + 1)
	}
	for _, sh := range s.shards {
		go sh.loop()
	}
	return s, nil
}

// Shards returns the configured shard count.
func (s *Server) Shards() int { return len(s.shards) }

// busyError is ErrBusy carrying the congestion observation that caused
// the rejection; the HTTP layer derives Retry-After from it.
type busyError struct {
	depth, capacity int
}

func (e *busyError) Error() string {
	return fmt.Sprintf("server: shard mailbox full (%d/%d)", e.depth, e.capacity)
}

// Is makes errors.Is(err, ErrBusy) hold for busyError values.
func (e *busyError) Is(target error) bool { return target == ErrBusy }

// RetrySeconds maps the observed congestion to a client backoff hint,
// clamped to [1,4]: 1s at the low end, 4s when the mailbox was entirely
// full. The clamp holds for the edge observations too — a zero-capacity
// mailbox (no depth signal) hints 1s, and a depth past capacity (racy
// reads mid-drain can over-report) still caps at 4s rather than telling
// clients to back off for longer than the scale was ever meant to span.
func (e *busyError) RetrySeconds() int {
	if e.capacity <= 0 || e.depth <= 0 {
		return 1
	}
	r := 1 + 3*e.depth/e.capacity
	if r > 4 {
		r = 4
	}
	return r
}

// submit runs fn on the shard's event loop and waits for it. The mutex
// orders submission against drain: once closed is set no new task can
// enter the mailbox, so the drain sweep that empties the mailbox sees
// every task whose submit succeeded.
func (sh *shard) submit(fn func()) error {
	t := task{fn: fn, done: make(chan struct{})}
	sh.mu.Lock()
	if sh.closed {
		sh.mu.Unlock()
		return ErrDraining
	}
	select {
	case sh.mailbox <- t:
		sh.mu.Unlock()
	default:
		depth := len(sh.mailbox)
		sh.mu.Unlock()
		sh.rejected.Add(1)
		return &busyError{depth: depth, capacity: cap(sh.mailbox)}
	}
	<-t.done
	return nil
}

// loop is the shard's event loop: one task at a time, periodic eviction
// sweeps, and a final drain pass that executes everything still queued
// before folding live sessions into the summary.
func (sh *shard) loop() {
	var sweepC <-chan time.Time
	if sh.opts.IdleTimeout > 0 {
		tick := sh.opts.Clock.NewTicker(sh.opts.SweepEvery)
		defer tick.Stop()
		sweepC = tick.C()
	}
	var syncC <-chan time.Time
	if sh.wal != nil && sh.opts.Fsync == wal.SyncInterval {
		// Group commit: acknowledged appends become durable at this
		// cadence (the SyncInterval trade-off).
		tick := sh.opts.Clock.NewTicker(sh.opts.SyncEvery)
		defer tick.Stop()
		syncC = tick.C()
	}
	for {
		select {
		case t := <-sh.mailbox:
			t.fn()
			close(t.done)
		case <-sweepC:
			sh.sweepNow()
		case <-syncC:
			if sh.wal.Sync() != nil {
				sh.walBroken.Store(true)
			}
		case <-sh.quit:
			for {
				select {
				case t := <-sh.mailbox:
					t.fn()
					close(t.done)
				default:
					if sh.killed.Load() {
						// Crash semantics: no final flush, fold, or WAL
						// close — the log keeps only the durability it
						// already earned.
						if sh.wal != nil {
							sh.wal.Abandon()
						}
					} else {
						sh.finalize()
					}
					close(sh.done)
					return
				}
			}
		}
	}
}

// now returns the shard clock reading.
func (sh *shard) now() time.Time { return sh.opts.nowFn() }

// retire finalizes a session, folds its metrics into the shard totals,
// and removes it from the live set. Loop goroutine only.
func (sh *shard) retire(hs *hostedSession, evicted, deleted bool) SessionSummary {
	if hs.hub != nil {
		hs.hub.Close()
		hs.hub = nil
	}
	res := hs.sess.Finish()
	sum := SessionSummary{
		ID:            hs.id,
		Scenario:      hs.scenario,
		Mode:          res.Mode.String(),
		Evicted:       evicted,
		Deleted:       deleted,
		Completed:     res.Completed,
		Operations:    res.Operations,
		Evaluations:   res.Evaluations,
		Spins:         res.Spins,
		Notifications: res.Notifications,
	}
	sh.closedSessions = append(sh.closedSessions, sum)
	sh.totals.add(sum)
	delete(sh.sessions, hs.id)
	sh.nSessions.Store(int64(len(sh.sessions)))
	return sum
}

// sweepNow evicts every session idle past the timeout. On a durable
// shard eviction is persist-then-evict: the session parks (image kept,
// live engine dropped) and restores transparently on its next touch;
// without a WAL it retires for good (the pre-durability semantics).
// Loop goroutine only. Returns the number evicted.
func (sh *shard) sweepNow() int {
	if sh.opts.IdleTimeout <= 0 {
		return 0
	}
	now := sh.now()
	var ids []string
	for id, hs := range sh.sessions {
		if now.Sub(hs.lastUsed) >= sh.opts.IdleTimeout {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	for _, id := range ids {
		hs := sh.sessions[id]
		if sh.wal != nil {
			sh.park(hs)
			continue
		}
		sum := sh.retire(hs, true, false)
		sh.evicted.Add(1)
		if sh.rec.Enabled() {
			sh.rec.Emit(trace.Event{
				Kind:          trace.KindEvict,
				Name:          sum.ID,
				Scenario:      sum.Scenario,
				Operations:    sum.Operations,
				Evaluations:   sum.Evaluations,
				Spins:         sum.Spins,
				Notifications: sum.Notifications,
			})
		}
	}
	return len(ids)
}

// finalize folds the sessions still live at drain into the summary and
// closes the shard trace with the aggregated run-end. Loop goroutine
// only, exactly once.
func (sh *shard) finalize() {
	ids := make([]string, 0, len(sh.sessions))
	for id := range sh.sessions {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		sh.retire(sh.sessions[id], false, false)
	}
	// Parked sessions stay durable on disk; their park-time summaries
	// fold into the totals so the drain accounting (and the trace
	// reconciliation) still sees every operation ever acknowledged.
	pids := make([]string, 0, len(sh.parked))
	for id := range sh.parked {
		pids = append(pids, id)
	}
	sort.Strings(pids)
	for _, id := range pids {
		sum := sh.parked[id].sum
		sh.closedSessions = append(sh.closedSessions, sum)
		sh.totals.add(sum)
		delete(sh.parked, id)
	}
	sh.nParked.Store(0)
	sh.summary = ShardSummary{
		Shard:     sh.idx,
		Sessions:  sh.closedSessions,
		Totals:    sh.totals,
		Evictions: int(sh.evicted.Load()),
	}
	if sh.rec.Enabled() {
		// One shard-level run-end carrying the totals of every session
		// that ever lived here: the stream's summed operation events
		// reconcile against exactly these numbers (trace.ValidateJSONL).
		sh.rec.Emit(trace.Event{
			Kind:          trace.KindRunEnd,
			Operations:    sh.totals.Operations,
			Evaluations:   sh.totals.Evaluations,
			Spins:         sh.totals.Spins,
			Notifications: sh.totals.Notifications,
		})
	}
	if sh.wal != nil {
		if sh.wal.Close() != nil {
			sh.walBroken.Store(true)
		}
	}
}

// shardFor resolves a session id to its shard. Server-minted ids
// ("s<shard>-<seq>") carry their shard index; externally-minted ids
// (cluster routing mints "c<n>" so ids stay unique across pairs — see
// internal/cluster) hash onto a shard, so the same id maps to the same
// shard on every pair regardless of shard-count history.
func (s *Server) shardFor(id string) (*shard, error) {
	if id == "" {
		return nil, ErrUnknownSession
	}
	if rest, ok := strings.CutPrefix(id, "s"); ok {
		idxStr, _, ok := strings.Cut(rest, "-")
		if !ok {
			return nil, ErrUnknownSession
		}
		idx, err := strconv.Atoi(idxStr)
		if err != nil || idx < 0 || idx >= len(s.shards) {
			return nil, ErrUnknownSession
		}
		return s.shards[idx], nil
	}
	if !strings.HasPrefix(id, "c") {
		return nil, ErrUnknownSession
	}
	return s.shards[int(hashID(id)%uint32(len(s.shards)))], nil
}

// hashID is the stable external-id hash (FNV-1a, 32-bit): the same
// function on every pair, so misrouted requests still land on the shard
// whose maps hold the moved tombstone.
func hashID(id string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= prime32
	}
	return h
}

// CreateSpec names what a session is created from. For durable servers
// the distinction matters: the WAL create record stores the built-in
// scenario name or the client's exact DDDL source, so recovery resolves
// the scenario through precisely the path creation used.
type CreateSpec struct {
	// ID, when non-empty, is an externally-minted session id (cluster
	// routing mints ids so they stay unique across pairs). It must start
	// with "c" — the external namespace, disjoint from server-minted
	// "s<shard>-<seq>" ids — and places the session on the shard
	// hashID selects. Empty means the server mints the id itself.
	ID string
	// Scenario is the pre-parsed scenario; when nil it is resolved from
	// Name or Source.
	Scenario *dddl.Scenario
	// Name is the built-in scenario name ("sensor", "receiver",
	// "simplified") when the session was created by name.
	Name string
	// Source is the raw DDDL source when the session was created from
	// source.
	Source string
	// Mode is the transition mode.
	Mode dpm.Mode
	// MaxOps is the requested budget (0 or over-ceiling resolves to the
	// server ceiling).
	MaxOps int
}

// Create builds a session from the scenario and places it on a shard
// (round-robin). Compatibility wrapper over CreateSession; on a durable
// server the scenario is persisted as its canonical DDDL rendering.
func (s *Server) Create(scn *dddl.Scenario, mode dpm.Mode, maxOps int) (*CreateResponse, error) {
	return s.CreateSession(CreateSpec{Scenario: scn, Mode: mode, MaxOps: maxOps})
}

// CreateSession builds a session and places it on a shard
// (round-robin). The expensive construction — network build, initial
// ADPM propagation — happens on the caller's goroutine; only the WAL
// create record and the map insert run on the shard loop, so the
// create is logged before it is acknowledged.
func (s *Server) CreateSession(spec CreateSpec) (*CreateResponse, error) {
	if s.draining.Load() {
		return nil, ErrDraining
	}
	scn := spec.Scenario
	var err error
	switch {
	case scn != nil:
	case spec.Name != "":
		if scn, err = scenario.ByName(spec.Name); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrInvalid, err)
		}
	case spec.Source != "":
		if scn, err = dddl.ParseString(spec.Source); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrInvalid, err)
		}
	default:
		return nil, fmt.Errorf("%w: scenario or source is required", ErrInvalid)
	}
	maxOps := spec.MaxOps
	if maxOps <= 0 || maxOps > s.opts.MaxOps {
		maxOps = s.opts.MaxOps
	}
	mode := spec.Mode
	sess, err := teamsim.NewSession(scn, mode, maxOps, s.opts.PropOpts)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	var sh *shard
	var id string
	if spec.ID != "" {
		if err := ValidateExternalID(spec.ID); err != nil {
			return nil, err
		}
		id = spec.ID
		if sh, err = s.shardFor(id); err != nil {
			return nil, fmt.Errorf("%w: unroutable session id %q", ErrInvalid, id)
		}
	} else {
		seq := s.seq.Add(1) - 1
		sh = s.shards[int(seq%uint64(len(s.shards)))]
		id = fmt.Sprintf("s%d-%d", sh.idx, seq)
	}
	hs := &hostedSession{
		id:       id,
		scenario: scn.Name,
		sess:     sess,
		idem:     newIdemCache(s.opts.IdemCap),
	}
	sh.attachEvents(hs)
	if s.opts.DataDir != "" {
		src := spec.Source
		if spec.Name == "" && src == "" {
			// Programmatic create: persist the canonical rendering (the
			// Format/Parse round-trip property makes it equivalent).
			src = scn.Format()
		}
		hs.img = &wal.SessionImage{
			ID:       hs.id,
			Scenario: spec.Name,
			Source:   src,
			Mode:     mode.String(),
			MaxOps:   maxOps,
		}
	}
	var resp *CreateResponse
	var aerr error
	err = sh.submit(func() {
		if spec.ID != "" {
			// Externally-minted ids can collide (a client retrying a
			// create, or a mis-minting router); server-minted ones cannot.
			if _, ok := sh.sessions[hs.id]; ok {
				aerr = fmt.Errorf("%w: session id %q already exists", ErrInvalid, hs.id)
			} else if _, ok := sh.parked[hs.id]; ok {
				aerr = fmt.Errorf("%w: session id %q already exists", ErrInvalid, hs.id)
			} else if _, ok := sh.migrating[hs.id]; ok {
				aerr = fmt.Errorf("%w: session %q", ErrMigrating, hs.id)
			} else if loc, ok := sh.moved[hs.id]; ok {
				aerr = &MovedError{ID: hs.id, Location: loc}
			}
			if aerr != nil {
				return
			}
		}
		if hs.img != nil {
			aerr = sh.appendWAL(&wal.Record{
				Type:     wal.TypeCreate,
				Session:  hs.id,
				Scenario: hs.img.Scenario,
				Source:   hs.img.Source,
				Mode:     hs.img.Mode,
				MaxOps:   hs.img.MaxOps,
			})
			if aerr != nil {
				return
			}
		}
		sess.SetTracer(sh.rec)
		if sh.rec.Enabled() {
			sh.rec.Emit(trace.Event{Kind: trace.KindRunStart,
				Name: hs.id, Scenario: hs.scenario, Mode: mode.String()})
		}
		hs.lastUsed = sh.now()
		sh.sessions[hs.id] = hs
		sh.nSessions.Store(int64(len(sh.sessions)))
		sh.created.Add(1)
		sh.maybeRotate()
		resp = &CreateResponse{
			ID:         hs.id,
			Scenario:   hs.scenario,
			Mode:       mode.String(),
			MaxOps:     maxOps,
			Shard:      sh.idx,
			Stage:      sess.D.Stage(),
			Violations: sess.D.Net.Violations(),
		}
	})
	if err != nil {
		return nil, err
	}
	if aerr != nil {
		return nil, aerr
	}
	return resp, nil
}

// Apply executes one operation batch atomically against a session:
// either every operation in the batch applies (in order) or none does.
// Atomicity needs no rollback — the whole batch is pre-checked against
// the remaining budget and every operation is validated with
// dpm.Validate, whose error set mirrors Apply's exactly, before the
// first δ runs.
func (s *Server) Apply(id string, ops []dpm.Operation) (*ApplyResponse, error) {
	resp, _, err := s.ApplyKeyed(id, "", ops)
	return resp, err
}

// ApplyKeyed is Apply with an optional client idempotency key. A keyed
// batch is applied exactly once per session: retrying the same key —
// after a 429, a timeout, or even a crash and recovery, since the key
// rides in the WAL ops record — returns the original acknowledgement
// with replayed=true and applies nothing. On a durable server the
// batch is logged (and, under SyncAlways, fsynced) before the first δ
// runs: any acknowledged batch survives a crash.
func (s *Server) ApplyKeyed(id, key string, ops []dpm.Operation) (*ApplyResponse, bool, error) {
	sh, err := s.shardFor(id)
	if err != nil {
		return nil, false, err
	}
	// Encode the wire form on the caller's goroutine; the shard loop
	// only appends and hashes it. A keyed batch is encoded even on a
	// non-durable server: the key's conflict check hashes the canonical
	// wire form, so a keyed batch must be wire-encodable (in particular
	// NaN/Inf assignments are rejected up front).
	var opsRaw []byte
	var keyHash [sha256.Size]byte
	if s.opts.DataDir != "" || key != "" {
		if opsRaw, err = encodeOpsWire(ops); err != nil {
			return nil, false, err
		}
		if key != "" {
			keyHash = sha256.Sum256(opsRaw)
		}
	}
	var resp *ApplyResponse
	var replayed bool
	var aerr error
	err = sh.submit(func() {
		hs, lerr := sh.lookup(id)
		if lerr != nil {
			aerr = lerr
			return
		}
		if key != "" {
			cached, outcome := hs.idem.lookup(key, keyHash)
			switch outcome {
			case idemReplay:
				resp, replayed = cached, true
				return
			case idemConflict:
				aerr = fmt.Errorf("%w: key %q", ErrKeyConflict, key)
				return
			case idemEvicted:
				// The batch already applied under this key but its ack
				// aged out of the bounded cache. Fail closed: re-applying
				// would break exactly-once, and fabricating an ack would
				// lie about what the original apply returned.
				aerr = fmt.Errorf("%w: key %q", ErrAckEvicted, key)
				return
			}
		}
		if aerr = validateBatch(hs, ops); aerr != nil {
			return
		}
		// Log before ack: the accepted batch reaches the WAL before any
		// state changes, so every acknowledged batch is recoverable. A
		// crash between log and apply replays the batch on recovery —
		// legal, because a validated batch always applies and the client
		// never saw a rejection.
		if hs.img != nil {
			aerr = sh.appendWAL(&wal.Record{Type: wal.TypeOps, Session: id, Key: key, Ops: opsRaw})
			if aerr != nil {
				return
			}
		}
		resp, aerr = applyBatch(hs, ops)
		if aerr != nil {
			return
		}
		if hs.img != nil {
			hs.img.Ops = append(hs.img.Ops, wal.OpsEntry{Key: key, Ops: opsRaw})
		}
		if key != "" {
			hs.idem.add(key, keyHash, resp)
		}
		sh.maybeRotate()
	})
	if err != nil {
		return nil, false, err
	}
	return resp, replayed, aerr
}

// State returns a full snapshot of the session's design state,
// transparently restoring a parked session.
func (s *Server) State(id string) (*StateResponse, error) {
	sh, err := s.shardFor(id)
	if err != nil {
		return nil, err
	}
	var resp *StateResponse
	var serr error
	err = sh.submit(func() {
		hs, lerr := sh.lookup(id)
		if lerr != nil {
			serr = lerr
			return
		}
		resp = buildState(hs)
	})
	if err != nil {
		return nil, err
	}
	return resp, serr
}

// Delete retires a session and returns its final accounting. On a
// durable server the delete is logged first, so a recovered server
// never resurrects a session the client saw deleted; a parked session
// is deleted in place (its park-time summary is the final accounting)
// without paying for a restore.
func (s *Server) Delete(id string) (*SessionSummary, error) {
	sh, err := s.shardFor(id)
	if err != nil {
		return nil, err
	}
	var resp *SessionSummary
	var derr error
	err = sh.submit(func() {
		hs := sh.sessions[id]
		p := sh.parked[id]
		if hs == nil && p == nil {
			switch {
			case sh.migrating[id] != nil:
				derr = fmt.Errorf("%w: session %q", ErrMigrating, id)
			case sh.moved[id] != "":
				derr = &MovedError{ID: id, Location: sh.moved[id]}
			default:
				derr = ErrUnknownSession
			}
			return
		}
		if sh.wal != nil {
			if derr = sh.appendWAL(&wal.Record{Type: wal.TypeDelete, Session: id}); derr != nil {
				return
			}
		}
		if hs != nil {
			sum := sh.retire(hs, false, true)
			sh.deleted.Add(1)
			resp = &sum
			return
		}
		sum := p.sum
		sum.Evicted = false
		sum.Deleted = true
		sh.closedSessions = append(sh.closedSessions, sum)
		sh.totals.add(sum)
		delete(sh.parked, id)
		sh.nParked.Store(int64(len(sh.parked)))
		sh.deleted.Add(1)
		resp = &sum
	})
	if err != nil {
		return nil, err
	}
	return resp, derr
}

// Sweep runs an eviction pass on every shard immediately and returns
// the number of sessions evicted. The periodic sweeper calls the same
// per-shard logic; this entry point exists for tests and operators.
func (s *Server) Sweep() int {
	total := 0
	for _, sh := range s.shards {
		n := 0
		if err := sh.submit(func() { n = sh.sweepNow() }); err == nil {
			total += n
		}
	}
	return total
}

// SyncWALs runs the WAL group commit on every durable shard now — the
// work the SyncInterval ticker does on a wall clock, exposed so a
// simulation driving a virtual clock can fire it as an explicit event.
// Returns the first sync failure (the shard's log is then broken).
func (s *Server) SyncWALs() error {
	var first error
	for _, sh := range s.shards {
		if sh.wal == nil {
			continue
		}
		err := sh.submit(func() {
			if serr := sh.wal.Sync(); serr != nil {
				sh.walBroken.Store(true)
				if first == nil {
					first = serr
				}
			}
		})
		if err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Kill stops the server the way a crash would: intake stops and tasks
// already accepted still execute (their submitters are blocked on
// them), but there is no final WAL flush, no summary fold, and no
// clean close — each shard's log is abandoned with exactly the
// durability it already earned. What a reopened server recovers is
// then a pure function of the fsync policy, which is the point: the
// simulation uses Kill (plus faultfs crash semantics) to probe the
// durability contract rather than the shutdown path. Kill and Drain
// are mutually exclusive; whichever runs first wins.
func (s *Server) Kill() {
	s.drainOnce.Do(func() {
		s.StopSubscribers()
		s.draining.Store(true)
		// Shards die one at a time, in index order: the shutdown path of
		// shard i+1 must not interleave with shard i's, or runs sharing a
		// fault-injecting FS lose their deterministic operation order.
		for _, sh := range s.shards {
			sh.killed.Store(true)
			sh.mu.Lock()
			if !sh.closed {
				sh.closed = true
				close(sh.quit)
			}
			sh.mu.Unlock()
			<-sh.done
		}
	})
}

// Draining reports whether Drain has been initiated.
func (s *Server) Draining() bool { return s.draining.Load() }

// StopSubscribers ends every live SSE stream and rejects new
// subscriptions; applied work is unaffected. Idempotent. Drain calls it
// first, but hosts that shut the HTTP listener down before draining
// (cmd/adpmd) call it themselves so event streams — which outlive any
// single request — never wedge http.Server.Shutdown.
func (s *Server) StopSubscribers() {
	s.subStopOnce.Do(func() { close(s.subStop) })
}

// Drain stops intake, waits for every shard to execute its already
// accepted requests (no acknowledged operation is lost), retires all
// live sessions, and returns the per-shard summaries. Idempotent;
// concurrent callers all receive the same summaries.
func (s *Server) Drain() []ShardSummary {
	s.drainOnce.Do(func() {
		s.StopSubscribers()
		s.draining.Store(true)
		// Sequential, in index order, for the same reason as Kill: shard
		// finalization fsyncs against a shared FS must land in a
		// deterministic order for the simulation's byte-replayability.
		out := make([]ShardSummary, len(s.shards))
		for i, sh := range s.shards {
			sh.mu.Lock()
			if !sh.closed {
				sh.closed = true
				close(sh.quit)
			}
			sh.mu.Unlock()
			<-sh.done
			out[i] = sh.summary
		}
		s.drainRes = out
	})
	return s.drainRes
}

// ShardStats is one shard's live gauges.
type ShardStats struct {
	Shard        int    `json:"shard"`
	Sessions     int64  `json:"sessions"`
	MailboxDepth int    `json:"mailbox_depth"`
	MailboxCap   int    `json:"mailbox_cap"`
	Created      uint64 `json:"created"`
	Evicted      uint64 `json:"evicted"`
	Deleted      uint64 `json:"deleted"`
	Rejected     uint64 `json:"rejected"`

	// Durability gauges; zero on a non-durable server.
	Parked     int64  `json:"parked,omitempty"`
	Restored   uint64 `json:"restored,omitempty"`
	Moved      int64  `json:"moved,omitempty"`
	Migrated   uint64 `json:"migrated,omitempty"`
	Adopted    uint64 `json:"adopted,omitempty"`
	WALAppends uint64 `json:"wal_appends,omitempty"`
	WALBytes   uint64 `json:"wal_bytes,omitempty"`
	Rotations  uint64 `json:"wal_rotations,omitempty"`
	WALBroken  bool   `json:"wal_broken,omitempty"`

	// Live fan-out gauges; zero when no subscriber ever attached.
	Subscribers     int64  `json:"subscribers,omitempty"`
	NotifyDelivered uint64 `json:"notify_delivered,omitempty"`
	NotifyDropped   uint64 `json:"notify_dropped,omitempty"`
	NotifyCoalesced uint64 `json:"notify_coalesced,omitempty"`

	// Snapshot-cache gauges (GET /state).
	StateHits   uint64 `json:"state_hits,omitempty"`
	StateMisses uint64 `json:"state_misses,omitempty"`
}

// Stats is the server-wide gauge snapshot (expvar / GET /stats).
type Stats struct {
	Draining bool         `json:"draining"`
	Shards   []ShardStats `json:"shards"`
}

// Stats snapshots the live gauges of every shard.
func (s *Server) Stats() Stats {
	st := Stats{Draining: s.draining.Load()}
	for _, sh := range s.shards {
		st.Shards = append(st.Shards, ShardStats{
			Shard:        sh.idx,
			Sessions:     sh.nSessions.Load(),
			MailboxDepth: len(sh.mailbox),
			MailboxCap:   cap(sh.mailbox),
			Created:      sh.created.Load(),
			Evicted:      sh.evicted.Load(),
			Deleted:      sh.deleted.Load(),
			Rejected:     sh.rejected.Load(),
			Parked:       sh.nParked.Load(),
			Restored:     sh.restored.Load(),
			Moved:        sh.nMoved.Load(),
			Migrated:     sh.migrated.Load(),
			Adopted:      sh.adopted.Load(),
			WALAppends:   sh.walAppends.Load(),
			WALBytes:     sh.walBytes.Load(),
			Rotations:    sh.rotations.Load(),
			WALBroken:    sh.walBroken.Load(),

			Subscribers:     sh.hubStats.Subscribers.Load(),
			NotifyDelivered: sh.hubStats.Delivered.Load(),
			NotifyDropped:   sh.hubStats.Dropped.Load() + sh.hubStats.Coalesced.Load(),
			NotifyCoalesced: sh.hubStats.Coalesced.Load(),

			StateHits:   sh.stateHits.Load(),
			StateMisses: sh.stateMisses.Load(),
		})
	}
	return st
}
