package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/domain"
	"repro/internal/dpm"
	"repro/internal/scenario"
	"repro/internal/trace"
)

func newTestServer(t *testing.T, opts Options) *Server {
	t.Helper()
	s := New(opts)
	t.Cleanup(func() { s.Drain() })
	return s
}

func mustCreate(t *testing.T, s *Server, name string, maxOps int) *CreateResponse {
	t.Helper()
	scn, err := scenario.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := s.Create(scn, dpm.ADPM, maxOps)
	if err != nil {
		t.Fatalf("create %s: %v", name, err)
	}
	return resp
}

func synth(problem, prop string, v float64) dpm.Operation {
	return dpm.Operation{
		Kind:        dpm.OpSynthesis,
		Problem:     problem,
		Designer:    "test",
		Assignments: []dpm.Assignment{{Prop: prop, Value: domain.Real(v)}},
	}
}

func stateJSON(t *testing.T, s *Server, id string) []byte {
	t.Helper()
	st, err := s.State(id)
	if err != nil {
		t.Fatalf("state %s: %v", id, err)
	}
	b, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestCreateApplyStateDelete(t *testing.T) {
	s := newTestServer(t, Options{Shards: 2})
	c := mustCreate(t, s, "simplified", 0)
	if c.Shard != 0 || c.ID != "s0-0" {
		t.Errorf("first session placed at %q shard %d, want s0-0 shard 0", c.ID, c.Shard)
	}
	if c.MaxOps != 5000 {
		t.Errorf("default MaxOps = %d, want teamsim default 5000", c.MaxOps)
	}
	c2 := mustCreate(t, s, "simplified", 0)
	if c2.Shard != 1 {
		t.Errorf("second session on shard %d, want round-robin shard 1", c2.Shard)
	}

	resp, err := s.Apply(c.ID, []dpm.Operation{
		synth("AmpDesign", "Width", 3),
		synth("AmpDesign", "Ind", 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Applied != 2 || resp.Stage != 2 || len(resp.Transitions) != 2 {
		t.Fatalf("batch ack = %+v, want 2 applied at stage 2", resp)
	}
	if resp.Remaining != 4998 {
		t.Errorf("remaining = %d, want 4998", resp.Remaining)
	}

	st, err := s.State(c.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.Operations != 2 || st.Stage != 2 || st.Evaluations == 0 {
		t.Errorf("state metrics %+v do not reflect the applied batch", st)
	}
	if len(st.Problems) == 0 || len(st.Properties) == 0 {
		t.Errorf("state snapshot missing problems/properties")
	}

	sum, err := s.Delete(c.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Deleted || sum.Operations != 2 {
		t.Errorf("delete summary %+v, want deleted with 2 ops", sum)
	}
	if _, err := s.State(c.ID); !errors.Is(err, ErrUnknownSession) {
		t.Errorf("state after delete: err %v, want ErrUnknownSession", err)
	}
}

func TestUnknownSessionIDs(t *testing.T) {
	s := newTestServer(t, Options{Shards: 2})
	for _, id := range []string{"", "nope", "s", "s-1", "sX-2", "s9-0", "s-1-0", "s0-999"} {
		if _, err := s.State(id); !errors.Is(err, ErrUnknownSession) {
			t.Errorf("State(%q) err = %v, want ErrUnknownSession", id, err)
		}
	}
}

// TestBatchAtomicity pins the no-rollback atomicity contract: a batch
// with any invalid operation is rejected as a whole and the serialized
// session state is byte-identical to before the attempt.
func TestBatchAtomicity(t *testing.T) {
	s := newTestServer(t, Options{Shards: 1})
	c := mustCreate(t, s, "simplified", 0)
	before := stateJSON(t, s, c.ID)

	batches := [][]dpm.Operation{
		{synth("AmpDesign", "Width", 3), synth("Ghost", "Width", 1)},
		{synth("AmpDesign", "Width", 3), synth("AmpDesign", "Nope", 1)},
		{synth("AmpDesign", "Width", 3), {Kind: dpm.OpKind(9), Problem: "AmpDesign"}},
		{synth("AmpDesign", "Width", 3), {Kind: dpm.OpDecomposition, Problem: "AmpDesign"}},
		{synth("AmpDesign", "Width", 3), {Kind: dpm.OpVerification, Problem: "AmpDesign", Verify: []string{"missing"}}},
		{},
	}
	for i, ops := range batches {
		if _, err := s.Apply(c.ID, ops); !errors.Is(err, ErrInvalid) {
			t.Fatalf("batch %d: err = %v, want ErrInvalid", i, err)
		}
		if after := stateJSON(t, s, c.ID); !bytes.Equal(before, after) {
			t.Fatalf("batch %d: rejected batch mutated session state:\n before: %s\n after:  %s", i, before, after)
		}
	}
}

// TestBudgetPreCheck pins the whole-batch budget check: a batch larger
// than the remaining budget is rejected before any of it applies, so a
// session can never exceed MaxOps.
func TestBudgetPreCheck(t *testing.T) {
	s := newTestServer(t, Options{Shards: 1})
	c := mustCreate(t, s, "simplified", 3)
	if c.MaxOps != 3 {
		t.Fatalf("requested MaxOps=3, got %d", c.MaxOps)
	}
	if _, err := s.Apply(c.ID, []dpm.Operation{
		synth("AmpDesign", "Width", 3), synth("AmpDesign", "Ind", 2),
	}); err != nil {
		t.Fatal(err)
	}
	before := stateJSON(t, s, c.ID)
	if _, err := s.Apply(c.ID, []dpm.Operation{
		synth("AmpDesign", "Bias", 3), synth("AmpDesign", "Width", 2.5),
	}); !errors.Is(err, ErrBudget) {
		t.Fatalf("over-budget batch err = %v, want ErrBudget", err)
	}
	if after := stateJSON(t, s, c.ID); !bytes.Equal(before, after) {
		t.Fatal("rejected over-budget batch mutated session state")
	}
	resp, err := s.Apply(c.ID, []dpm.Operation{synth("AmpDesign", "Bias", 3)})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Remaining != 0 {
		t.Errorf("remaining = %d, want 0", resp.Remaining)
	}
	if _, err := s.Apply(c.ID, []dpm.Operation{synth("AmpDesign", "Width", 2)}); !errors.Is(err, ErrBudget) {
		t.Errorf("exhausted session accepted another op: %v", err)
	}
	sum, err := s.Delete(c.ID)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Operations != 3 {
		t.Errorf("session executed %d ops with MaxOps=3", sum.Operations)
	}
}

func TestMaxOpsCeiling(t *testing.T) {
	s := newTestServer(t, Options{Shards: 1, MaxOps: 10})
	if c := mustCreate(t, s, "simplified", 500); c.MaxOps != 10 {
		t.Errorf("requested 500 ops with ceiling 10, got %d", c.MaxOps)
	}
	if c := mustCreate(t, s, "simplified", 7); c.MaxOps != 7 {
		t.Errorf("requested 7 ops under ceiling 10, got %d", c.MaxOps)
	}
}

// TestBackpressure fills a 1-slot mailbox while the shard loop is
// blocked and checks that the next submit is rejected with ErrBusy
// instead of queueing unboundedly.
func TestBackpressure(t *testing.T) {
	s := newTestServer(t, Options{Shards: 1, MailboxSize: 1})
	sh := s.shards[0]

	block := make(chan struct{})
	running := make(chan struct{})
	go sh.submit(func() { close(running); <-block })
	<-running

	fillerDone := make(chan error, 1)
	go func() { fillerDone <- sh.submit(func() {}) }()
	for len(sh.mailbox) == 0 {
		runtime.Gosched()
	}

	if err := sh.submit(func() {}); !errors.Is(err, ErrBusy) {
		t.Errorf("submit with full mailbox: err = %v, want ErrBusy", err)
	}
	if got := s.Stats().Shards[0].Rejected; got != 1 {
		t.Errorf("rejected gauge = %d, want 1", got)
	}

	close(block)
	if err := <-fillerDone; err != nil {
		t.Errorf("queued task rejected after loop unblocked: %v", err)
	}
}

// TestEvictedRecreatedSessionSameInitialWindows is the recreation
// property: evicting a session and creating a new one from the same
// scenario reaches exactly the same initial state — stage, bindings,
// movement windows — as the first one started with.
func TestEvictedRecreatedSessionSameInitialWindows(t *testing.T) {
	var clock atomic.Int64
	s := newTestServer(t, Options{
		Shards:      1,
		IdleTimeout: time.Minute,
		SweepEvery:  time.Hour, // manual Sweep only
		nowFn:       func() time.Time { return time.Unix(0, clock.Load()) },
	})
	first := mustCreate(t, s, "receiver", 0)
	initial := stateJSON(t, s, first.ID)
	if _, err := s.Apply(first.ID, []dpm.Operation{synth("AnalogFE", "Diff_pair_W", 3)}); err != nil {
		t.Fatal(err)
	}

	clock.Store(int64(2 * time.Minute))
	if n := s.Sweep(); n != 1 {
		t.Fatalf("sweep evicted %d sessions, want 1", n)
	}
	if _, err := s.State(first.ID); !errors.Is(err, ErrUnknownSession) {
		t.Fatalf("evicted session still reachable: %v", err)
	}
	if got := s.Stats().Shards[0].Evicted; got != 1 {
		t.Errorf("evicted gauge = %d, want 1", got)
	}

	second := mustCreate(t, s, "receiver", 0)
	recreated := stateJSON(t, s, second.ID)
	norm := func(b []byte, id string) []byte {
		return bytes.ReplaceAll(b, []byte(`"id":"`+id+`"`), []byte(`"id":"X"`))
	}
	if !bytes.Equal(norm(initial, first.ID), norm(recreated, second.ID)) {
		t.Errorf("recreated session initial state differs from the evicted one's:\n first:  %s\n second: %s",
			initial, recreated)
	}
}

// TestDrainLosesNoAcknowledgedOp drains the server while clients are
// applying: every operation whose Apply returned success must appear in
// the drain totals, and nothing applies after the drain began
// rejecting.
func TestDrainLosesNoAcknowledgedOp(t *testing.T) {
	s := New(Options{Shards: 4, MailboxSize: 8, MaxOps: 100000})
	const workers = 8
	var acked atomic.Int64
	var wg sync.WaitGroup
	ids := make([]string, workers)
	for w := 0; w < workers; w++ {
		ids[w] = mustCreate(t, s, "simplified", 0).ID
	}
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id string, seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			<-start
			for {
				resp, err := s.Apply(id, []dpm.Operation{
					synth("AmpDesign", "Width", 2+rng.Float64()),
				})
				switch {
				case err == nil:
					acked.Add(int64(resp.Applied))
				case errors.Is(err, ErrBusy):
					runtime.Gosched()
				case errors.Is(err, ErrDraining):
					return
				default:
					t.Errorf("apply: %v", err)
					return
				}
			}
		}(ids[w], int64(w))
	}
	close(start)
	time.Sleep(20 * time.Millisecond)
	sums := s.Drain()
	wg.Wait()

	var total int
	for _, sum := range sums {
		total += sum.Totals.Operations
	}
	if int64(total) != acked.Load() {
		t.Errorf("drain totals %d ops != %d acknowledged ops", total, acked.Load())
	}
	if _, err := s.Apply(ids[0], []dpm.Operation{synth("AmpDesign", "Width", 2)}); !errors.Is(err, ErrDraining) {
		t.Errorf("apply after drain: err = %v, want ErrDraining", err)
	}
	if _, err := s.Create(scenario.Simplified(), dpm.ADPM, 0); !errors.Is(err, ErrDraining) {
		t.Errorf("create after drain: err = %v, want ErrDraining", err)
	}
	// Idempotent: a second Drain returns the same summaries.
	if again := s.Drain(); len(again) != len(sums) || again[0].Totals != sums[0].Totals {
		t.Errorf("second Drain returned different summaries")
	}
}

// TestShardTraceReconciles pins the shard trace contract: a stream with
// several sessions (created, applied, evicted, deleted, live at drain)
// passes ValidateJSONL — its single run-end carries the aggregated
// totals of every operation event — and the counters include the
// eviction.
func TestShardTraceReconciles(t *testing.T) {
	var buf bytes.Buffer
	var clock atomic.Int64
	var rec *trace.Recorder
	s := New(Options{
		Shards:      1,
		IdleTimeout: time.Minute,
		SweepEvery:  time.Hour,
		nowFn:       func() time.Time { return time.Unix(0, clock.Load()) },
		ShardRecorder: func(int) *trace.Recorder {
			rec = trace.New(trace.Options{W: &buf})
			return rec
		},
	})
	a := mustCreate(t, s, "simplified", 0)
	b := mustCreate(t, s, "simplified", 0)
	c := mustCreate(t, s, "simplified", 0)
	for _, id := range []string{a.ID, b.ID, c.ID} {
		if _, err := s.Apply(id, []dpm.Operation{
			synth("AmpDesign", "Width", 3), synth("AmpDesign", "Bias", 4),
		}); err != nil {
			t.Fatal(err)
		}
	}
	clock.Store(int64(2 * time.Minute))
	if _, err := s.State(c.ID); err != nil { // keep c fresh
		t.Fatal(err)
	}
	if n := s.Sweep(); n != 2 {
		t.Fatalf("sweep evicted %d, want 2 (a and b)", n)
	}
	if _, err := s.Delete(c.ID); err != nil {
		t.Fatal(err)
	}
	sums := s.Drain()
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	st, err := trace.ValidateJSONL(&buf)
	if err != nil {
		t.Fatalf("shard trace failed validation: %v", err)
	}
	if st.Operations != 6 || st.Operations != sums[0].Totals.Operations {
		t.Errorf("trace operations %d, drain totals %d, want 6", st.Operations, sums[0].Totals.Operations)
	}
	cs := rec.Counters()
	if cs.Evictions != 2 || cs.Runs != 3 {
		t.Errorf("counters evictions=%d runs=%d, want 2 and 3", cs.Evictions, cs.Runs)
	}
	if int(cs.Operations) != sums[0].Totals.Operations || cs.OperationEvals != sums[0].Totals.Evaluations ||
		int(cs.Deliveries) != sums[0].Totals.Notifications {
		t.Errorf("trace counters %+v do not reconcile with drain totals %+v", cs, sums[0].Totals)
	}
	if len(sums[0].Sessions) != 3 {
		t.Errorf("summary lists %d sessions, want 3", len(sums[0].Sessions))
	}
}

// TestServerRaceStress is the race sweep: 8 client goroutines over 4
// shards continuously create, apply (valid and invalid batches), query,
// delete, and evict ≥64 sessions; at drain the per-shard trace counters
// must reconcile exactly with the summaries, and no session may exceed
// its budget. Run with -race.
func TestServerRaceStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	const (
		shards      = 4
		workers     = 8
		perWorker   = 8 // sessions created per worker: 64 total
		maxOps      = 25
		idleTimeout = 30 * time.Millisecond
	)
	recs := make([]*trace.Recorder, shards)
	bufs := make([]*bytes.Buffer, shards)
	s := New(Options{
		Shards:      shards,
		MailboxSize: 16,
		MaxOps:      maxOps,
		IdleTimeout: idleTimeout,
		SweepEvery:  5 * time.Millisecond,
		ShardRecorder: func(i int) *trace.Recorder {
			bufs[i] = &bytes.Buffer{}
			recs[i] = trace.New(trace.Options{W: bufs[i], RingSize: 128})
			return recs[i]
		},
	})

	var acked atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for n := 0; n < perWorker; n++ {
				c, err := s.Create(scenario.Simplified(), dpm.ADPM, 0)
				if err != nil {
					if errors.Is(err, ErrBusy) {
						continue
					}
					t.Errorf("create: %v", err)
					return
				}
				for i := 0; i < 12; i++ {
					switch rng.Intn(5) {
					case 0: // invalid batch: must reject atomically
						_, err = s.Apply(c.ID, []dpm.Operation{
							synth("AmpDesign", "Width", 3), synth("Ghost", "Width", 1),
						})
						if err == nil {
							t.Errorf("invalid batch accepted")
						}
					case 1:
						if _, err := s.State(c.ID); err != nil && !errors.Is(err, ErrBusy) &&
							!errors.Is(err, ErrUnknownSession) {
							t.Errorf("state: %v", err)
						}
					case 2:
						if rng.Intn(4) == 0 {
							time.Sleep(idleTimeout + 10*time.Millisecond) // let the sweeper evict
						}
					default:
						resp, err := s.Apply(c.ID, []dpm.Operation{
							synth("AmpDesign", "Width", 2+rng.Float64()),
							synth("AmpDesign", "Bias", 2+rng.Float64()),
						})
						switch {
						case err == nil:
							acked.Add(int64(resp.Applied))
						case errors.Is(err, ErrBusy), errors.Is(err, ErrBudget),
							errors.Is(err, ErrUnknownSession):
						default:
							t.Errorf("apply: %v", err)
						}
					}
				}
				if rng.Intn(2) == 0 {
					if _, err := s.Delete(c.ID); err != nil && !errors.Is(err, ErrBusy) &&
						!errors.Is(err, ErrUnknownSession) {
						t.Errorf("delete: %v", err)
					}
				}
			}
		}(int64(w + 1))
	}
	wg.Wait()
	sums := s.Drain()

	var total Totals
	sessions := 0
	for i, sum := range sums {
		sessions += len(sum.Sessions)
		total.Operations += sum.Totals.Operations
		total.Evaluations += sum.Totals.Evaluations
		total.Spins += sum.Totals.Spins
		total.Notifications += sum.Totals.Notifications
		for _, ss := range sum.Sessions {
			if ss.Operations > maxOps {
				t.Errorf("session %s executed %d ops, budget %d overshot", ss.ID, ss.Operations, maxOps)
			}
		}
		if err := recs[i].Close(); err != nil {
			t.Fatal(err)
		}
		st, err := trace.ValidateJSONL(bufs[i])
		if err != nil {
			t.Fatalf("shard %d trace failed validation: %v", i, err)
		}
		cs := recs[i].Counters()
		if int(cs.Operations) != sum.Totals.Operations || cs.OperationEvals != sum.Totals.Evaluations ||
			int(cs.Spins) != sum.Totals.Spins || int(cs.Deliveries) != sum.Totals.Notifications {
			t.Errorf("shard %d: trace counters (ops=%d evals=%d spins=%d deliv=%d) != drain totals %+v",
				i, cs.Operations, cs.OperationEvals, cs.Spins, cs.Deliveries, sum.Totals)
		}
		if st.Operations != sum.Totals.Operations {
			t.Errorf("shard %d: JSONL stream has %d operations, summary %d", i, st.Operations, sum.Totals.Operations)
		}
	}
	if int64(total.Operations) != acked.Load() {
		t.Errorf("drain totals %d ops != %d acknowledged", total.Operations, acked.Load())
	}
	if sessions == 0 || total.Operations == 0 {
		t.Fatalf("stress produced no sessions/ops (sessions=%d ops=%d)", sessions, total.Operations)
	}
}
