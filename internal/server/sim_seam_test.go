package server

import (
	"errors"
	"testing"
	"time"

	"repro/internal/dpm"
	"repro/internal/faultfs"
	"repro/internal/vclock"
	"repro/internal/wal"
)

// TestNoSessionIDReuseAfterDelete: create → delete → restart must not
// re-issue the deleted session's id. The delete removes the session
// from the recovery fold, so the id high-water has to come from every
// id the log ever mentioned (wal.RecoverInfo.AllSessions) — a reused
// id would let the old incarnation's idempotency keys and
// Last-Event-ID positions leak into the new session.
func TestNoSessionIDReuseAfterDelete(t *testing.T) {
	m := faultfs.NewMemFS()
	opts := Options{Shards: 1, DataDir: "data", FS: m}
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	c := mustCreate(t, s, "simplified", 8)
	if _, err := s.Delete(c.ID); err != nil {
		t.Fatal(err)
	}
	s.Drain()

	s2, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Drain()
	c2 := mustCreate(t, s2, "simplified", 8)
	if c2.ID == c.ID {
		t.Fatalf("restarted server re-issued deleted session id %q", c.ID)
	}
}

// TestKillAbandonsWAL: Kill under SyncInterval must not flush the WAL
// on the way out — a crash does not get a final group commit. The
// unsynced acknowledged batch is therefore legitimately lost to a
// power cut (the SyncInterval contract), where Drain would have saved
// it.
func TestKillAbandonsWAL(t *testing.T) {
	m := faultfs.NewMemFS()
	opts := Options{
		Shards:  1,
		DataDir: "data",
		FS:      m,
		Fsync:   wal.SyncInterval,
		Clock:   vclock.NewManual(), // inert sync ticker: no background group commit
	}
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	c := mustCreate(t, s, "simplified", 8)
	if _, err := s.Apply(c.ID, []dpm.Operation{synth("AmpDesign", "Width", 3)}); err != nil {
		t.Fatal(err)
	}
	s.Kill()

	crashed := m.Clone()
	crashed.Crash()
	s2, err := Open(Options{Shards: 1, DataDir: "data", FS: crashed})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Drain()
	// The create itself ran before any sync; under SyncInterval with an
	// inert ticker nothing was ever group-committed, so the power-cut
	// image recovers no session at all.
	if _, err := s2.State(c.ID); !errors.Is(err, ErrUnknownSession) {
		t.Fatalf("powercut after Kill recovered session: err=%v", err)
	}
}

// TestSyncWALsGroupCommits: the explicit group-commit entry point makes
// acknowledged batches durable without waiting for the wall-clock
// ticker — the simulation's replacement for the SyncInterval timer.
func TestSyncWALsGroupCommits(t *testing.T) {
	m := faultfs.NewMemFS()
	opts := Options{
		Shards:  1,
		DataDir: "data",
		FS:      m,
		Fsync:   wal.SyncInterval,
		Clock:   vclock.NewManual(),
	}
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	c := mustCreate(t, s, "simplified", 8)
	if _, err := s.Apply(c.ID, []dpm.Operation{synth("AmpDesign", "Width", 3)}); err != nil {
		t.Fatal(err)
	}
	before := stateJSON(t, s, c.ID)
	if err := s.SyncWALs(); err != nil {
		t.Fatalf("SyncWALs: %v", err)
	}
	s.Kill()

	crashed := m.Clone()
	crashed.Crash()
	s2, err := Open(Options{Shards: 1, DataDir: "data", FS: crashed})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Drain()
	after := stateJSON(t, s2, c.ID)
	if string(before) != string(after) {
		t.Fatalf("state after powercut diverged:\n pre: %s\npost: %s", before, after)
	}
}

// TestManualClockSweep: with a Manual clock the idle sweeper never
// fires on its own; advancing virtual time and calling Sweep parks the
// idle session — timer work as an explicit, replayable event.
func TestManualClockSweep(t *testing.T) {
	m := faultfs.NewMemFS()
	clk := vclock.NewManual()
	s, err := Open(Options{
		Shards:      1,
		DataDir:     "data",
		FS:          m,
		Clock:       clk,
		IdleTimeout: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain()
	c := mustCreate(t, s, "simplified", 8)
	// Real time passing must not evict: the ticker is inert and the
	// virtual clock has not moved.
	time.Sleep(5 * time.Millisecond)
	if n := s.Sweep(); n != 0 {
		t.Fatalf("swept %d sessions with virtual time frozen", n)
	}
	clk.Advance(2 * time.Minute)
	if n := s.Sweep(); n != 1 {
		t.Fatalf("swept %d sessions after advancing past the idle timeout, want 1", n)
	}
	// Parked, not lost: a touch restores byte-identically.
	if _, err := s.State(c.ID); err != nil {
		t.Fatalf("restore after park: %v", err)
	}
}
