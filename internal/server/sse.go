package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/notify"
)

// Live notification fan-out. The paper's Notification Manager is a push
// subsystem — "alerting designers of key information that might
// otherwise go unnoticed" — and GET /sessions/{id}/events is its wire
// form: a Server-Sent-Events stream of the session's notification log.
//
// Every applied transition's events append to the session's log (the
// hook installed by attachEvents); IDs are 1-based log positions, and
// because the log is regenerated bit-for-bit by deterministic replay, a
// client's Last-Event-ID remains meaningful across park/restore and
// even a server restart. Delivery happens on the subscriber's own HTTP
// handler goroutine, never on the shard loop: the shard only enqueues
// into the hub's bounded per-subscriber queues, where a stalled
// consumer loses events by its chosen policy (counted, §trace
// notify-drop) instead of blocking the shard.

// SSE defaults.
const (
	// DefaultHeartbeat is the keep-alive comment period when
	// Options.Heartbeat is 0.
	DefaultHeartbeat = 15 * time.Second
	// DefaultSubscriberQueue is the per-subscriber queue bound when the
	// request does not pick one.
	DefaultSubscriberQueue = 256
	// MaxSubscriberQueue clamps client-chosen queue bounds.
	MaxSubscriberQueue = 4096
)

// SubscribeOptions parameterize one event-stream subscription.
type SubscribeOptions struct {
	// Designer, when non-empty, reuses the named designer's NM relevance
	// filter (owner's concern set); unknown designers are ErrInvalid.
	// Empty receives every event.
	Designer string
	// Policy is what a full queue loses: notify.DropOldest or
	// notify.Coalesce.
	Policy notify.DropPolicy
	// QueueCap bounds the subscriber queue; 0 means
	// DefaultSubscriberQueue, clamped to [1, MaxSubscriberQueue].
	QueueCap int
	// AfterID resumes after the given event id: log events with id >
	// AfterID are seeded into the queue before live delivery. 0 replays
	// the whole log.
	AfterID int
}

// Subscribe attaches a live subscriber to a session's event stream,
// transparently restoring a parked session. The returned Sub is
// drained by the caller's goroutine (Next/Wake/Done) and must be
// Closed when done.
func (s *Server) Subscribe(id string, opt SubscribeOptions) (*notify.Sub, error) {
	if s.draining.Load() {
		return nil, ErrDraining
	}
	select {
	case <-s.subStop:
		return nil, ErrDraining
	default:
	}
	sh, err := s.shardFor(id)
	if err != nil {
		return nil, err
	}
	queueCap := opt.QueueCap
	if queueCap <= 0 {
		queueCap = DefaultSubscriberQueue
	}
	if queueCap > MaxSubscriberQueue {
		queueCap = MaxSubscriberQueue
	}
	var sub *notify.Sub
	var serr error
	err = sh.submit(func() {
		hs, lerr := sh.lookup(id)
		if lerr != nil {
			serr = lerr
			return
		}
		var f notify.Filter
		if opt.Designer != "" {
			ff, ok := hs.sess.Bus.Filter(opt.Designer)
			if !ok {
				serr = fmt.Errorf("%w: unknown designer %q", ErrInvalid, opt.Designer)
				return
			}
			f = ff
		}
		if hs.hub == nil {
			hs.hub = notify.NewHub(&sh.hubStats)
			hs.hub.SetTracer(sh.rec)
		}
		sub = hs.hub.Subscribe(f, opt.Policy, queueCap)
		// Seed the backlog through the same bounded queue live delivery
		// uses: a resume far behind a large log degrades by the sub's own
		// drop policy instead of buffering unboundedly. Backlog events
		// carry no publish timestamp (they are re-deliveries, not fresh
		// publishes — subscriber latency accounting skips them).
		after := opt.AfterID
		if after < 0 {
			after = 0
		}
		for i := after; i < len(hs.events); i++ {
			sub.Feed(notify.SeqEvent{ID: i + 1, Event: hs.events[i]})
		}
	})
	if err != nil {
		return nil, err
	}
	if serr != nil {
		return nil, serr
	}
	return sub, nil
}

// attachEvents installs the session's event hook: applied transitions
// append their events to the session log and publish to the live hub
// when one exists. Runs on the owning goroutine (shard loop live,
// opener during replay), so the append needs no locking; only the hub
// enqueue crosses goroutines, and that is the hub's job.
func (sh *shard) attachEvents(hs *hostedSession) {
	hs.sess.OnEvents = func(evs []notify.Event) {
		base := len(hs.events)
		hs.events = append(hs.events, evs...)
		if hs.hub == nil {
			return
		}
		now := sh.now().UnixNano()
		for i, e := range evs {
			hs.hub.Publish(notify.SeqEvent{ID: base + i + 1, Event: e, PubNanos: now})
		}
	}
}

// EventPayload is the SSE data frame for one notification event.
type EventPayload struct {
	Kind       string `json:"kind"`
	Stage      int    `json:"stage"`
	Constraint string `json:"constraint,omitempty"`
	Property   string `json:"property,omitempty"`
	Problem    string `json:"problem,omitempty"`
	Detail     string `json:"detail,omitempty"`
	// PubNanos is the server wall clock at publish (unix ns); 0 on
	// backlog re-deliveries. Subscriber clients derive publish→deliver
	// latency from it.
	PubNanos int64 `json:"pub_ns,omitempty"`
}

// handleEvents is GET /sessions/{id}/events: the SSE stream.
//
// Query parameters: designer (relevance filter), policy
// ("drop-oldest"|"coalesce"), queue (per-subscriber bound),
// last_event_id (resume; the Last-Event-ID header, which EventSource
// sends on reconnect, takes precedence). Heartbeat comments flow every
// Options.Heartbeat so intermediaries cannot declare the stream dead
// between design operations.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, fmt.Errorf("%w: streaming unsupported by connection", ErrInvalid))
		return
	}
	opt := SubscribeOptions{Designer: r.URL.Query().Get("designer")}
	switch p := r.URL.Query().Get("policy"); p {
	case "", "drop-oldest":
		opt.Policy = notify.DropOldest
	case "coalesce":
		opt.Policy = notify.Coalesce
	default:
		writeErr(w, fmt.Errorf("%w: unknown policy %q", ErrInvalid, p))
		return
	}
	if q := r.URL.Query().Get("queue"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 1 {
			writeErr(w, fmt.Errorf("%w: bad queue %q", ErrInvalid, q))
			return
		}
		opt.QueueCap = n
	}
	lastID := r.Header.Get("Last-Event-ID")
	if lastID == "" {
		lastID = r.URL.Query().Get("last_event_id")
	}
	if lastID != "" {
		n, err := strconv.Atoi(lastID)
		if err != nil || n < 0 {
			writeErr(w, fmt.Errorf("%w: bad Last-Event-ID %q", ErrInvalid, lastID))
			return
		}
		opt.AfterID = n
	}
	sub, err := s.Subscribe(r.PathValue("id"), opt)
	if err != nil {
		writeErrReq(w, r, err)
		return
	}
	defer sub.Close()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	hb := s.opts.Clock.NewTicker(s.opts.Heartbeat)
	defer hb.Stop()
	var buf bytes.Buffer
	flush := func() bool {
		if sseWriteBatch(&buf, sub.Next(0)) {
			if _, err := w.Write(buf.Bytes()); err != nil {
				return false
			}
			fl.Flush()
		}
		return true
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.subStop:
			// Drain-aware shutdown: deliver what is queued, then end the
			// stream so http.Server.Shutdown is never held open by us.
			flush()
			return
		case <-sub.Done():
			// Session retired, parked, or deleted: final drain, then EOF.
			// A client resumes with Last-Event-ID (park/restore
			// regenerates the log deterministically).
			flush()
			return
		case <-sub.Wake():
			if !flush() {
				return
			}
		case <-hb.C():
			if _, err := fmt.Fprint(w, ": hb\n\n"); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

// sseWriteBatch renders events as SSE frames into buf (reset first);
// reports whether there is anything to send.
func sseWriteBatch(buf *bytes.Buffer, evs []notify.SeqEvent) bool {
	buf.Reset()
	for _, ev := range evs {
		payload := EventPayload{
			Kind:       ev.Kind.String(),
			Stage:      ev.Stage,
			Constraint: ev.Constraint,
			Property:   ev.Property,
			Problem:    ev.Problem,
			Detail:     ev.Detail,
			PubNanos:   ev.PubNanos,
		}
		data, err := json.Marshal(payload)
		if err != nil {
			continue
		}
		fmt.Fprintf(buf, "id: %d\nevent: %s\ndata: %s\n\n", ev.ID, payload.Kind, data)
	}
	return buf.Len() > 0
}
