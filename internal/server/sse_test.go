package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dpm"
	"repro/internal/notify"
	"repro/internal/trace"
)

// eventLog reads a session's full notification log through a fresh
// wide-queue subscriber: the backlog is seeded synchronously inside
// Subscribe, so one drain returns everything.
func eventLog(t *testing.T, s *Server, id string) []notify.SeqEvent {
	t.Helper()
	sub, err := s.Subscribe(id, SubscribeOptions{QueueCap: MaxSubscriberQueue})
	if err != nil {
		t.Fatalf("subscribe %s: %v", id, err)
	}
	defer sub.Close()
	return sub.Next(0)
}

// applyEventOps drives a few simplified-scenario synthesis/verification
// ops that produce notification events, returning how many batches
// applied.
func applyEventOps(t *testing.T, s *Server, id string) {
	t.Helper()
	batches := [][]dpm.Operation{
		{synth("AmpDesign", "Width", 3)},
		{synth("AmpDesign", "Ind", 2)},
		{{Kind: dpm.OpVerification, Problem: "AmpDesign", Designer: "test"}},
	}
	for i, ops := range batches {
		if _, err := s.Apply(id, ops); err != nil {
			t.Fatalf("apply batch %d: %v", i, err)
		}
	}
}

func checkSeqEvents(t *testing.T, evs []notify.SeqEvent, afterID int) {
	t.Helper()
	last := afterID
	lastStage := -1
	for _, e := range evs {
		if e.ID != last+1 {
			t.Fatalf("event id %d after %d: gap or duplicate", e.ID, last)
		}
		last = e.ID
		if e.Stage < lastStage {
			t.Fatalf("stage %d after %d: not in stage order", e.Stage, lastStage)
		}
		lastStage = e.Stage
	}
}

func TestSubscribeLiveOrdering(t *testing.T) {
	s := newTestServer(t, Options{Shards: 1})
	c := mustCreate(t, s, "simplified", 0)
	sub, err := s.Subscribe(c.ID, SubscribeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	applyEventOps(t, s, c.ID)
	want := eventLog(t, s, c.ID)
	if len(want) == 0 {
		t.Fatal("ops produced no notification events")
	}
	var got []notify.SeqEvent
	deadline := time.After(5 * time.Second)
	for len(got) < len(want) {
		got = append(got, sub.Next(0)...)
		if len(got) >= len(want) {
			break
		}
		select {
		case <-sub.Wake():
		case <-deadline:
			t.Fatalf("got %d/%d events before deadline", len(got), len(want))
		}
	}
	checkSeqEvents(t, got, 0)
	if len(got) != len(want) {
		t.Fatalf("live subscriber saw %d events, log has %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Event != want[i].Event || got[i].ID != want[i].ID {
			t.Fatalf("event %d: live %+v != log %+v", i, got[i], want[i])
		}
		if got[i].PubNanos == 0 {
			t.Errorf("live event %d has no publish timestamp", i)
		}
		if want[i].PubNanos != 0 {
			t.Errorf("backlog event %d carries a publish timestamp", i)
		}
	}
}

func TestSubscribeDesignerFilter(t *testing.T) {
	s := newTestServer(t, Options{Shards: 1})
	c := mustCreate(t, s, "simplified", 0)
	applyEventOps(t, s, c.ID)
	all := eventLog(t, s, c.ID)

	// The simplified scenario's owners include "circuit"; its filtered
	// stream must be a subsequence of the full log.
	sub, err := s.Subscribe(c.ID, SubscribeOptions{Designer: "circuit", QueueCap: MaxSubscriberQueue})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	filtered := sub.Next(0)
	if len(filtered) > len(all) {
		t.Fatalf("filtered stream longer than the log: %d > %d", len(filtered), len(all))
	}
	j := 0
	for _, e := range filtered {
		for j < len(all) && all[j].ID != e.ID {
			j++
		}
		if j == len(all) {
			t.Fatalf("filtered event %+v not in the full log order", e)
		}
	}

	if _, err := s.Subscribe(c.ID, SubscribeOptions{Designer: "nobody"}); !errors.Is(err, ErrInvalid) {
		t.Fatalf("unknown designer err = %v, want ErrInvalid", err)
	}
}

func TestSubscribeResumeAfterID(t *testing.T) {
	s := newTestServer(t, Options{Shards: 1})
	c := mustCreate(t, s, "simplified", 0)
	applyEventOps(t, s, c.ID)
	all := eventLog(t, s, c.ID)
	if len(all) < 2 {
		t.Fatalf("need at least 2 events, got %d", len(all))
	}
	cut := len(all) / 2
	sub, err := s.Subscribe(c.ID, SubscribeOptions{AfterID: cut, QueueCap: MaxSubscriberQueue})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	rest := sub.Next(0)
	if len(rest) != len(all)-cut {
		t.Fatalf("resume after %d delivered %d events, want %d", cut, len(rest), len(all)-cut)
	}
	checkSeqEvents(t, rest, cut)
	// Resume past the end delivers nothing (and must not panic).
	sub2, err := s.Subscribe(c.ID, SubscribeOptions{AfterID: len(all) + 100})
	if err != nil {
		t.Fatal(err)
	}
	defer sub2.Close()
	if evs := sub2.Next(0); len(evs) != 0 {
		t.Fatalf("resume past end delivered %d events", len(evs))
	}
}

// TestSlowSubscriberNeverBlocksShard pins the tentpole invariant: a
// subscriber that never drains its tiny queue cannot slow the shard
// loop. Applies proceed, drops are counted on the sub, the shard
// gauges, and the trace.
func TestSlowSubscriberNeverBlocksShard(t *testing.T) {
	rec := trace.New(trace.Options{RingSize: 1 << 16})
	defer rec.Close()
	s := newTestServer(t, Options{
		Shards:        1,
		ShardRecorder: func(int) *trace.Recorder { return rec },
	})
	c := mustCreate(t, s, "simplified", 0)
	sub, err := s.Subscribe(c.ID, SubscribeOptions{QueueCap: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	start := time.Now()
	applyEventOps(t, s, c.ID)
	elapsed := time.Since(start)
	if elapsed > 10*time.Second {
		t.Fatalf("applies took %v against a stalled subscriber", elapsed)
	}
	total := len(eventLog(t, s, c.ID))
	if total < 2 {
		t.Fatalf("need 2+ events to overflow a 1-slot queue, got %d", total)
	}
	wantDrops := uint64(total - 1)
	if sub.Dropped() != wantDrops {
		t.Fatalf("sub dropped %d, want %d", sub.Dropped(), wantDrops)
	}
	st := s.Stats().Shards[0]
	if st.NotifyDropped < wantDrops {
		t.Fatalf("shard gauge dropped %d, want >= %d", st.NotifyDropped, wantDrops)
	}
	if got := rec.Counters().NotifyDrops; got < int64(wantDrops) {
		t.Fatalf("trace NotifyDrops %d, want >= %d", got, wantDrops)
	}
	// The stalled queue holds exactly the newest event.
	evs := sub.Next(0)
	if len(evs) != 1 || evs[0].ID != total {
		t.Fatalf("stalled queue holds %+v, want only event %d", evs, total)
	}
}

// sseFrame is one parsed SSE event frame.
type sseFrame struct {
	id    int
	event string
	data  EventPayload
}

// sseClient reads frames (and heartbeat comments) from an open stream.
type sseClient struct {
	resp   *http.Response
	sc     *bufio.Scanner
	cancel context.CancelFunc
	// hbs counts heartbeat comments seen while reading frames.
	hbs int
}

func openSSE(t *testing.T, base, id, extra string, lastEventID int) *sseClient {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	url := base + "/sessions/" + id + "/events"
	if extra != "" {
		url += "?" + extra
	}
	req, err := http.NewRequestWithContext(ctx, "GET", url, nil)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if lastEventID > 0 {
		req.Header.Set("Last-Event-ID", strconv.Itoa(lastEventID))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		cancel()
		t.Fatalf("events stream status %d: %s", resp.StatusCode, b)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("Content-Type %q, want text/event-stream", ct)
	}
	c := &sseClient{resp: resp, sc: bufio.NewScanner(resp.Body), cancel: cancel}
	t.Cleanup(c.close)
	return c
}

func (c *sseClient) close() {
	c.cancel()
	c.resp.Body.Close()
}

// next reads one frame; ok=false on stream end.
func (c *sseClient) next(t *testing.T) (sseFrame, bool) {
	t.Helper()
	var f sseFrame
	have := false
	for c.sc.Scan() {
		line := c.sc.Text()
		switch {
		case line == "":
			if have {
				return f, true
			}
		case strings.HasPrefix(line, ":"):
			c.hbs++
		case strings.HasPrefix(line, "id: "):
			n, err := strconv.Atoi(strings.TrimPrefix(line, "id: "))
			if err != nil {
				t.Fatalf("bad id line %q", line)
			}
			f.id = n
			have = true
		case strings.HasPrefix(line, "event: "):
			f.event = strings.TrimPrefix(line, "event: ")
			have = true
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &f.data); err != nil {
				t.Fatalf("bad data line %q: %v", line, err)
			}
			have = true
		}
	}
	return f, false
}

// collect reads n frames with a deadline enforced by cancelling the
// request context.
func (c *sseClient) collect(t *testing.T, n int) []sseFrame {
	t.Helper()
	timer := time.AfterFunc(10*time.Second, c.cancel)
	defer timer.Stop()
	out := make([]sseFrame, 0, n)
	for len(out) < n {
		f, ok := c.next(t)
		if !ok {
			t.Fatalf("stream ended after %d/%d frames", len(out), n)
		}
		out = append(out, f)
	}
	return out
}

func TestSSEStreamEndToEnd(t *testing.T) {
	s := newTestServer(t, Options{Shards: 1, Heartbeat: 50 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	c := mustCreate(t, s, "simplified", 0)
	applyEventOps(t, s, c.ID)
	want := eventLog(t, s, c.ID)
	if len(want) == 0 {
		t.Fatal("no events")
	}

	// Backlog: a fresh stream replays the whole log in order.
	cl := openSSE(t, ts.URL, c.ID, "", 0)
	frames := cl.collect(t, len(want))
	for i, f := range frames {
		if f.id != i+1 {
			t.Fatalf("frame %d has id %d, want %d", i, f.id, i+1)
		}
		if f.event != want[i].Kind.String() || f.data.Kind != f.event {
			t.Fatalf("frame %d event %q/data kind %q, want %q", i, f.event, f.data.Kind, want[i].Kind)
		}
		if f.data.Stage != want[i].Stage {
			t.Fatalf("frame %d stage %d, want %d", i, f.data.Stage, want[i].Stage)
		}
		if f.data.PubNanos != 0 {
			t.Errorf("backlog frame %d carries pub_ns", i)
		}
	}

	// Live: a further op's events stream to the open connection with a
	// publish timestamp.
	if _, err := s.Apply(c.ID, []dpm.Operation{synth("AmpDesign", "Bias", 5)}); err != nil {
		t.Fatal(err)
	}
	more := eventLog(t, s, c.ID)
	if len(more) <= len(want) {
		t.Fatal("live op produced no events; pick a different op")
	}
	live := cl.collect(t, len(more)-len(want))
	for i, f := range live {
		if f.id != len(want)+i+1 {
			t.Fatalf("live frame id %d, want %d", f.id, len(want)+i+1)
		}
		if f.data.PubNanos == 0 {
			t.Errorf("live frame %d missing pub_ns", i)
		}
	}
	cl.close()

	// Resume: reconnect with Last-Event-ID mid-log; only the remainder
	// arrives, no duplicates.
	cut := len(more) / 2
	cl2 := openSSE(t, ts.URL, c.ID, "", cut)
	rest := cl2.collect(t, len(more)-cut)
	for i, f := range rest {
		if f.id != cut+i+1 {
			t.Fatalf("resumed frame id %d, want %d", f.id, cut+i+1)
		}
	}
}

func TestSSEHeartbeat(t *testing.T) {
	s := newTestServer(t, Options{Shards: 1, Heartbeat: 20 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	c := mustCreate(t, s, "simplified", 0)
	cl := openSSE(t, ts.URL, c.ID, "", 0)
	// No events exist; the only traffic is heartbeats. Read raw lines
	// until a comment shows up.
	timer := time.AfterFunc(5*time.Second, cl.cancel)
	defer timer.Stop()
	for cl.sc.Scan() {
		if strings.HasPrefix(cl.sc.Text(), ":") {
			return
		}
	}
	t.Fatal("stream ended without a heartbeat")
}

func TestSSEBadRequests(t *testing.T) {
	s := newTestServer(t, Options{Shards: 1})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	c := mustCreate(t, s, "simplified", 0)
	for _, tc := range []struct {
		path string
		want int
	}{
		{"/sessions/" + c.ID + "/events?policy=nope", http.StatusBadRequest},
		{"/sessions/" + c.ID + "/events?queue=0", http.StatusBadRequest},
		{"/sessions/" + c.ID + "/events?queue=x", http.StatusBadRequest},
		{"/sessions/" + c.ID + "/events?last_event_id=-1", http.StatusBadRequest},
		{"/sessions/" + c.ID + "/events?designer=nobody", http.StatusBadRequest},
		{"/sessions/s0-999/events", http.StatusNotFound},
	} {
		resp, err := http.Get(ts.URL + tc.path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("GET %s = %d, want %d", tc.path, resp.StatusCode, tc.want)
		}
	}
}

func TestStopSubscribersEndsStreams(t *testing.T) {
	s := newTestServer(t, Options{Shards: 1, Heartbeat: time.Hour})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	c := mustCreate(t, s, "simplified", 0)
	cl := openSSE(t, ts.URL, c.ID, "", 0)

	done := make(chan struct{})
	go func() {
		defer close(done)
		for cl.sc.Scan() {
		}
	}()
	s.StopSubscribers()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("stream did not end after StopSubscribers")
	}
	// New subscriptions are rejected.
	if _, err := s.Subscribe(c.ID, SubscribeOptions{}); !errors.Is(err, ErrDraining) {
		t.Fatalf("subscribe after stop err = %v, want ErrDraining", err)
	}
}

func TestSessionEndClosesStream(t *testing.T) {
	s := newTestServer(t, Options{Shards: 1, Heartbeat: time.Hour})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	c := mustCreate(t, s, "simplified", 0)
	applyEventOps(t, s, c.ID)
	want := eventLog(t, s, c.ID)
	cl := openSSE(t, ts.URL, c.ID, "", 0)
	frames := cl.collect(t, len(want))
	if len(frames) != len(want) {
		t.Fatalf("got %d frames, want %d", len(frames), len(want))
	}
	if _, err := s.Delete(c.ID); err != nil {
		t.Fatal(err)
	}
	timer := time.AfterFunc(5*time.Second, cl.cancel)
	defer timer.Stop()
	if f, ok := cl.next(t); ok {
		t.Fatalf("frame %+v after session delete", f)
	}
}

// TestNotifyResumeAcrossParkRestore pins the no-duplicate/ordering
// invariant across persist-then-evict: the event log regenerates
// identically on restore, so a resumed subscriber sees exactly the
// events after its Last-Event-ID, once, in order.
func TestNotifyResumeAcrossParkRestore(t *testing.T) {
	var clock atomic.Int64
	clock.Store(time.Unix(1000, 0).UnixNano())
	s := newTestServer(t, Options{
		Shards:      1,
		IdleTimeout: time.Minute,
		DataDir:     t.TempDir(),
		nowFn:       func() time.Time { return time.Unix(0, clock.Load()) },
	})
	c := mustCreate(t, s, "simplified", 0)
	applyEventOps(t, s, c.ID)
	before := eventLog(t, s, c.ID)
	if len(before) < 2 {
		t.Fatalf("need 2+ events, got %d", len(before))
	}

	// A live subscriber's stream ends when the session parks.
	sub, err := s.Subscribe(c.ID, SubscribeOptions{QueueCap: MaxSubscriberQueue})
	if err != nil {
		t.Fatal(err)
	}
	sub.Next(0)
	clock.Add(int64(2 * time.Minute))
	if n := s.Sweep(); n != 1 {
		t.Fatalf("sweep parked %d sessions, want 1", n)
	}
	select {
	case <-sub.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("subscriber not detached by park")
	}
	sub.Close()

	// Resume after the park: the touch restores the session by replay;
	// the regenerated log continues exactly where it left off.
	cut := len(before) / 2
	sub2, err := s.Subscribe(c.ID, SubscribeOptions{AfterID: cut, QueueCap: MaxSubscriberQueue})
	if err != nil {
		t.Fatal(err)
	}
	defer sub2.Close()
	rest := sub2.Next(0)
	if len(rest) != len(before)-cut {
		t.Fatalf("resume after park delivered %d events, want %d", len(rest), len(before)-cut)
	}
	checkSeqEvents(t, rest, cut)
	for i, e := range rest {
		orig := before[cut+i]
		if e.Event != orig.Event || e.ID != orig.ID {
			t.Fatalf("restored event %d: %+v != original %+v", i, e, orig)
		}
	}

	// New events after restore extend the same log (no id reuse).
	if _, err := s.Apply(c.ID, []dpm.Operation{synth("AmpDesign", "Bias", 5)}); err != nil {
		t.Fatal(err)
	}
	after := eventLog(t, s, c.ID)
	if len(after) <= len(before) {
		t.Fatal("post-restore op extended nothing")
	}
	checkSeqEvents(t, after, 0)
}

// TestNotifyResumeAcrossRestart is the crash-recovery variant: drain,
// reopen the same data dir, reconnect over HTTP with Last-Event-ID —
// at-most-once per subscriber, stage order, ids continuous.
func TestNotifyResumeAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	s := New(Options{Shards: 1, DataDir: dir})
	c := mustCreate(t, s, "simplified", 0)
	applyEventOps(t, s, c.ID)
	before := eventLog(t, s, c.ID)
	if len(before) < 2 {
		t.Fatalf("need 2+ events, got %d", len(before))
	}
	seen := len(before) / 2 // the subscriber had consumed this many
	s.Drain()

	s2, err := Open(Options{Shards: 1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Drain()
	ts := httptest.NewServer(s2.Handler())
	t.Cleanup(ts.Close)

	cl := openSSE(t, ts.URL, c.ID, "", seen)
	rest := cl.collect(t, len(before)-seen)
	for i, f := range rest {
		if f.id != seen+i+1 {
			t.Fatalf("post-restart frame id %d, want %d", f.id, seen+i+1)
		}
		if f.event != before[seen+i].Kind.String() {
			t.Fatalf("post-restart frame %d is %q, original was %q", i, f.event, before[seen+i].Kind)
		}
	}
	// And the stream stays live across the restart boundary.
	if _, err := s2.Apply(c.ID, []dpm.Operation{synth("AmpDesign", "Bias", 5)}); err != nil {
		t.Fatal(err)
	}
	all := eventLog(t, s2, c.ID)
	if len(all) <= len(before) {
		t.Fatal("post-restart op produced no events")
	}
	live := cl.collect(t, len(all)-len(before))
	for i, f := range live {
		if f.id != len(before)+i+1 {
			t.Fatalf("post-restart live frame id %d, want %d", f.id, len(before)+i+1)
		}
	}
}

// TestSSECoalescePolicy exercises the coalesce drop policy end to end
// through the HTTP query parameter.
func TestSSECoalescePolicy(t *testing.T) {
	s := newTestServer(t, Options{Shards: 1})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	c := mustCreate(t, s, "simplified", 0)
	applyEventOps(t, s, c.ID)
	all := eventLog(t, s, c.ID)
	if len(all) < 3 {
		t.Fatalf("need 3+ events, got %d", len(all))
	}
	// queue=2 with the whole backlog seeded through it: events are lost
	// (by policy), but whatever arrives is in order without duplicates.
	cl := openSSE(t, ts.URL, c.ID, "policy=coalesce&queue=2", 0)
	frames := cl.collect(t, 2)
	if frames[0].id >= frames[1].id {
		t.Fatalf("coalesced frames out of order: %d then %d", frames[0].id, frames[1].id)
	}
	st := s.Stats().Shards[0]
	if st.NotifyDropped == 0 {
		t.Error("no drops counted despite a 2-slot queue")
	}
}

func fmtSSEPath(id string) string { return fmt.Sprintf("/sessions/%s/events", id) }
