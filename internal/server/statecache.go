package server

import (
	"bytes"
	"encoding/json"
)

// The hot read path. GET /state used to walk the whole design state
// (wire.go's buildState: properties, windows, constraints, hierarchy)
// and re-serialize it on every read. Under notification fan-in — many
// designers reading after each transition — those bytes are identical
// between mutations, so the session caches them keyed by its mutation
// generation: a cache hit is a single buffered write, zero
// serialization. The bytes are produced by the same json.Encoder
// configuration writeJSON uses (EscapeHTML off, trailing newline), so
// responses are byte-identical to the uncached path — the 64-run
// server-replay differential corpus pins that.

// marshalState renders a StateResponse exactly as writeJSON would put
// it on the wire (trailing '\n' included).
func marshalState(st *StateResponse) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(st); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// StateBytes returns the session's serialized state snapshot — the
// exact bytes GET /state responds with — serving from the
// generation-keyed cache when no mutation intervened. The returned
// slice is shared with the cache; callers must not modify it.
func (s *Server) StateBytes(id string) ([]byte, error) {
	sh, err := s.shardFor(id)
	if err != nil {
		return nil, err
	}
	var out []byte
	var serr error
	err = sh.submit(func() {
		hs, lerr := sh.lookup(id)
		if lerr != nil {
			serr = lerr
			return
		}
		if hs.cache != nil && hs.cacheGen == hs.gen {
			sh.stateHits.Add(1)
			out = hs.cache
			return
		}
		b, merr := marshalState(buildState(hs))
		if merr != nil {
			serr = merr
			return
		}
		hs.cache, hs.cacheGen = b, hs.gen
		sh.stateMisses.Add(1)
		out = b
	})
	if err != nil {
		return nil, err
	}
	return out, serr
}
