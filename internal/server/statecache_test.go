package server

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/dpm"
)

// TestStateBytesByteIdentical pins the cache's contract: the cached
// bytes are exactly what writeJSON(StateResponse) would put on the
// wire, hit or miss.
func TestStateBytesByteIdentical(t *testing.T) {
	s := newTestServer(t, Options{Shards: 1})
	c := mustCreate(t, s, "simplified", 0)
	applyEventOps(t, s, c.ID)

	st, err := s.State(c.ID)
	if err != nil {
		t.Fatal(err)
	}
	want, err := marshalState(st)
	if err != nil {
		t.Fatal(err)
	}
	miss, err := s.StateBytes(c.ID) // first read: miss, fills the cache
	if err != nil {
		t.Fatal(err)
	}
	hit, err := s.StateBytes(c.ID) // second read: generation unchanged
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(miss, want) {
		t.Fatalf("uncached StateBytes differ from writeJSON rendering:\n%s\nvs\n%s", miss, want)
	}
	if !bytes.Equal(hit, want) {
		t.Fatalf("cached StateBytes differ from writeJSON rendering:\n%s\nvs\n%s", hit, want)
	}
	if want[len(want)-1] != '\n' {
		t.Fatal("rendering lost writeJSON's trailing newline")
	}
}

func TestStateCacheHitMissGauges(t *testing.T) {
	s := newTestServer(t, Options{Shards: 1})
	c := mustCreate(t, s, "simplified", 0)

	read := func() []byte {
		t.Helper()
		b, err := s.StateBytes(c.ID)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	gauges := func() (hits, misses uint64) {
		st := s.Stats().Shards[0]
		return st.StateHits, st.StateMisses
	}

	read()
	if h, m := gauges(); h != 0 || m != 1 {
		t.Fatalf("after first read: hits=%d misses=%d, want 0/1", h, m)
	}
	before := read()
	if h, m := gauges(); h != 1 || m != 1 {
		t.Fatalf("after second read: hits=%d misses=%d, want 1/1", h, m)
	}

	// A mutation bumps the generation: next read is a miss with new bytes.
	if _, err := s.Apply(c.ID, []dpm.Operation{synth("AmpDesign", "Width", 3)}); err != nil {
		t.Fatal(err)
	}
	after := read()
	if h, m := gauges(); h != 1 || m != 2 {
		t.Fatalf("after mutation+read: hits=%d misses=%d, want 1/2", h, m)
	}
	if bytes.Equal(before, after) {
		t.Fatal("state bytes unchanged across an accepted mutation")
	}
	if h, m := func() (uint64, uint64) { read(); return gauges() }(); h != 2 || m != 2 {
		t.Fatalf("after re-read: hits=%d misses=%d, want 2/2", h, m)
	}
}

// TestStateCacheRejectedBatchStaysValid: a rejected batch must not bump
// the generation — the cache keeps serving the same bytes without a
// spurious miss.
func TestStateCacheRejectedBatchStaysValid(t *testing.T) {
	s := newTestServer(t, Options{Shards: 1})
	c := mustCreate(t, s, "simplified", 1)
	if _, err := s.Apply(c.ID, []dpm.Operation{verify("Top")}); err != nil {
		t.Fatal(err)
	}
	before, err := s.StateBytes(c.ID)
	if err != nil {
		t.Fatal(err)
	}
	// Budget exhausted: this batch is rejected before application.
	if _, err := s.Apply(c.ID, []dpm.Operation{verify("Top")}); !errors.Is(err, ErrBudget) {
		t.Fatalf("over-budget apply err = %v, want ErrBudget", err)
	}
	after, err := s.StateBytes(c.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("rejected batch changed the cached state bytes")
	}
	st := s.Stats().Shards[0]
	if st.StateHits != 1 || st.StateMisses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1 (rejection must not invalidate)", st.StateHits, st.StateMisses)
	}
}

// TestStateCacheAcrossRestart: replay regenerates the same generation
// count and the same bytes — a restarted server's first read misses
// (fresh cache) but returns identical JSON.
func TestStateCacheAcrossRestart(t *testing.T) {
	opts := Options{Shards: 1, DataDir: t.TempDir()}
	s := newDurableServer(t, opts)
	c := mustCreate(t, s, "simplified", 0)
	applyEventOps(t, s, c.ID)
	before, err := s.StateBytes(c.ID)
	if err != nil {
		t.Fatal(err)
	}

	s2 := reopen(t, s, opts)
	after, err := s2.StateBytes(c.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatalf("state bytes changed across restart:\n%s\nvs\n%s", before, after)
	}
}
