package server

// Segment-rotation boundary coverage. The rotation predicate on the
// loop goroutine is
//
//	SegmentSize() >= SegmentLimit() && SegmentSize() >= 2*segBase
//
// checked after each append, so the record that crosses the limit lands
// in the old segment and the new one starts with exactly the snapshot
// frame. WAL records carry no per-record sequence number, which makes
// identical batches produce identical frame sizes — these tests lean on
// that to engineer segment sizes that hit the limit exactly.

import (
	"bytes"
	"testing"

	"repro/internal/dpm"
)

// walShardState is a point-in-time read of shard 0's WAL accounting,
// taken on the loop goroutine.
type walShardState struct {
	size, limit, segBase int64
	rotations            uint64
}

func shardWALState(t *testing.T, s *Server) walShardState {
	t.Helper()
	sh := s.shards[0]
	var st walShardState
	if err := sh.submit(func() {
		st.size = sh.wal.SegmentSize()
		st.limit = sh.wal.SegmentLimit()
		st.segBase = sh.segBase
		st.rotations = sh.rotations.Load()
	}); err != nil {
		t.Fatalf("reading shard WAL state: %v", err)
	}
	return st
}

// measureFrames records, on a server whose limit can never trip, the
// segment size right after the first create (size0) and the constant
// framed size of one repeated unkeyed batch (batchFrame).
func measureFrames(t *testing.T, maxOps int, batch []dpm.Operation) (size0, batchFrame int64) {
	t.Helper()
	m := newDurableServer(t, Options{Shards: 1, SegmentBytes: 1 << 30})
	c := mustCreate(t, m, "simplified", maxOps)
	size0 = shardWALState(t, m).size
	applyKeyed(t, m, c.ID, "", batch)
	size1 := shardWALState(t, m).size
	applyKeyed(t, m, c.ID, "", batch)
	size2 := shardWALState(t, m).size
	batchFrame = size1 - size0
	if batchFrame <= 0 || size2-size1 != batchFrame {
		t.Fatalf("batch frame size not constant: %d then %d", batchFrame, size2-size1)
	}
	return size0, batchFrame
}

// TestRotationFiresExactlyAtLimit pins the >= at the boundary: a
// segment whose size reaches the limit exactly rotates, and one byte
// under does not.
func TestRotationFiresExactlyAtLimit(t *testing.T) {
	batch := []dpm.Operation{verify("Top")}
	size0, batchFrame := measureFrames(t, 200, batch)

	// Exact server: after the create and two batches the segment is at
	// precisely the limit.
	limit := size0 + 2*batchFrame
	ex := newDurableServer(t, Options{Shards: 1, SegmentBytes: limit})
	ce := mustCreate(t, ex, "simplified", 200)
	if got := shardWALState(t, ex).size; got != size0 {
		t.Fatalf("create frame measured %d bytes, exact server wrote %d", size0, got)
	}
	applyKeyed(t, ex, ce.ID, "", batch)
	st := shardWALState(t, ex)
	if st.rotations != 0 {
		t.Fatalf("rotated %d bytes below the limit (size %d, limit %d)",
			st.limit-st.size, st.size, st.limit)
	}
	applyKeyed(t, ex, ce.ID, "", batch)
	st = shardWALState(t, ex)
	if st.rotations != 1 {
		t.Fatalf("segment hit the limit exactly (size0 %d + 2×%d == limit %d) but rotations = %d",
			size0, batchFrame, limit, st.rotations)
	}
	// Post-rotation the segment holds exactly the snapshot frame, and
	// segBase tracks it.
	if st.segBase != st.size {
		t.Fatalf("post-rotation segBase %d != segment size %d", st.segBase, st.size)
	}

	// The exact-boundary rotation must be a recovery no-op: state is
	// byte-identical across a reopen that folds only the snapshot.
	before := stateJSON(t, ex, ce.ID)
	ex2 := reopen(t, ex, Options{Shards: 1, SegmentBytes: limit})
	if after := stateJSON(t, ex2, ce.ID); !bytes.Equal(before, after) {
		t.Fatalf("state diverged across exact-boundary rotation + reopen:\n%s\nvs\n%s", before, after)
	}

	// Off-by-one server: the same two batches stop one byte short of the
	// limit, so rotation must wait for the third.
	ob := newDurableServer(t, Options{Shards: 1, SegmentBytes: limit + 1})
	co := mustCreate(t, ob, "simplified", 200)
	applyKeyed(t, ob, co.ID, "", batch)
	applyKeyed(t, ob, co.ID, "", batch)
	if st := shardWALState(t, ob); st.rotations != 0 {
		t.Fatalf("rotated at size %d, one byte under limit %d", st.size, st.limit)
	}
	applyKeyed(t, ob, co.ID, "", batch)
	if st := shardWALState(t, ob); st.rotations != 1 {
		t.Fatalf("no rotation after crossing the limit (size %d, limit %d)", st.size, st.limit)
	}
}

// TestRotationBoundaryInvariant steps one batch at a time under a limit
// small enough that the snapshot heading each new segment is itself at
// or past the limit, and checks the full predicate — including the
// doubling guard's no-rotate window (limit <= size < 2*segBase) — with
// exact equality semantics on every step.
func TestRotationBoundaryInvariant(t *testing.T) {
	batch := []dpm.Operation{verify("Top")}
	_, batchFrame := measureFrames(t, 400, batch)

	s := newDurableServer(t, Options{Shards: 1, SegmentBytes: 256})
	c := mustCreate(t, s, "simplified", 400)

	rotationsSeen, guardHits := 0, 0
	for i := 0; i < 60; i++ {
		pre := shardWALState(t, s)
		applyKeyed(t, s, c.ID, "", batch)
		post := shardWALState(t, s)

		preAppend := pre.size + batchFrame
		wantRotate := preAppend >= pre.limit && preAppend >= 2*pre.segBase
		rotated := post.rotations > pre.rotations
		if rotated != wantRotate {
			t.Fatalf("batch %d: rotated=%v but predicate says %v (pre %d + frame %d vs limit %d, segBase %d)",
				i, rotated, wantRotate, pre.size, batchFrame, pre.limit, pre.segBase)
		}
		if rotated {
			rotationsSeen++
			if post.segBase != post.size {
				t.Fatalf("batch %d: post-rotation segBase %d != segment size %d", i, post.segBase, post.size)
			}
		} else {
			if post.size != preAppend {
				t.Fatalf("batch %d: segment size %d, want %d (append accounting drifted)", i, post.size, preAppend)
			}
			if preAppend >= pre.limit {
				// Over the limit but inside the doubling guard's window.
				guardHits++
			}
		}
	}
	if rotationsSeen < 2 {
		t.Fatalf("only %d rotations in 60 batches; limit too generous to exercise the boundary", rotationsSeen)
	}
	if guardHits == 0 {
		t.Fatal("doubling-guard window (limit <= size < 2*segBase) never exercised; shrink the limit")
	}
}
