package server

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"

	"repro/internal/domain"
	"repro/internal/dpm"
	"repro/internal/teamsim"
)

// CreateRequest is the POST /sessions body: either a built-in scenario
// name or raw DDDL source, the transition mode, and an optional
// per-session operation budget (capped at the server ceiling).
type CreateRequest struct {
	Scenario string `json:"scenario,omitempty"`
	Source   string `json:"source,omitempty"`
	Mode     string `json:"mode,omitempty"`
	MaxOps   int    `json:"max_ops,omitempty"`
	// ID is an externally-minted session id ("c..." namespace; see
	// CreateSpec.ID). The cluster router mints these so session ids stay
	// unique — and deterministically placeable — across pairs.
	ID string `json:"id,omitempty"`
}

// CreateResponse acknowledges a created session.
type CreateResponse struct {
	ID         string   `json:"id"`
	Scenario   string   `json:"scenario"`
	Mode       string   `json:"mode"`
	MaxOps     int      `json:"max_ops"`
	Shard      int      `json:"shard"`
	Stage      int      `json:"stage"`
	Violations []string `json:"violations,omitempty"`
}

// OpsRequest is the POST /sessions/{id}/ops body: one atomic batch,
// optionally tagged with a client idempotency key (equivalently sent as
// the Idempotency-Key header). Retrying a keyed batch — after a 429, a
// dropped response, or a server crash — returns the original
// acknowledgement instead of applying twice.
//
// Key semantics at the edges, each deterministic:
//   - an empty key is unkeyed: the batch applies on every send;
//   - the same key with a byte-different batch body (wire-canonical
//     form) is rejected with 422 — the key stays bound to its first
//     body, and nothing is applied;
//   - keys are scoped per session: reusing a key on another session
//     applies independently there.
type OpsRequest struct {
	Ops []WireOp `json:"ops"`
	Key string   `json:"key,omitempty"`
}

// WireOp is one design operation on the wire.
type WireOp struct {
	Kind        string           `json:"kind"`
	Problem     string           `json:"problem"`
	Designer    string           `json:"designer,omitempty"`
	Assignments []WireAssignment `json:"assignments,omitempty"`
	Verify      []string         `json:"verify,omitempty"`
	MotivatedBy []string         `json:"motivated_by,omitempty"`
}

// WireAssignment binds a property to a JSON number or string.
type WireAssignment struct {
	Prop  string          `json:"prop"`
	Value json.RawMessage `json:"value"`
}

// decodeValue accepts a JSON number or string; anything else (null,
// bool, object, array) is rejected. JSON cannot encode NaN or Inf, so
// decoded numeric values are always finite.
func (a WireAssignment) decodeValue() (domain.Value, error) {
	var f float64
	if err := json.Unmarshal(a.Value, &f); err == nil {
		return domain.Real(f), nil
	}
	var s string
	if err := json.Unmarshal(a.Value, &s); err == nil {
		return domain.Str(s), nil
	}
	return domain.Value{}, fmt.Errorf("%w: assignment to %q: value must be a JSON number or string, got %s",
		ErrInvalid, a.Prop, a.Value)
}

// toOperation converts a wire op to an engine operation.
func (o WireOp) toOperation() (dpm.Operation, error) {
	op := dpm.Operation{
		Problem:     o.Problem,
		Designer:    o.Designer,
		Verify:      o.Verify,
		MotivatedBy: o.MotivatedBy,
	}
	switch o.Kind {
	case "synthesis":
		op.Kind = dpm.OpSynthesis
	case "verification":
		op.Kind = dpm.OpVerification
	case "decomposition":
		op.Kind = dpm.OpDecomposition
	default:
		return op, fmt.Errorf("%w: unknown op kind %q", ErrInvalid, o.Kind)
	}
	for _, a := range o.Assignments {
		v, err := a.decodeValue()
		if err != nil {
			return op, err
		}
		op.Assignments = append(op.Assignments, dpm.Assignment{Prop: a.Prop, Value: v})
	}
	return op, nil
}

// WireFromOperation renders an engine operation as a wire op — the
// inverse of toOperation, used by the server-replay differential test
// to push recorded histories through the full HTTP stack.
func WireFromOperation(op dpm.Operation) WireOp {
	w := WireOp{
		Kind:        op.Kind.String(),
		Problem:     op.Problem,
		Designer:    op.Designer,
		Verify:      op.Verify,
		MotivatedBy: op.MotivatedBy,
	}
	for _, a := range op.Assignments {
		var raw []byte
		if a.Value.IsString() {
			raw, _ = json.Marshal(a.Value.Text())
		} else {
			raw, _ = json.Marshal(a.Value.Num())
		}
		w.Assignments = append(w.Assignments, WireAssignment{Prop: a.Prop, Value: raw})
	}
	return w
}

// TransitionState is one applied operation's delta on the wire.
type TransitionState struct {
	Stage         int      `json:"stage"`
	Kind          string   `json:"kind"`
	Problem       string   `json:"problem"`
	Designer      string   `json:"designer,omitempty"`
	Evaluations   int64    `json:"evaluations"`
	NewViolations []string `json:"new_violations,omitempty"`
	Narrowed      []string `json:"narrowed,omitempty"`
	Emptied       []string `json:"emptied,omitempty"`
	Spin          bool     `json:"spin,omitempty"`
}

func transitionState(tr *dpm.Transition) TransitionState {
	return TransitionState{
		Stage:         tr.Stage,
		Kind:          tr.Op.Kind.String(),
		Problem:       tr.Op.Problem,
		Designer:      tr.Op.Designer,
		Evaluations:   tr.Evaluations,
		NewViolations: tr.NewViolations,
		Narrowed:      tr.Narrowed,
		Emptied:       tr.Emptied,
		Spin:          tr.IsSpin,
	}
}

// ApplyResponse acknowledges one atomic op batch.
type ApplyResponse struct {
	ID          string            `json:"id"`
	Applied     int               `json:"applied"`
	Stage       int               `json:"stage"`
	Remaining   int               `json:"remaining"`
	Done        bool              `json:"done"`
	Violations  []string          `json:"violations,omitempty"`
	Transitions []TransitionState `json:"transitions"`
}

// WindowState serializes a feasible subspace. Interval bounds are
// rendered with strconv.FormatFloat('g', -1) so they round-trip exactly
// and infinities survive JSON.
type WindowState struct {
	Empty   bool      `json:"empty,omitempty"`
	Lo      string    `json:"lo,omitempty"`
	Hi      string    `json:"hi,omitempty"`
	Reals   []float64 `json:"reals,omitempty"`
	Strings []string  `json:"strings,omitempty"`
}

func windowState(dm domain.Domain) WindowState {
	if dm.IsEmpty() {
		return WindowState{Empty: true}
	}
	if iv, ok := dm.Interval(); ok {
		return WindowState{Lo: formatBound(iv.Lo), Hi: formatBound(iv.Hi)}
	}
	if dm.Kind() == domain.DiscreteString {
		return WindowState{Strings: dm.Strings()}
	}
	return WindowState{Reals: dm.Reals()}
}

func formatBound(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// PropertyState is one property's snapshot: binding and feasible
// subspace (the movement window for bound ADPM design variables).
type PropertyState struct {
	Name     string      `json:"name"`
	Owner    string      `json:"owner,omitempty"`
	Numeric  bool        `json:"numeric"`
	Bound    bool        `json:"bound"`
	Value    interface{} `json:"value,omitempty"`
	Feasible WindowState `json:"feasible"`
}

// ProblemState is one problem's snapshot.
type ProblemState struct {
	Name     string   `json:"name"`
	Owner    string   `json:"owner,omitempty"`
	Status   string   `json:"status"`
	Children []string `json:"children,omitempty"`
}

// StateResponse is the GET /sessions/{id}/state body: the full design
// state plus the session's running metrics. Its JSON encoding is
// deterministic for a given state (insertion-ordered properties and
// problems), which the fuzzers exploit: a rejected batch must leave the
// serialized state byte-identical.
type StateResponse struct {
	ID            string          `json:"id"`
	Scenario      string          `json:"scenario"`
	Mode          string          `json:"mode"`
	Stage         int             `json:"stage"`
	Done          bool            `json:"done"`
	Remaining     int             `json:"remaining"`
	Operations    int             `json:"operations"`
	Evaluations   int64           `json:"evaluations"`
	Spins         int             `json:"spins"`
	Notifications int             `json:"notifications"`
	Violations    []string        `json:"violations,omitempty"`
	Problems      []ProblemState  `json:"problems"`
	Properties    []PropertyState `json:"properties"`
}

// SnapshotSession renders the StateResponse GET /state would return
// for a session hosted outside the server: the oracle side of the
// load-generator cross-check (internal/loadgen) replays every acked
// batch into a fresh single-threaded teamsim.Session and compares this
// snapshot byte-for-byte against the served state.
func SnapshotSession(id, scenarioName string, sess *teamsim.Session) *StateResponse {
	return buildState(&hostedSession{id: id, scenario: scenarioName, sess: sess})
}

// buildState snapshots a hosted session. Shard-loop goroutine only.
func buildState(hs *hostedSession) *StateResponse {
	d := hs.sess.D
	res := hs.sess.Res
	st := &StateResponse{
		ID:            hs.id,
		Scenario:      hs.scenario,
		Mode:          d.Mode.String(),
		Stage:         d.Stage(),
		Done:          d.Done(),
		Remaining:     hs.sess.Remaining(),
		Operations:    res.Operations,
		Evaluations:   res.Evaluations,
		Spins:         res.Spins,
		Notifications: res.Notifications,
		Violations:    d.Net.Violations(),
	}
	for _, p := range d.Problems() {
		st.Problems = append(st.Problems, ProblemState{
			Name:     p.Name,
			Owner:    p.Owner,
			Status:   p.Status().String(),
			Children: p.Children,
		})
	}
	for _, p := range d.Net.Properties() {
		ps := PropertyState{
			Name:     p.Name,
			Owner:    p.Owner,
			Numeric:  p.IsNumeric(),
			Bound:    p.IsBound(),
			Feasible: windowState(p.Feasible()),
		}
		if v, ok := p.Value(); ok {
			switch {
			case v.IsString():
				ps.Value = v.Text()
			case math.IsInf(v.Num(), 0) || math.IsNaN(v.Num()):
				// encoding/json cannot represent these as numbers.
				ps.Value = formatBound(v.Num())
			default:
				ps.Value = v.Num()
			}
		}
		st.Properties = append(st.Properties, ps)
	}
	return st
}
