// Package check is an explicit-state model checker for the session
// lifecycle and durability protocol of internal/server. It explores,
// exhaustively for a small configuration (≤2 shards, ≤3 sessions, ≤4
// keyed operation batches), every interleaving of client actions with
// crash points at every WAL record boundary, and asserts the protocol's
// core invariants on every reachable state.
//
// The state graph is built around a key property of the stack: a
// server process is a deterministic function of its filesystem image
// and the client actions applied since it opened. A checker state is
// therefore (filesystem image, client model) — no server memory needs
// snapshotting — and a transition is one *epoch*: open the real server
// on the image, apply a short sequence of client actions (create,
// apply-keyed-batch, delete, park-and-restore, explicit group commit),
// then end the process by one of drain (graceful), kill (process
// crash: the page cache survives), or powercut (machine crash: only
// fsynced bytes survive). Because every client action appends at most
// one WAL record and the sync action is explicit, terminating each
// epoch after every action prefix crashes the system at every record
// boundary, in both synced and unsynced variants.
//
// States are deduplicated by hash — SHA-256 over the filesystem
// fingerprint (volatile and durable views, see faultfs.MemFS) and the
// canonically encoded client model — and explored by DFS to a bounded
// number of epochs.
//
// Invariants, checked at every recovery and during every epoch:
//
//  1. Exactly-once acknowledgements: retrying an acked idempotency key
//     replays the byte-identical acknowledgement, never a double
//     apply.
//  2. No acked operation is lost: after drain or kill every acked
//     batch must be recovered; after a powercut every batch acked
//     under SyncAlways — or group-committed under SyncInterval — must
//     be recovered, and any loss of the unsynced suffix must be
//     prefix-closed per session.
//  3. Byte-identical state: park→restore and crash→recover reproduce
//     the session state (and, once lost batches are re-applied, the
//     full event log) byte for byte.
//  4. Last-Event-ID resume monotonicity: the event log ids are the
//     strictly sequential positions 1..n and the log is append-only
//     across park, restore, and recovery.
//  5. Deleted sessions stay deleted under the same durability contract
//     as any other acknowledged record.
//  6. Replication (Config.Replica): with a warm standby tailing the
//     WALs, the epoch vocabulary gains follower crashes, link cuts
//     (async mode), and two promotion terminators, and the durability
//     rules transfer to the promoted mirror — under quorum acks no
//     acked record may ever be lost across a promotion (even a
//     powercut-promotion), under async acks a promotion may lose only
//     the acked-but-unshipped suffix, prefix-closed per session, and
//     Last-Event-ID resume stays exact on the promoted node.
package check

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"

	"repro/internal/domain"
	"repro/internal/dpm"
	"repro/internal/faultfs"
	"repro/internal/wal"
)

// Bug selects a seeded defect for checker self-tests: the checker must
// find the violation the bug introduces, or it is not checking.
type Bug int

const (
	// BugNone checks the real protocol.
	BugNone Bug = iota
	// BugAckBeforeAppend makes the storage layer silently drop WAL
	// ops-record appends (a lying disk): the server acknowledges
	// batches that were never logged. The checker must report the
	// resulting lost-acked-operation violation after a powercut.
	BugAckBeforeAppend
	// BugAckBeforeShip makes the replication peer silently drop Append
	// ships (a lying network): quorum mode acknowledges batches the
	// follower never received. The checker must report the resulting
	// violation after a promotion.
	BugAckBeforeShip
)

// Config bounds the explored configuration.
type Config struct {
	// Shards is the server shard count (1 or 2).
	Shards int
	// MaxSessions bounds concurrently live sessions (≤3).
	MaxSessions int
	// MaxOps bounds keyed operation batches per run (≤4).
	MaxOps int
	// MaxEpochs is the DFS depth in crash epochs.
	MaxEpochs int
	// EpochLen is the max client actions per epoch.
	EpochLen int
	// Policy is the WAL sync discipline under test.
	Policy wal.SyncPolicy
	// Replica runs every epoch against a two-node pair: a warm standby
	// tails the leader's WALs, the action vocabulary gains follower
	// crashes (and, in async mode, a replication-link cut), and two new
	// terminators — promote and cutpromote — fail over to the standby,
	// so every interleaving of replication traffic with promotion is
	// explored. Implied by Quorum.
	Replica bool
	// Quorum selects quorum acks (ship-before-ack) under Replica: no
	// acked record may ever be lost across a promotion. Requires
	// SyncAlways, like the server's -repl-ack quorum.
	Quorum bool
	// Bug injects a seeded defect (self-tests).
	Bug Bug
	// MaxStates aborts runaway explorations; 0 means no cap.
	MaxStates int
}

// Report is one exploration's outcome.
type Report struct {
	// States is the number of distinct states visited.
	States int
	// Transitions is the number of epochs executed.
	Transitions int
	// Violations holds one entry per distinct violating trace found
	// (exploration stops at the first by default — a violation makes
	// every deeper state suspect).
	Violations []string
	// Trace is the action path to the first violation, outermost epoch
	// first; empty when no violation was found.
	Trace []string
}

// opVocab is the fixed operation vocabulary: MaxOps batches are applied
// in this global order, so the state space stays finite and state
// hashes are comparable across interleavings.
var opVocab = []dpm.Operation{
	{Kind: dpm.OpSynthesis, Problem: "AmpDesign", Designer: "chk",
		Assignments: []dpm.Assignment{{Prop: "Width", Value: domain.Real(2)}}},
	{Kind: dpm.OpSynthesis, Problem: "AmpDesign", Designer: "chk",
		Assignments: []dpm.Assignment{{Prop: "Ind", Value: domain.Real(1)}}},
	{Kind: dpm.OpSynthesis, Problem: "FilterPart", Designer: "chk",
		Assignments: []dpm.Assignment{{Prop: "Beam_len", Value: domain.Real(12)}}},
	{Kind: dpm.OpSynthesis, Problem: "AmpDesign", Designer: "chk",
		Assignments: []dpm.Assignment{{Prop: "Bias", Value: domain.Real(4)}}},
}

// batch is one acked keyed batch in the model.
type batch struct {
	key     string
	opIdx   int
	ack     []byte
	synced  bool // reached durable storage (fsynced)
	shipped bool // reached the follower's durable mirror (replica mode)
}

// msession is the model of one session.
type msession struct {
	id            string
	createSynced  bool
	createShipped bool // create record mirrored on the follower
	batches       []*batch
	state         []byte
	events        []string
	// deleted is set when the client deleted the session; deleteSynced
	// when the tombstone reached durable storage, deleteShipped when it
	// reached the follower's mirror.
	deleted       bool
	deleteSynced  bool
	deleteShipped bool
	// gone marks a session legally lost (unsynced create taken by a
	// power cut) or whose id was legally recycled; it is no longer
	// checked.
	gone bool
}

// model is the client-side protocol model: the oracle.
type model struct {
	sessions []*msession // creation order
	opNext   int         // next opVocab index to apply
}

func (m *model) clone() *model {
	cp := &model{opNext: m.opNext}
	for _, s := range m.sessions {
		ns := *s
		ns.batches = make([]*batch, len(s.batches))
		for i, b := range s.batches {
			nb := *b
			ns.batches[i] = &nb
		}
		ns.events = append([]string(nil), s.events...)
		cp.sessions = append(cp.sessions, &ns)
	}
	return cp
}

func (m *model) live() []*msession {
	var out []*msession
	for _, s := range m.sessions {
		if !s.deleted && !s.gone {
			out = append(out, s)
		}
	}
	return out
}

// hash canonically encodes the model.
func (m *model) hash() [sha256.Size]byte {
	h := sha256.New()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(m.opNext))
	h.Write(buf[:])
	for _, s := range m.sessions {
		fmt.Fprintf(h, "|s:%s:%t:%t:%t:%t:%t:%t", s.id, s.createSynced, s.createShipped, s.deleted, s.deleteSynced, s.deleteShipped, s.gone)
		h.Write(s.state)
		for _, e := range s.events {
			fmt.Fprintf(h, "|e:%s", e)
		}
		for _, b := range s.batches {
			fmt.Fprintf(h, "|b:%s:%d:%t:%t:", b.key, b.opIdx, b.synced, b.shipped)
			h.Write(b.ack)
		}
	}
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

// node is one DFS state.
type node struct {
	fs      *faultfs.MemFS
	standby *faultfs.MemFS // follower's filesystem (replica mode)
	model   *model
	depth   int
	path    []string
}

// checker drives one exploration.
type checker struct {
	cfg     Config
	visited map[[sha256.Size]byte]bool
	rep     *Report
	err     error
}

// Run explores the state space exhaustively and reports violations.
func Run(cfg Config) (*Report, error) {
	if cfg.Quorum {
		cfg.Replica = true
		if cfg.Policy != wal.SyncAlways {
			return nil, fmt.Errorf("check: quorum replication requires fsync=always (a quorum ack promises local durability too)")
		}
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 2
	}
	if cfg.MaxSessions <= 0 || cfg.MaxSessions > 3 {
		cfg.MaxSessions = 3
	}
	if cfg.MaxOps <= 0 || cfg.MaxOps > len(opVocab) {
		cfg.MaxOps = len(opVocab)
	}
	if cfg.MaxEpochs <= 0 {
		cfg.MaxEpochs = 4
	}
	if cfg.EpochLen <= 0 {
		cfg.EpochLen = 2
	}
	c := &checker{
		cfg:     cfg,
		visited: map[[sha256.Size]byte]bool{},
		rep:     &Report{},
	}
	root := &node{fs: faultfs.NewMemFS(), model: &model{}}
	if cfg.Replica {
		root.standby = faultfs.NewMemFS()
	}
	c.visit(root)
	c.dfs(root)
	return c.rep, c.err
}

func (c *checker) stop() bool {
	return c.err != nil || len(c.rep.Violations) > 0 ||
		(c.cfg.MaxStates > 0 && c.rep.States >= c.cfg.MaxStates)
}

// visit marks a node's state hash; reports whether it was new.
func (c *checker) visit(n *node) bool {
	h := sha256.New()
	fp := n.fs.Fingerprint()
	h.Write(fp[:])
	if n.standby != nil {
		sp := n.standby.Fingerprint()
		h.Write(sp[:])
	}
	mh := n.model.hash()
	h.Write(mh[:])
	var key [sha256.Size]byte
	h.Sum(key[:0])
	if c.visited[key] {
		return false
	}
	c.visited[key] = true
	c.rep.States++
	return true
}

// dfs expands one node: for every action sequence of length ≤ EpochLen
// and every terminator, execute an epoch on a copy of the state and
// recurse on the successor.
func (c *checker) dfs(n *node) {
	if c.stop() {
		return
	}
	if n.depth >= c.cfg.MaxEpochs {
		// Leaf state: its recovery still needs verifying — run one
		// action-free epoch purely for the recovery checks.
		c.epoch(n, nil, "drain")
		return
	}
	terms := []string{"drain", "kill", "powercut"}
	if c.cfg.Replica {
		// promote: the leader process dies (its page cache survives on
		// the old disk, which becomes the new standby) and the mirror
		// takes over. cutpromote: the leader machine loses power first —
		// the worst case a quorum deployment must survive with zero
		// acked-op loss.
		terms = append(terms, "promote", "cutpromote")
	}
	for _, seq := range c.actionSeqs(n.model) {
		for _, term := range terms {
			if c.stop() {
				return
			}
			succ := c.epoch(n, seq, term)
			if succ == nil {
				continue
			}
			if c.visit(succ) {
				c.dfs(succ)
			}
		}
	}
}

// action is one client step inside an epoch.
type action struct {
	kind string // "create", "apply", "delete", "park", "sync"
	sess int    // model session index for apply/delete
}

func (a action) String() string {
	if a.kind == "apply" || a.kind == "delete" {
		return fmt.Sprintf("%s(%d)", a.kind, a.sess)
	}
	return a.kind
}

// actionSeqs enumerates all action sequences of length 0..EpochLen
// valid from the given model state (validity of later steps depends on
// earlier ones; enumeration simulates the model cheaply).
func (c *checker) actionSeqs(m *model) [][]action {
	var out [][]action
	var rec func(prefix []action, m *model)
	rec = func(prefix []action, m *model) {
		out = append(out, append([]action(nil), prefix...))
		if len(prefix) >= c.cfg.EpochLen {
			return
		}
		var opts []action
		if len(m.live()) < c.cfg.MaxSessions {
			opts = append(opts, action{kind: "create"})
		}
		for i, s := range m.sessions {
			if s.deleted || s.gone {
				continue
			}
			if m.opNext < c.cfg.MaxOps {
				opts = append(opts, action{kind: "apply", sess: i})
			}
			opts = append(opts, action{kind: "delete", sess: i})
		}
		if len(m.live()) > 0 {
			opts = append(opts, action{kind: "park"})
		}
		if c.cfg.Policy != wal.SyncAlways {
			opts = append(opts, action{kind: "sync"})
		}
		if c.cfg.Replica && !hasKind(prefix, "fcrash") {
			opts = append(opts, action{kind: "fcrash"})
		}
		if c.cfg.Replica && !c.cfg.Quorum && !hasKind(prefix, "cut") {
			// A link cut creates unshipped (acked but unmirrored)
			// suffixes; it stays cut for the rest of the epoch — the
			// fresh link of the next epoch is the heal. Quorum mode has
			// no cut action: a cut quorum append refuses the ack, which
			// the checker would treat as an apply failure.
			opts = append(opts, action{kind: "cut"})
		}
		for _, a := range opts {
			nm := m.clone()
			applyToModel(nm, a)
			rec(append(prefix, a), nm)
		}
	}
	rec(nil, m)
	return out
}

func hasKind(seq []action, kind string) bool {
	for _, a := range seq {
		if a.kind == kind {
			return true
		}
	}
	return false
}

// applyToModel advances the *shape* of the model for enumeration only
// (ids, acks, and states are filled in during execution). fcrash and
// cut change no model shape.
func applyToModel(m *model, a action) {
	switch a.kind {
	case "create":
		m.sessions = append(m.sessions, &msession{})
	case "apply":
		m.sessions[a.sess].batches = append(m.sessions[a.sess].batches, &batch{opIdx: m.opNext})
		m.opNext++
	case "delete":
		m.sessions[a.sess].deleted = true
	}
}

// violate records the first violation with its action trace.
func (c *checker) violate(n *node, seq []action, term, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	c.rep.Violations = append(c.rep.Violations, msg)
	c.rep.Trace = append(append([]string(nil), n.path...), epochLabel(seq, term))
}

func epochLabel(seq []action, term string) string {
	var b bytes.Buffer
	for i, a := range seq {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(a.String())
	}
	if b.Len() > 0 {
		b.WriteByte(' ')
	}
	b.WriteString(term)
	return b.String()
}

func shortHash(b []byte) string {
	s := sha256.Sum256(b)
	return hex.EncodeToString(s[:6])
}
