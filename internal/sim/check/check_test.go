package check

import (
	"strings"
	"testing"

	"repro/internal/wal"
)

// TestExhaustiveSyncAlways: the full small configuration — 2 shards, 3
// sessions, 4 keyed ops, crash/kill/drain after every action prefix —
// explored exhaustively under SyncAlways must be violation-free.
func TestExhaustiveSyncAlways(t *testing.T) {
	rep, err := Run(Config{
		Shards:      2,
		MaxSessions: 3,
		MaxOps:      4,
		MaxEpochs:   4,
		EpochLen:    3,
		Policy:      wal.SyncAlways,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("violation: %s\ntrace:\n  %s", rep.Violations[0], strings.Join(rep.Trace, "\n  "))
	}
	if rep.States < 50 {
		t.Fatalf("only %d distinct states explored; the configuration should reach far more", rep.States)
	}
	t.Logf("states=%d transitions=%d", rep.States, rep.Transitions)
}

// TestExhaustiveSyncInterval: under group commit the checker also
// explores the explicit sync action and the legal-loss recovery rules.
func TestExhaustiveSyncInterval(t *testing.T) {
	rep, err := Run(Config{
		Shards:      1,
		MaxSessions: 2,
		MaxOps:      3,
		MaxEpochs:   4,
		EpochLen:    2,
		Policy:      wal.SyncInterval,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("violation: %s\ntrace:\n  %s", rep.Violations[0], strings.Join(rep.Trace, "\n  "))
	}
	t.Logf("states=%d transitions=%d", rep.States, rep.Transitions)
}

// TestExhaustiveReplicaQuorum explores the two-node pair under quorum
// acks: every interleaving of client actions with follower crashes,
// promotions, and powercut-promotions must lose nothing acked — the
// replicated generalization of invariant 2.
func TestExhaustiveReplicaQuorum(t *testing.T) {
	rep, err := Run(Config{
		Shards:      1,
		MaxSessions: 2,
		MaxOps:      3,
		MaxEpochs:   4,
		EpochLen:    2,
		Policy:      wal.SyncAlways,
		Quorum:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("violation: %s\ntrace:\n  %s", rep.Violations[0], strings.Join(rep.Trace, "\n  "))
	}
	if rep.States < 60 {
		t.Fatalf("only %d distinct states explored; replica transitions should reach far more", rep.States)
	}
	t.Logf("states=%d transitions=%d", rep.States, rep.Transitions)
}

// TestExhaustiveReplicaAsync explores async replication, where the cut
// action creates acked-but-unshipped suffixes: a promotion may lose
// exactly those (prefix-closed), and everything shipped must survive —
// including across follower crashes, which lose nothing because the
// follower fsyncs every frame. The SyncInterval variant is the richest
// space — the unsynced/unshipped interplay means a record can be in any
// of (volatile, durable, mirrored) independently.
func TestExhaustiveReplicaAsync(t *testing.T) {
	for _, policy := range []wal.SyncPolicy{wal.SyncAlways, wal.SyncInterval} {
		rep, err := Run(Config{
			Shards:      1,
			MaxSessions: 2,
			MaxOps:      3,
			MaxEpochs:   3,
			EpochLen:    2,
			Policy:      policy,
			Replica:     true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Violations) != 0 {
			t.Fatalf("policy %v violation: %s\ntrace:\n  %s", policy, rep.Violations[0], strings.Join(rep.Trace, "\n  "))
		}
		t.Logf("policy %v: states=%d transitions=%d", policy, rep.States, rep.Transitions)
	}
}

// TestCheckerQuorumRequiresSyncAlways mirrors the server's constraint:
// a quorum ack promises local durability too.
func TestCheckerQuorumRequiresSyncAlways(t *testing.T) {
	if _, err := Run(Config{Policy: wal.SyncInterval, Quorum: true}); err == nil || !strings.Contains(err.Error(), "fsync=always") {
		t.Fatalf("want quorum/fsync config error, got %v", err)
	}
}

// TestCheckerCatchesAckBeforeShip is the replication checker's own
// soundness test: a lying network that drops Append ships while quorum
// mode keeps acking must produce a durability violation after a
// promotion, or the replica transitions are not actually checking the
// ship-before-ack contract.
func TestCheckerCatchesAckBeforeShip(t *testing.T) {
	rep, err := Run(Config{
		Shards:      1,
		MaxSessions: 1,
		MaxOps:      2,
		MaxEpochs:   2,
		EpochLen:    2,
		Policy:      wal.SyncAlways,
		Quorum:      true,
		Bug:         BugAckBeforeShip,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) == 0 {
		t.Fatal("checker explored the seeded ack-before-ship bug without finding a violation")
	}
	v := rep.Violations[0]
	if !strings.Contains(v, "lost") && !strings.Contains(v, "resurrected") {
		t.Fatalf("violation found, but not a durability loss: %s", v)
	}
	if len(rep.Trace) == 0 {
		t.Fatal("violation reported without an action trace")
	}
	t.Logf("caught: %s\ntrace:\n  %s", v, strings.Join(rep.Trace, "\n  "))
}

// TestCheckerCatchesAckBeforeAppend is the checker's own soundness
// test: a seeded lying-disk bug (the server acknowledges batches whose
// WAL append never landed) must produce a lost-acked-operation
// violation, or the checker is not actually checking anything.
func TestCheckerCatchesAckBeforeAppend(t *testing.T) {
	rep, err := Run(Config{
		Shards:      1,
		MaxSessions: 2,
		MaxOps:      2,
		MaxEpochs:   2,
		EpochLen:    2,
		Policy:      wal.SyncAlways,
		Bug:         BugAckBeforeAppend,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) == 0 {
		t.Fatal("checker explored the seeded ack-before-append bug without finding the lost-acked-op violation")
	}
	v := rep.Violations[0]
	if !strings.Contains(v, "lost") {
		t.Fatalf("violation found, but not the expected loss: %s", v)
	}
	if len(rep.Trace) == 0 {
		t.Fatal("violation reported without an action trace")
	}
	t.Logf("caught: %s\ntrace:\n  %s", v, strings.Join(rep.Trace, "\n  "))
}
