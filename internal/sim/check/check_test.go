package check

import (
	"strings"
	"testing"

	"repro/internal/wal"
)

// TestExhaustiveSyncAlways: the full small configuration — 2 shards, 3
// sessions, 4 keyed ops, crash/kill/drain after every action prefix —
// explored exhaustively under SyncAlways must be violation-free.
func TestExhaustiveSyncAlways(t *testing.T) {
	rep, err := Run(Config{
		Shards:      2,
		MaxSessions: 3,
		MaxOps:      4,
		MaxEpochs:   4,
		EpochLen:    3,
		Policy:      wal.SyncAlways,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("violation: %s\ntrace:\n  %s", rep.Violations[0], strings.Join(rep.Trace, "\n  "))
	}
	if rep.States < 50 {
		t.Fatalf("only %d distinct states explored; the configuration should reach far more", rep.States)
	}
	t.Logf("states=%d transitions=%d", rep.States, rep.Transitions)
}

// TestExhaustiveSyncInterval: under group commit the checker also
// explores the explicit sync action and the legal-loss recovery rules.
func TestExhaustiveSyncInterval(t *testing.T) {
	rep, err := Run(Config{
		Shards:      1,
		MaxSessions: 2,
		MaxOps:      3,
		MaxEpochs:   4,
		EpochLen:    2,
		Policy:      wal.SyncInterval,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("violation: %s\ntrace:\n  %s", rep.Violations[0], strings.Join(rep.Trace, "\n  "))
	}
	t.Logf("states=%d transitions=%d", rep.States, rep.Transitions)
}

// TestCheckerCatchesAckBeforeAppend is the checker's own soundness
// test: a seeded lying-disk bug (the server acknowledges batches whose
// WAL append never landed) must produce a lost-acked-operation
// violation, or the checker is not actually checking anything.
func TestCheckerCatchesAckBeforeAppend(t *testing.T) {
	rep, err := Run(Config{
		Shards:      1,
		MaxSessions: 2,
		MaxOps:      2,
		MaxEpochs:   2,
		EpochLen:    2,
		Policy:      wal.SyncAlways,
		Bug:         BugAckBeforeAppend,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) == 0 {
		t.Fatal("checker explored the seeded ack-before-append bug without finding the lost-acked-op violation")
	}
	v := rep.Violations[0]
	if !strings.Contains(v, "lost") {
		t.Fatalf("violation found, but not the expected loss: %s", v)
	}
	if len(rep.Trace) == 0 {
		t.Fatal("violation reported without an action trace")
	}
	t.Logf("caught: %s\ntrace:\n  %s", v, strings.Join(rep.Trace, "\n  "))
}
