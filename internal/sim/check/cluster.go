package check

import (
	"bytes"
	"errors"
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/dpm"
	"repro/internal/faultfs"
	"repro/internal/replica"
	"repro/internal/server"
	"repro/internal/vclock"
	"repro/internal/wal"
)

// Multi-pair (cluster) mode: the explicit-state checker for cross-pair
// session migration. Two replicated pairs — each a quorum leader plus
// a warm standby over in-memory filesystem images — host externally
// minted sessions placed by the real consistent-hash ring, and the
// explored action vocabulary adds the migration protocol in both its
// composite form (begin→adopt→complete in one step) and its split
// form (begin alone, begin+adopt), so every crash point inside a
// migration is reached by the epoch terminators. Terminators end each
// epoch by draining both pairs, killing one, or killing-and-promoting
// one (the standby takes over), so migration interleaves with every
// crash/promote combination the deployment can see.
//
// Invariants, on every reachable state:
//
//  1. No acked operation is ever lost: under quorum acks and
//     SyncAlways every acked batch must replay — byte-identically —
//     on whichever pair the truthful routing table names as owner,
//     across any interleaving of migration steps with crashes and
//     promotions.
//  2. No double apply: retried keys replay, never re-apply, on the
//     owner; misrouted requests to a pair holding the session's moved
//     tombstone answer ErrMoved (the HTTP 307) and change nothing.
//  3. A frozen (mid-migration) session answers ErrMigrating; a crash
//     before completion aborts the transfer and the source still owns
//     the session with its full history.
//  4. State bytes are identical across park, adopt, crash, and
//     promote: the adopted copy is the shipped image, bit for bit.
//
// ClusterBugStaleRouter seeds the routing bug this checker exists to
// catch: a migration that re-publishes the table (epoch bump, new
// owner) but whose router keeps routing the session to the old owner
// — with the source unfrozen and no tombstone to bounce the requests.
// Writes acked by the stale old owner are invisible at the table's
// owner, and the checker must report the lost acked batch.

// ClusterBug selects a seeded defect for cluster-mode self-tests.
type ClusterBug int

const (
	// ClusterBugNone checks the real protocol.
	ClusterBugNone ClusterBug = iota
	// ClusterBugStaleRouter completes a migration's table flip (epoch
	// bump, ownership moved) without the source's tombstone, while the
	// router keeps resolving the session to the old owner. The checker
	// must report the acked batches the new owner never sees.
	ClusterBugStaleRouter
)

// ClusterConfig bounds the explored cluster configuration. The pair
// count is fixed at two — the smallest cluster with cross-pair
// migration — and durability is pinned to quorum acks + SyncAlways,
// the deployment mode whose contract is zero acked-op loss.
type ClusterConfig struct {
	// MaxSessions bounds concurrently live sessions (≤2).
	MaxSessions int
	// MaxOps bounds keyed operation batches per run (≤4).
	MaxOps int
	// MaxEpochs is the DFS depth in crash epochs.
	MaxEpochs int
	// EpochLen is the max client actions per epoch.
	EpochLen int
	// Bug injects a seeded defect (self-tests).
	Bug ClusterBug
	// MaxStates aborts runaway explorations; 0 means no cap.
	MaxStates int
}

// pairNames are the two pairs' ring names.
var pairNames = []string{"a", "b"}

// clusterRingVNodes keeps ring construction cheap; placement balance
// is irrelevant here, determinism is not.
const clusterRingVNodes = 16

// cbatch is one acked keyed batch in the cluster model.
type cbatch struct {
	key   string
	opIdx int
	ack   []byte
}

// csession models one session's cluster-visible truth.
type csession struct {
	id string
	// owner is the pair the truthful routing table names (ring
	// placement, then migration overrides).
	owner int
	// routeOwner is where the router under test actually sends
	// requests; equal to owner except under ClusterBugStaleRouter,
	// which freezes it at the pre-migration owner.
	routeOwner int
	// mig is the in-flight migration phase: 0 none, 1 begun (frozen on
	// the source), 2 adopted (durable on the destination, source not
	// yet tombstoned). Any epoch end aborts it (the freeze is
	// volatile), so successor nodes always carry mig == 0.
	mig   int
	migTo int
	// img is the shipped image of a split migration (mbegin → madopt),
	// valid only within one epoch's action sequence.
	img *wal.SessionImage
	// tombs marks pairs holding this session's moved tombstone.
	tombs   [2]bool
	batches []*cbatch
	state   []byte
}

// cmodel is the cluster-level oracle.
type cmodel struct {
	sessions []*csession
	opNext   int
	nextID   int
	epoch    uint64
}

func (m *cmodel) clone() *cmodel {
	cp := &cmodel{opNext: m.opNext, nextID: m.nextID, epoch: m.epoch}
	for _, s := range m.sessions {
		ns := *s
		ns.batches = make([]*cbatch, len(s.batches))
		for i, b := range s.batches {
			nb := *b
			ns.batches[i] = &nb
		}
		cp.sessions = append(cp.sessions, &ns)
	}
	return cp
}

func (m *cmodel) encode() []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "op:%d id:%d ep:%d", m.opNext, m.nextID, m.epoch)
	for _, s := range m.sessions {
		fmt.Fprintf(&b, "|s:%s:%d:%d:%t:%t", s.id, s.owner, s.routeOwner, s.tombs[0], s.tombs[1])
		b.Write(s.state)
		for _, bt := range s.batches {
			fmt.Fprintf(&b, "|b:%s:%d:", bt.key, bt.opIdx)
			b.Write(bt.ack)
		}
	}
	return b.Bytes()
}

// cpair is one pair's persistent state: the leader's and the standby's
// filesystem images.
type cpair struct {
	fs, standby *faultfs.MemFS
}

// cnode is one DFS state of the cluster exploration.
type cnode struct {
	pairs [2]cpair
	model *cmodel
	depth int
	path  []string
}

// livePair is one pair's per-epoch process state.
type livePair struct {
	fs, standby *faultfs.MemFS
	srv         *server.Server
	fol         *replica.Follower
	rep         *replica.Replicator
}

// clusterChecker drives one cluster exploration.
type clusterChecker struct {
	cfg     ClusterConfig
	ring    *cluster.Ring
	visited map[string]bool
	rep     *Report
	err     error
}

// RunCluster explores the two-pair migration state space exhaustively
// and reports violations.
func RunCluster(cfg ClusterConfig) (*Report, error) {
	if cfg.MaxSessions <= 0 || cfg.MaxSessions > 2 {
		cfg.MaxSessions = 2
	}
	if cfg.MaxOps <= 0 || cfg.MaxOps > len(opVocab) {
		cfg.MaxOps = 3
	}
	if cfg.MaxEpochs <= 0 {
		cfg.MaxEpochs = 3
	}
	if cfg.EpochLen <= 0 {
		cfg.EpochLen = 2
	}
	ring, err := cluster.NewRing(1, clusterRingVNodes, pairNames)
	if err != nil {
		return nil, err
	}
	cc := &clusterChecker{
		cfg:     cfg,
		ring:    ring,
		visited: map[string]bool{},
		rep:     &Report{},
	}
	root := &cnode{model: &cmodel{}}
	for i := range root.pairs {
		root.pairs[i] = cpair{fs: faultfs.NewMemFS(), standby: faultfs.NewMemFS()}
	}
	cc.visit(root)
	cc.dfs(root)
	return cc.rep, cc.err
}

func (cc *clusterChecker) stop() bool {
	return cc.err != nil || len(cc.rep.Violations) > 0 ||
		(cc.cfg.MaxStates > 0 && cc.rep.States >= cc.cfg.MaxStates)
}

func (cc *clusterChecker) visit(n *cnode) bool {
	var b bytes.Buffer
	// Depth is part of the key: a state reached earlier in the epoch
	// budget has more exploration left in it, and deduplicating it
	// against a leaf would hide interleavings that still fit the bound
	// (exactly the migrate-then-apply suffix the seeded-bug self-test
	// must reach).
	fmt.Fprintf(&b, "d:%d", n.depth)
	for i := range n.pairs {
		fp := n.pairs[i].fs.Fingerprint()
		b.Write(fp[:])
		sp := n.pairs[i].standby.Fingerprint()
		b.Write(sp[:])
	}
	b.Write(n.model.encode())
	key := b.String()
	if cc.visited[key] {
		return false
	}
	cc.visited[key] = true
	cc.rep.States++
	return true
}

func (cc *clusterChecker) violate(n *cnode, seq []action, term, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	cc.rep.Violations = append(cc.rep.Violations, msg)
	cc.rep.Trace = append(append([]string(nil), n.path...), epochLabel(seq, term))
}

// dfs expands one node across every action sequence and terminator.
func (cc *clusterChecker) dfs(n *cnode) {
	if cc.stop() {
		return
	}
	if n.depth >= cc.cfg.MaxEpochs {
		cc.epoch(n, nil, "drain")
		return
	}
	terms := []string{"drain", "kill:a", "kill:b", "promote:a", "promote:b"}
	for _, seq := range cc.actionSeqs(n.model) {
		for _, term := range terms {
			if cc.stop() {
				return
			}
			succ := cc.epoch(n, seq, term)
			if succ == nil {
				continue
			}
			if cc.visit(succ) {
				cc.dfs(succ)
			}
		}
	}
}

// actionSeqs enumerates valid action sequences of length 0..EpochLen.
// The migration vocabulary is both composite ("migrate": the full
// begin→adopt→complete cycle) and split ("mbegin", "madopt"): the
// split prefixes exist so terminators crash the protocol between its
// durable steps; completion after a crash is reached by re-running the
// composite action, which is the orchestrator's real recovery story.
func (cc *clusterChecker) actionSeqs(m *cmodel) [][]action {
	var out [][]action
	var rec func(prefix []action, m *cmodel)
	rec = func(prefix []action, m *cmodel) {
		out = append(out, append([]action(nil), prefix...))
		if len(prefix) >= cc.cfg.EpochLen {
			return
		}
		var opts []action
		if len(m.sessions) < cc.cfg.MaxSessions {
			opts = append(opts, action{kind: "create"})
		}
		for i, s := range m.sessions {
			switch s.mig {
			case 0:
				if m.opNext < cc.cfg.MaxOps {
					opts = append(opts, action{kind: "apply", sess: i})
				}
				opts = append(opts, action{kind: "migrate", sess: i}, action{kind: "mbegin", sess: i})
			case 1:
				opts = append(opts, action{kind: "madopt", sess: i})
			}
		}
		for _, a := range opts {
			nm := m.clone()
			cc.applyToModel(nm, a)
			rec(append(prefix, a), nm)
		}
	}
	rec(nil, m)
	return out
}

// applyToModel advances the model's shape for enumeration.
func (cc *clusterChecker) applyToModel(m *cmodel, a action) {
	switch a.kind {
	case "create":
		m.nextID++
		id := fmt.Sprintf("cchk%d", m.nextID)
		owner := cc.pairIndex(cc.ring.Owner(id))
		m.sessions = append(m.sessions, &csession{id: id, owner: owner, routeOwner: owner})
	case "apply":
		s := m.sessions[a.sess]
		s.batches = append(s.batches, &cbatch{opIdx: m.opNext})
		m.opNext++
	case "mbegin":
		s := m.sessions[a.sess]
		s.mig, s.migTo = 1, 1-s.owner
	case "madopt":
		s := m.sessions[a.sess]
		s.mig = 2
		// Adoption clears any moved tombstone on the destination (a
		// session migrating back home).
		s.tombs[s.migTo] = false
	case "migrate":
		s := m.sessions[a.sess]
		dst := 1 - s.owner
		if cc.cfg.Bug != ClusterBugStaleRouter {
			s.tombs[s.owner] = true
			s.tombs[dst] = false
			s.routeOwner = dst
		}
		// Under the bug: the table flips but the router's view does not
		// (routeOwner keeps its old value), the source is quietly
		// unfrozen, and no tombstone bounces misrouted requests.
		s.owner = dst
		s.mig = 0
		m.epoch++
	}
}

func (cc *clusterChecker) pairIndex(name string) int {
	for i, n := range pairNames {
		if n == name {
			return i
		}
	}
	return 0
}

// pairLocation is the tombstone vocabulary the checker writes: pair
// names, not URLs — CompleteMigrate treats the string as opaque.
func pairLocation(idx int) string { return "pair:" + pairNames[idx] }

// epoch executes one transition on copies of both pairs' images.
func (cc *clusterChecker) epoch(n *cnode, seq []action, term string) *cnode {
	m := n.model.clone()
	clk := vclock.NewManual()
	var pairs [2]*livePair
	for i := range pairs {
		lp, err := cc.openPair(n.pairs[i], clk)
		if err != nil {
			cc.err = fmt.Errorf("check: cluster pair %s: %w", pairNames[i], err)
			return nil
		}
		pairs[i] = lp
		defer lp.srv.Drain() // idempotent; the terminator usually got there first
	}
	cc.rep.Transitions++

	if !cc.verifyCluster(pairs, m, n, seq, term) {
		return nil
	}
	for _, a := range seq {
		if !cc.execute(pairs, clk, m, a, n, seq, term) {
			return nil
		}
	}

	// Restart semantics: the BeginMigrate freeze is volatile, so any
	// in-flight migration aborts at the epoch boundary — the source
	// still owns the session (no tombstone was written); an adopted
	// copy on the destination is stale surplus the next transfer may
	// extend.
	for _, s := range m.sessions {
		s.mig, s.migTo, s.img = 0, 0, nil
	}

	succ := &cnode{
		model: m,
		depth: n.depth + 1,
		path:  append(append([]string(nil), n.path...), epochLabel(seq, term)),
	}
	for i, lp := range pairs {
		fate := "drain"
		if len(term) > 5 && pairNames[i] == term[len(term)-1:] {
			fate = term[:len(term)-2]
		}
		switch fate {
		case "drain":
			lp.srv.Drain()
			succ.pairs[i] = cpair{fs: lp.fs, standby: lp.standby}
		case "kill":
			lp.srv.Kill()
			succ.pairs[i] = cpair{fs: lp.fs, standby: lp.standby}
		case "promote":
			// Kill-and-promote: the leader dies, the standby's mirror
			// becomes the servable image, the dead leader's disk becomes
			// the new standby. Quorum acks promise this loses nothing.
			lp.srv.Kill()
			if err := lp.fol.Promote(); err != nil {
				cc.violate(n, seq, term, "promote pair %s: %v", pairNames[i], err)
				return nil
			}
			succ.pairs[i] = cpair{fs: lp.standby, standby: lp.fs}
		}
	}
	return succ
}

// openPair boots one pair for an epoch: follower over the standby
// image, quorum replicator, server over the leader image, catch-up.
func (cc *clusterChecker) openPair(p cpair, clk *vclock.Manual) (*livePair, error) {
	lp := &livePair{fs: p.fs.Clone(), standby: p.standby.Clone()}
	fol, err := replica.NewFollower(replica.FollowerOptions{Dir: "data", FS: lp.standby, Shards: 1})
	if err != nil {
		return nil, err
	}
	lp.fol = fol
	rep, err := replica.NewReplicator(replica.ReplicatorOptions{
		Peer:    fol,
		FS:      lp.fs,
		DataDir: "data",
		Shards:  1,
		Quorum:  true,
	})
	if err != nil {
		return nil, err
	}
	lp.rep = rep
	srv, err := server.Open(server.Options{
		Shards:      1,
		MailboxSize: 16,
		MaxOps:      64,
		IdleTimeout: time.Minute,
		DataDir:     "data",
		Fsync:       wal.SyncAlways,
		FS:          lp.fs,
		Clock:       clk,
		IdemCap:     -1,
		Repl:        rep,
	})
	if err != nil {
		return nil, err
	}
	lp.srv = srv
	if err := rep.CatchUpAll(); err != nil {
		srv.Kill()
		return nil, fmt.Errorf("catch-up: %w", err)
	}
	return lp, nil
}

// verifyCluster checks both pairs against the model at epoch open:
// every session is fully recovered on its truthful owner (every acked
// batch replays byte-identically — under quorum + SyncAlways loss is
// never legal), its state bytes are unchanged, and every tombstoned
// pair answers ErrMoved without applying anything.
func (cc *clusterChecker) verifyCluster(pairs [2]*livePair, m *cmodel, n *cnode, seq []action, term string) bool {
	for _, s := range m.sessions {
		owner := pairs[s.owner].srv
		if _, err := owner.State(s.id); err != nil {
			cc.violate(n, seq, term, "session %s missing on owner %s: %v", s.id, pairNames[s.owner], err)
			return false
		}
		for _, b := range s.batches {
			resp, replayed, err := owner.ApplyKeyed(s.id, b.key, []dpm.Operation{opVocab[b.opIdx]})
			if err != nil {
				cc.violate(n, seq, term, "recovery retry %s on %s@%s: %v", b.key, s.id, pairNames[s.owner], err)
				return false
			}
			if !replayed {
				cc.violate(n, seq, term, "acked batch %s on %s lost at owner %s (acked under quorum+SyncAlways; stale routing or dropped transfer?)", b.key, s.id, pairNames[s.owner])
				return false
			}
			if ack := mustJSON(resp); !bytes.Equal(ack, b.ack) {
				cc.violate(n, seq, term, "recovered ack for %s on %s differs (was %s, now %s)", b.key, s.id, shortHash(b.ack), shortHash(ack))
				return false
			}
		}
		st, err := owner.State(s.id)
		if err != nil {
			cc.violate(n, seq, term, "state %s on %s: %v", s.id, pairNames[s.owner], err)
			return false
		}
		cur := mustJSON(st)
		if s.state != nil && !bytes.Equal(cur, s.state) {
			cc.violate(n, seq, term, "state of %s not byte-identical on owner %s (was %s, now %s)", s.id, pairNames[s.owner], shortHash(s.state), shortHash(cur))
			return false
		}
		s.state = cur

		for i := range pairs {
			if !s.tombs[i] {
				continue
			}
			_, err := pairs[i].srv.State(s.id)
			if !errors.Is(err, server.ErrMoved) {
				cc.violate(n, seq, term, "pair %s lost the moved tombstone of %s (got %v, want ErrMoved)", pairNames[i], s.id, err)
				return false
			}
			// A misrouted retry must bounce, not double-apply.
			if len(s.batches) > 0 {
				b := s.batches[len(s.batches)-1]
				if _, _, err := pairs[i].srv.ApplyKeyed(s.id, b.key, []dpm.Operation{opVocab[b.opIdx]}); !errors.Is(err, server.ErrMoved) {
					cc.violate(n, seq, term, "misrouted retry of %s on tombstoned pair %s: got %v, want ErrMoved", b.key, pairNames[i], err)
					return false
				}
			}
		}
	}
	return true
}

// execute runs one cluster action with inline invariant checks.
func (cc *clusterChecker) execute(pairs [2]*livePair, clk *vclock.Manual, m *cmodel, a action, n *cnode, seq []action, term string) bool {
	clk.Advance(time.Millisecond)
	switch a.kind {
	case "create":
		if len(m.sessions) >= cc.cfg.MaxSessions {
			return false
		}
		m.nextID++
		id := fmt.Sprintf("cchk%d", m.nextID)
		owner := cc.pairIndex(cc.ring.Owner(id))
		resp, err := pairs[owner].srv.CreateSession(server.CreateSpec{ID: id, Name: "simplified", Mode: dpm.ADPM, MaxOps: 64})
		if err != nil {
			cc.violate(n, seq, term, "create %s on %s: %v", id, pairNames[owner], err)
			return false
		}
		if resp.ID != id {
			cc.violate(n, seq, term, "create %s: server rewrote the id to %s", id, resp.ID)
			return false
		}
		s := &csession{id: id, owner: owner, routeOwner: owner}
		st, err := pairs[owner].srv.State(id)
		if err != nil {
			cc.violate(n, seq, term, "state %s after create: %v", id, err)
			return false
		}
		s.state = mustJSON(st)
		m.sessions = append(m.sessions, s)
		return true

	case "apply":
		s := m.sessions[a.sess]
		if s.mig != 0 || m.opNext >= cc.cfg.MaxOps {
			return false
		}
		// Route through the router under test: the truthful owner,
		// except when the seeded bug holds the route at the old owner.
		srv := pairs[s.routeOwner].srv
		opIdx := m.opNext
		key := fmt.Sprintf("k%d", opIdx+1)
		ops := []dpm.Operation{opVocab[opIdx]}
		resp, replayed, err := srv.ApplyKeyed(s.id, key, ops)
		if err != nil {
			cc.violate(n, seq, term, "apply %s on %s@%s: %v", key, s.id, pairNames[s.routeOwner], err)
			return false
		}
		if replayed {
			cc.violate(n, seq, term, "fresh key %s on %s came back replayed", key, s.id)
			return false
		}
		ack := mustJSON(resp)
		// Exactly-once, immediately: the retried key must replay the
		// byte-identical acknowledgement, not double-apply.
		r2, rep2, err := srv.ApplyKeyed(s.id, key, ops)
		if err != nil || !rep2 {
			cc.violate(n, seq, term, "immediate retry of %s on %s: replayed=%t err=%v", key, s.id, rep2, err)
			return false
		}
		if ack2 := mustJSON(r2); !bytes.Equal(ack, ack2) {
			cc.violate(n, seq, term, "immediate retry of %s on %s returned a different ack", key, s.id)
			return false
		}
		s.batches = append(s.batches, &cbatch{key: key, opIdx: opIdx, ack: ack})
		m.opNext++
		st, err := srv.State(s.id)
		if err != nil {
			cc.violate(n, seq, term, "state %s after apply: %v", s.id, err)
			return false
		}
		s.state = mustJSON(st)
		return true

	case "mbegin":
		s := m.sessions[a.sess]
		if s.mig != 0 {
			return false
		}
		src := pairs[s.owner].srv
		img, err := src.BeginMigrate(s.id)
		if err != nil {
			cc.violate(n, seq, term, "begin migrate %s on %s: %v", s.id, pairNames[s.owner], err)
			return false
		}
		// Frozen: until the transfer resolves, the source answers
		// ErrMigrating (the HTTP 503 + Retry-After).
		if _, _, err := src.ApplyKeyed(s.id, "frozen-probe", []dpm.Operation{opVocab[0]}); !errors.Is(err, server.ErrMigrating) {
			cc.violate(n, seq, term, "frozen session %s accepted a request (got %v, want ErrMigrating)", s.id, err)
			return false
		}
		s.mig, s.migTo, s.img = 1, 1-s.owner, img
		return true

	case "madopt":
		s := m.sessions[a.sess]
		if s.mig != 1 || s.img == nil {
			return false
		}
		if err := pairs[s.migTo].srv.AdoptSession(s.img); err != nil {
			cc.violate(n, seq, term, "adopt %s on %s: %v", s.id, pairNames[s.migTo], err)
			return false
		}
		s.mig = 2
		// Adoption clears any moved tombstone on the destination (a
		// session migrating back home).
		s.tombs[s.migTo] = false
		return true

	case "migrate":
		s := m.sessions[a.sess]
		if s.mig != 0 {
			return false
		}
		src, dst := s.owner, 1-s.owner
		img, err := pairs[src].srv.BeginMigrate(s.id)
		if err != nil {
			cc.violate(n, seq, term, "begin migrate %s on %s: %v", s.id, pairNames[src], err)
			return false
		}
		if err := pairs[dst].srv.AdoptSession(img); err != nil {
			cc.violate(n, seq, term, "adopt %s on %s: %v", s.id, pairNames[dst], err)
			return false
		}
		if cc.cfg.Bug == ClusterBugStaleRouter {
			// The seeded bug: the table is re-published (epoch bump, new
			// owner) but the source is quietly unfrozen instead of
			// tombstoned, and the router keeps resolving the session to
			// its old route.
			if err := pairs[src].srv.AbortMigrate(s.id); err != nil {
				cc.violate(n, seq, term, "bug abort %s: %v", s.id, err)
				return false
			}
		} else {
			if err := pairs[src].srv.CompleteMigrate(s.id, pairLocation(dst)); err != nil {
				cc.violate(n, seq, term, "complete migrate %s on %s: %v", s.id, pairNames[src], err)
				return false
			}
			s.tombs[src] = true
			s.tombs[dst] = false
			s.routeOwner = dst
			// The source must bounce immediately, and a retried key must
			// not double-apply there.
			if _, _, err := pairs[src].srv.ApplyKeyed(s.id, "post-move-probe", []dpm.Operation{opVocab[0]}); !errors.Is(err, server.ErrMoved) {
				cc.violate(n, seq, term, "moved session %s on %s: got %v, want ErrMoved", s.id, pairNames[src], err)
				return false
			}
		}
		s.owner = dst
		s.mig = 0
		m.epoch++
		// The adopted copy must be the shipped image bit for bit: state
		// on the new owner equals the state last observed on the old.
		st, err := pairs[s.owner].srv.State(s.id)
		if err != nil {
			cc.violate(n, seq, term, "state %s on new owner %s: %v", s.id, pairNames[s.owner], err)
			return false
		}
		if cur := mustJSON(st); s.state != nil && !bytes.Equal(cur, s.state) {
			cc.violate(n, seq, term, "migrated state of %s differs on %s (was %s, now %s)", s.id, pairNames[s.owner], shortHash(s.state), shortHash(cur))
			return false
		}
		return true
	}
	cc.err = fmt.Errorf("check: unknown cluster action %q", a.kind)
	return false
}
