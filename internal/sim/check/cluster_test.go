package check

import (
	"strings"
	"testing"
)

// TestRunClusterCleanSmall is the in-tree smoke of the multi-pair
// checker: small bounds, exhaustive, no violations. CI's cluster job
// runs the larger configuration through cmd/adpmsim.
func TestRunClusterCleanSmall(t *testing.T) {
	rep, err := RunCluster(ClusterConfig{MaxSessions: 1, MaxOps: 2, MaxEpochs: 2, EpochLen: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) > 0 {
		t.Fatalf("violations at small bounds:\n  %s\ntrace:\n  %s",
			strings.Join(rep.Violations, "\n  "), strings.Join(rep.Trace, "\n  "))
	}
	if rep.States < 10 {
		t.Fatalf("only %d states explored — the DFS is not expanding", rep.States)
	}
}

// TestRunClusterCatchesStaleRouter is the trust anchor's trust anchor:
// with the seeded lying-router defect (the table never learns a
// migration moved a session) the checker MUST report a violation. A
// checker that passes this buggy cluster proves nothing about the real
// one.
func TestRunClusterCatchesStaleRouter(t *testing.T) {
	rep, err := RunCluster(ClusterConfig{MaxSessions: 1, MaxOps: 2, MaxEpochs: 2, EpochLen: 2,
		Bug: ClusterBugStaleRouter})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) == 0 {
		t.Fatalf("checker missed the seeded stale-router bug (%d states explored)", rep.States)
	}
	if len(rep.Trace) == 0 {
		t.Error("violation reported without a reproducing trace")
	}
}

// TestRunClusterBoundsClamp pins that out-of-range bounds clamp to the
// model's maxima instead of exploding, and that MaxStates cuts the
// exploration off cleanly.
func TestRunClusterBoundsClamp(t *testing.T) {
	rep, err := RunCluster(ClusterConfig{MaxSessions: 99, MaxOps: 99, MaxEpochs: 99, EpochLen: 1,
		MaxStates: 5})
	if err != nil {
		t.Fatal(err)
	}
	if rep.States < 5 {
		t.Fatalf("explored %d states under a MaxStates=5 cutoff, want >=5", rep.States)
	}
	if len(rep.Violations) > 0 {
		t.Fatalf("truncated run reported violations: %v", rep.Violations)
	}
}
