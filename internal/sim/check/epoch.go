package check

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/dpm"
	"repro/internal/faultfs"
	"repro/internal/replica"
	"repro/internal/server"
	"repro/internal/vclock"
	"repro/internal/wal"
)

// epochCtx is the replication process state of one epoch: the live
// follower, the leader-side replicator, the link, and whether the link
// has been cut. It dies with the epoch's processes — only the two
// filesystem images persist into the successor node.
type epochCtx struct {
	fol     *replica.Follower
	rep     *replica.Replicator
	standby *faultfs.MemFS
	net     *faultfs.NetFault
	cut     bool
}

// dropAppendPeer is the BugAckBeforeShip defect: Append ships vanish
// while reporting success — a lying network. Catch-up's Reset/Copy
// verbs stay truthful, so the bug only manifests in the window between
// an acknowledged append and the next full catch-up, which is exactly
// the window a quorum ack promises cannot exist.
type dropAppendPeer struct{ replica.Peer }

func (p dropAppendPeer) Append(int, int, int64, []byte) (replica.Pos, error) {
	return replica.Pos{}, nil
}

// peer wires the epoch's follower behind the link faults (and the
// seeded ship bug, when configured).
func (c *checker) peer(ec *epochCtx) replica.Peer {
	var p replica.Peer = ec.fol
	if c.cfg.Bug == BugAckBeforeShip {
		p = dropAppendPeer{p}
	}
	return &replica.FaultPeer{Inner: p, Net: ec.net}
}

// newFollower (re)builds the follower over the epoch's standby image.
func (c *checker) newFollower(ec *epochCtx) error {
	fol, err := replica.NewFollower(replica.FollowerOptions{
		Dir:    "data",
		FS:     ec.standby,
		Shards: c.cfg.Shards,
	})
	if err != nil {
		return err
	}
	ec.fol = fol
	return nil
}

// epoch executes one transition: open the real server on a copy of the
// node's filesystem image, verify recovery against the model, run the
// action sequence with inline invariant checks, terminate the process,
// and return the successor node. A nil return means the sequence was
// infeasible from the post-recovery state (a target session turned out
// lost) or a violation ended the exploration.
func (c *checker) epoch(n *node, seq []action, term string) *node {
	fs := n.fs.Clone()
	m := n.model.clone()
	var fsys faultfs.FS = fs
	if c.cfg.Bug == BugAckBeforeAppend {
		// The lying disk: WAL ops-record appends report success while
		// the bytes never land. The server acks batches it never
		// logged — the checker must catch the loss.
		fsys = &faultfs.Fault{Inner: fs, DropWrite: func(_ int, name string, b []byte) bool {
			return strings.Contains(name, "wal-") && bytes.Contains(b, []byte(`"type":"ops"`))
		}}
	}
	clk := vclock.NewManual()
	var ec *epochCtx
	opts := server.Options{
		Shards:      c.cfg.Shards,
		MailboxSize: 16,
		MaxOps:      64,
		IdleTimeout: time.Minute,
		DataDir:     "data",
		Fsync:       c.cfg.Policy,
		FS:          fsys,
		Clock:       clk,
		IdemCap:     -1,
	}
	if c.cfg.Replica {
		ec = &epochCtx{standby: n.standby.Clone(), net: &faultfs.NetFault{}}
		if err := c.newFollower(ec); err != nil {
			c.err = fmt.Errorf("check: follower: %w", err)
			return nil
		}
		rep, err := replica.NewReplicator(replica.ReplicatorOptions{
			Peer:    c.peer(ec),
			FS:      fs,
			DataDir: "data",
			Shards:  c.cfg.Shards,
			Quorum:  c.cfg.Quorum,
		})
		if err != nil {
			c.err = fmt.Errorf("check: replicator: %w", err)
			return nil
		}
		ec.rep = rep
		opts.Repl = rep
		opts.ReplStatus = func(shard int) server.ReplStatus {
			st := rep.ShardStatus(shard)
			return server.ReplStatus{Role: st.Role, Quorum: st.Quorum, InSync: st.InSync, LagRecords: st.LagRecords, LagBytes: st.LagBytes}
		}
	}
	srv, err := server.Open(opts)
	if err != nil {
		c.err = fmt.Errorf("check: open: %w", err)
		return nil
	}
	defer srv.Drain() // idempotent; the terminator usually got there first
	c.rep.Transitions++

	if ec != nil {
		// Every epoch opens with a full catch-up — the fresh link heals
		// whatever the previous epoch's faults left behind, so survivors
		// verified below are known mirrored (verifyRecovery marks them
		// shipped on that basis).
		if err := ec.rep.CatchUpAll(); err != nil {
			c.err = fmt.Errorf("check: epoch catch-up: %w", err)
			return nil
		}
	}

	if !c.verifyRecovery(srv, m, n, seq, term) {
		return nil
	}
	for _, a := range seq {
		if !c.execute(srv, clk, m, ec, a, n, seq, term) {
			return nil
		}
	}

	stby := (*faultfs.MemFS)(nil)
	if ec != nil {
		stby = ec.standby
	}
	switch term {
	case "drain":
		srv.Drain()
		// A graceful shutdown flushes and closes every shard log:
		// everything appended so far is durable.
		m.markAllSynced()
	case "kill":
		// Process crash: no flush, but the page cache (the volatile
		// view) survives — nothing may be lost.
		srv.Kill()
	case "powercut":
		srv.Kill()
		fs.Crash()
	case "promote", "cutpromote":
		srv.Kill()
		if term == "cutpromote" {
			fs.Crash()
		}
		if err := ec.fol.Promote(); err != nil {
			c.violate(n, seq, term, "promote: %v", err)
			return nil
		}
		// The mirror becomes the servable image; the dead leader's disk
		// becomes the new standby (its divergent suffix, if any, is
		// reset away by the next epoch's catch-up). What is durable now
		// is exactly what shipped.
		fs, stby = stby, fs
		m.markPromoted()
	}
	return &node{
		fs:      fs,
		standby: stby,
		model:   m,
		depth:   n.depth + 1,
		path:    append(append([]string(nil), n.path...), epochLabel(seq, term)),
	}
}

func (m *model) markAllSynced() {
	for _, s := range m.sessions {
		if s.gone {
			continue
		}
		s.createSynced = true
		if s.deleted {
			s.deleteSynced = true
		}
		for _, b := range s.batches {
			b.synced = true
		}
	}
}

// markPromoted rewrites durability in terms of the mirror: after a
// promotion the servable image is the follower's, so a record is
// durable exactly when it shipped. The follower fsyncs every frame, so
// shipped implies durable on the promoted disk regardless of the sync
// policy.
func (m *model) markPromoted() {
	for _, s := range m.sessions {
		if s.gone {
			continue
		}
		s.createSynced = s.createShipped
		if s.deleted {
			s.deleteSynced = s.deleteShipped
		}
		for _, b := range s.batches {
			b.synced = b.shipped
		}
	}
}

// verifyRecovery checks the freshly opened server against the model:
// deleted sessions stay deleted, surviving sessions hold every synced
// batch (and any loss is prefix-closed), re-acked batches reproduce
// byte-identical acknowledgements, and state and event log are
// byte-identical once the history is settled. It mutates the model to
// the post-recovery truth. Returns false when the exploration should
// stop (violation recorded).
func (c *checker) verifyRecovery(srv *server.Server, m *model, n *node, seq []action, term string) bool {
	for _, s := range m.sessions {
		if s.gone {
			continue
		}
		_, serr := srv.State(s.id)
		if s.deleted {
			switch {
			case errors.Is(serr, server.ErrUnknownSession):
				// Tombstone holding — and durable now: wal.Open fsyncs the
				// recovered tail, so recovery is a durability checkpoint.
				// In replica mode the epoch-open catch-up mirrored it too.
				s.createSynced = true
				s.deleteSynced = true
				if c.cfg.Replica {
					s.createShipped = true
					s.deleteShipped = true
				}
				continue
			case serr == nil:
				if s.deleteSynced {
					c.violate(n, seq, term, "deleted session %s resurrected (tombstone was durable)", s.id)
					return false
				}
				// The unsynced tombstone was legally lost: the session is
				// live again with its logged history.
				s.deleted = false
				s.deleteSynced = false
				s.deleteShipped = false
			default:
				c.violate(n, seq, term, "deleted session %s: unexpected error %v", s.id, serr)
				return false
			}
		} else if errors.Is(serr, server.ErrUnknownSession) {
			if s.createSynced {
				c.violate(n, seq, term, "session %s lost (create record was durable)", s.id)
				return false
			}
			s.gone = true
			continue
		} else if serr != nil {
			c.violate(n, seq, term, "session %s: unexpected error %v", s.id, serr)
			return false
		}

		// The session survived into this open; wal.Open fsynced the
		// recovered tail, so its create record is durable from here on —
		// and mirrored, after the epoch-open catch-up.
		s.createSynced = true
		if c.cfg.Replica {
			s.createShipped = true
		}

		// Retry every batch in order: replays mark survivors, fresh
		// applies mark losses.
		lost := false
		for _, b := range s.batches {
			resp, replayed, err := srv.ApplyKeyed(s.id, b.key, []dpm.Operation{opVocab[b.opIdx]})
			if err != nil {
				c.violate(n, seq, term, "recovery retry %s on %s: %v", b.key, s.id, err)
				return false
			}
			ack := mustJSON(resp)
			if replayed {
				if lost {
					c.violate(n, seq, term, "batch %s on %s survived after an earlier batch was lost (not prefix-closed)", b.key, s.id)
					return false
				}
				if !bytes.Equal(ack, b.ack) {
					c.violate(n, seq, term, "recovered ack for %s on %s differs (was %s, now %s)", b.key, s.id, shortHash(b.ack), shortHash(ack))
					return false
				}
				b.synced = true // recovered → fsynced by the open
				b.shipped = c.cfg.Replica
			} else {
				if b.synced {
					c.violate(n, seq, term, "acked batch %s on %s lost although it was durable (ack-before-append or ack-before-ship?)", b.key, s.id)
					return false
				}
				lost = true
				b.ack = ack
				b.synced = c.cfg.Policy == wal.SyncAlways
				// Re-applied now, before any cut this epoch could
				// happen: the inline ship mirrors it.
				b.shipped = c.cfg.Replica
			}
		}
		// History settled: state and event log must be byte-identical
		// to the model (replay determinism).
		if !c.checkStateAndEvents(srv, s, n, seq, term, "recovery") {
			return false
		}
	}
	return true
}

// checkStateAndEvents compares the session's state bytes and full event
// log against the model, updating the model when it had no observation
// yet.
func (c *checker) checkStateAndEvents(srv *server.Server, s *msession, n *node, seq []action, term, when string) bool {
	st, err := srv.State(s.id)
	if err != nil {
		c.violate(n, seq, term, "%s: state %s: %v", when, s.id, err)
		return false
	}
	cur := mustJSON(st)
	if s.state != nil && !bytes.Equal(cur, s.state) {
		c.violate(n, seq, term, "%s: state of %s not byte-identical (was %s, now %s)", when, s.id, shortHash(s.state), shortHash(cur))
		return false
	}
	s.state = cur

	sub, err := srv.Subscribe(s.id, server.SubscribeOptions{QueueCap: server.MaxSubscriberQueue})
	if err != nil {
		c.violate(n, seq, term, "%s: subscribe %s: %v", when, s.id, err)
		return false
	}
	evs := sub.Next(0)
	sub.Close()
	for i, ev := range evs {
		if ev.ID != i+1 {
			c.violate(n, seq, term, "%s: event %d of %s has id %d (ids must be the 1-based log positions)", when, i, s.id, ev.ID)
			return false
		}
	}
	got := make([]string, len(evs))
	for i, ev := range evs {
		got[i] = ev.Event.String()
	}
	if len(got) != len(s.events) {
		c.violate(n, seq, term, "%s: event log of %s has %d events, model has %d", when, s.id, len(got), len(s.events))
		return false
	}
	for i := range got {
		if got[i] != s.events[i] {
			c.violate(n, seq, term, "%s: event %d of %s changed (%q vs %q)", when, i+1, s.id, got[i], s.events[i])
			return false
		}
	}
	// Last-Event-ID resume from the middle of the log: the backlog must
	// be the exact, gapless suffix — on every image this session is ever
	// served from, including a promoted mirror.
	if len(got) > 0 {
		after := len(got) / 2
		sub, err = srv.Subscribe(s.id, server.SubscribeOptions{AfterID: after, QueueCap: server.MaxSubscriberQueue})
		if err != nil {
			c.violate(n, seq, term, "%s: resume subscribe %s: %v", when, s.id, err)
			return false
		}
		tail := sub.Next(0)
		sub.Close()
		if len(tail) != len(got)-after {
			c.violate(n, seq, term, "%s: resume of %s after %d returned %d events, want %d", when, s.id, after, len(tail), len(got)-after)
			return false
		}
		for i, ev := range tail {
			if ev.ID != after+i+1 || ev.Event.String() != got[after+i] {
				c.violate(n, seq, term, "%s: resume of %s after %d not the exact suffix at %d", when, s.id, after, i)
				return false
			}
		}
	}
	return true
}

// execute runs one client action with its inline invariant checks.
// Returns false when the epoch must be abandoned (infeasible sequence)
// or the exploration stops (violation).
func (c *checker) execute(srv *server.Server, clk *vclock.Manual, m *model, ec *epochCtx, a action, n *node, seq []action, term string) bool {
	clk.Advance(time.Millisecond)
	shipping := c.cfg.Replica && !(ec != nil && ec.cut)
	switch a.kind {
	case "create":
		if len(m.live()) >= c.cfg.MaxSessions {
			return false // infeasible after recovery reshaped the model
		}
		resp, err := srv.CreateSession(server.CreateSpec{Name: "simplified", Mode: dpm.ADPM, MaxOps: 64})
		if err != nil {
			c.violate(n, seq, term, "create: %v", err)
			return false
		}
		for _, old := range m.sessions {
			if old.id == resp.ID && !old.gone {
				if c.cfg.Policy == wal.SyncAlways {
					c.violate(n, seq, term, "session id %s re-issued under SyncAlways", resp.ID)
					return false
				}
				old.gone = true // identity legally recycled
			}
		}
		s := &msession{id: resp.ID, createSynced: c.cfg.Policy == wal.SyncAlways, createShipped: shipping}
		m.sessions = append(m.sessions, s)
		return c.checkStateAndEvents(srv, s, n, seq, term, "create")

	case "apply":
		s := m.sessions[a.sess]
		if s.gone || s.deleted || m.opNext >= c.cfg.MaxOps {
			return false
		}
		opIdx := m.opNext
		key := fmt.Sprintf("k%d", opIdx+1)
		ops := []dpm.Operation{opVocab[opIdx]}
		resp, replayed, err := srv.ApplyKeyed(s.id, key, ops)
		if err != nil {
			c.violate(n, seq, term, "apply %s on %s: %v", key, s.id, err)
			return false
		}
		if replayed {
			c.violate(n, seq, term, "fresh key %s on %s came back replayed", key, s.id)
			return false
		}
		ack := mustJSON(resp)
		// Exactly-once, immediately: the retried key must replay the
		// byte-identical acknowledgement, not double-apply.
		r2, rep2, err := srv.ApplyKeyed(s.id, key, ops)
		if err != nil || !rep2 {
			c.violate(n, seq, term, "immediate retry of %s on %s: replayed=%t err=%v", key, s.id, rep2, err)
			return false
		}
		if ack2 := mustJSON(r2); !bytes.Equal(ack, ack2) {
			c.violate(n, seq, term, "immediate retry of %s on %s returned a different ack", key, s.id)
			return false
		}
		s.batches = append(s.batches, &batch{key: key, opIdx: opIdx, ack: ack, synced: c.cfg.Policy == wal.SyncAlways, shipped: shipping})
		m.opNext++
		st, err := srv.State(s.id)
		if err != nil {
			c.violate(n, seq, term, "state %s after apply: %v", s.id, err)
			return false
		}
		s.state = mustJSON(st)
		return c.captureEvents(srv, s, s.events, n, seq, term)

	case "delete":
		s := m.sessions[a.sess]
		if s.gone || s.deleted {
			return false
		}
		if _, err := srv.Delete(s.id); err != nil {
			c.violate(n, seq, term, "delete %s: %v", s.id, err)
			return false
		}
		s.deleted = true
		s.deleteSynced = c.cfg.Policy == wal.SyncAlways
		s.deleteShipped = shipping
		return true

	case "park":
		// Advance past the idle timeout and sweep: every session parks
		// to its durable image; the next read restores it, which must be
		// byte-identical (invariant 3, the persist-then-evict contract).
		clk.Advance(2 * time.Minute)
		srv.Sweep()
		for _, s := range m.live() {
			if s.gone {
				continue
			}
			if !c.checkStateAndEvents(srv, s, n, seq, term, "park-restore") {
				return false
			}
		}
		return true

	case "sync":
		if err := srv.SyncWALs(); err != nil {
			c.violate(n, seq, term, "syncwals: %v", err)
			return false
		}
		m.markAllSynced()
		return true

	case "fcrash":
		// Follower process crash: volatile standby state is lost, a
		// fresh Follower recovers the mirror (truncate-repairing any
		// torn tail), and the replicator re-verifies its position. The
		// follower fsyncs every applied frame, so nothing shipped is
		// lost — the model's shipped bits stand.
		ec.standby.Crash()
		if err := c.newFollower(ec); err != nil {
			c.violate(n, seq, term, "follower restart: %v", err)
			return false
		}
		ec.rep.SetPeer(c.peer(ec))
		ec.rep.Invalidate()
		return true

	case "cut":
		ec.net.SetPartitioned(true)
		ec.cut = true
		return true
	}
	c.err = fmt.Errorf("check: unknown action %q", a.kind)
	return false
}

// captureEvents re-reads the full event log after an apply, verifies
// the prior log is an untouched prefix (append-only), and stores the
// grown log in the model.
func (c *checker) captureEvents(srv *server.Server, s *msession, prior []string, n *node, seq []action, term string) bool {
	sub, err := srv.Subscribe(s.id, server.SubscribeOptions{QueueCap: server.MaxSubscriberQueue})
	if err != nil {
		c.violate(n, seq, term, "subscribe %s: %v", s.id, err)
		return false
	}
	evs := sub.Next(0)
	sub.Close()
	got := make([]string, len(evs))
	for i, ev := range evs {
		if ev.ID != i+1 {
			c.violate(n, seq, term, "event ids of %s not sequential at %d", s.id, i)
			return false
		}
		got[i] = ev.Event.String()
	}
	if len(got) < len(prior) {
		c.violate(n, seq, term, "event log of %s shrank after apply (%d -> %d)", s.id, len(prior), len(got))
		return false
	}
	for i := range prior {
		if got[i] != prior[i] {
			c.violate(n, seq, term, "event log of %s rewrote position %d", s.id, i+1)
			return false
		}
	}
	s.events = got
	return true
}

func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("check: unencodable value: %v", err))
	}
	return b
}
