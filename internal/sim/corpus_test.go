package sim

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/wal"
)

var updateCorpus = flag.Bool("update", false, "regenerate testdata/sim corpus expectations")

// corpusFile pins one simulation seed as a regression fixture. The
// expectations are the run's interest counters, not its trace digest:
// counters survive benign trace-format changes yet still move the
// moment scheduling, fault injection, or recovery behavior drifts —
// which is exactly the drift the corpus exists to catch. Regenerate
// deliberately with `go test ./internal/sim -run TestPinnedSeedCorpus
// -update` and eyeball the diff.
type corpusFile struct {
	Seed   int64  `json:"seed"`
	Steps  int    `json:"steps"`
	Shards int    `json:"shards"`
	Fsync  string `json:"fsync"`
	Expect struct {
		Acks      int `json:"acks"`
		Replays   int `json:"replays"`
		Creates   int `json:"creates"`
		Deletes   int `json:"deletes"`
		Parks     int `json:"parks"`
		Restores  int `json:"restores"`
		Restarts  int `json:"restarts"`
		Kills     int `json:"kills"`
		Powercuts int `json:"powercuts"`
		Rotations int `json:"rotations"`
		Faults    int `json:"faults"`
		Rejects   int `json:"rejects"`
	} `json:"expect"`
}

const corpusDir = "../../testdata/sim"

// TestPinnedSeedCorpus replays every pinned seed and demands the exact
// historical counters plus zero invariant violations. Each run is also
// executed twice so the corpus doubles as a determinism gate.
func TestPinnedSeedCorpus(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join(corpusDir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatalf("no corpus files under %s", corpusDir)
	}
	for _, p := range paths {
		p := p
		t.Run(filepath.Base(p), func(t *testing.T) {
			raw, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			var cf corpusFile
			if err := json.Unmarshal(raw, &cf); err != nil {
				t.Fatalf("parsing %s: %v", p, err)
			}
			policy, err := wal.ParsePolicy(cf.Fsync)
			if err != nil {
				t.Fatal(err)
			}
			cfg := Config{Seed: cf.Seed, Steps: cf.Steps, Shards: cf.Shards, Policy: policy}
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range res.Violations {
				t.Errorf("violation: %s", v)
			}
			again, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Digest != again.Digest {
				t.Fatalf("seed %d is not deterministic: digests %s vs %s", cf.Seed, res.Digest, again.Digest)
			}
			got := cf
			got.Expect.Acks = res.Acks
			got.Expect.Replays = res.Replays
			got.Expect.Creates = res.Creates
			got.Expect.Deletes = res.Deletes
			got.Expect.Parks = res.Parks
			got.Expect.Restores = res.Restores
			got.Expect.Restarts = res.Restarts
			got.Expect.Kills = res.Kills
			got.Expect.Powercuts = res.Powercuts
			got.Expect.Rotations = res.Rotations
			got.Expect.Faults = res.Faults
			got.Expect.Rejects = res.Rejects
			if *updateCorpus {
				out, err := json.MarshalIndent(got, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(p, append(out, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("updated %s", p)
				return
			}
			if got.Expect != cf.Expect {
				t.Errorf("seed %d counters drifted from the pinned corpus:\n pinned: %+v\n got:    %+v\n(rerun with -update if the drift is intentional)",
					cf.Seed, cf.Expect, got.Expect)
			}
		})
	}
}
