package sim

import (
	"bytes"

	"repro/internal/faultfs"
	"repro/internal/replica"
	"repro/internal/server"
	"repro/internal/wal"
)

// Replica mode runs the whole schedule against a two-node pair: the
// server under test is the leader, and a warm standby (an
// internal/replica Follower on its own MemFS) tails its WALs through a
// fault-injectable link. The schedule keeps every single-node action
// and gains the distributed ones — follower crashes, message drops,
// partitions, failovers, rolling restarts — while the same client
// model checks the same invariants across them: quorum mode must never
// lose an acked batch across a failover, async mode may lose only a
// prefix-closed suffix, and a rolling handoff must lose nothing in
// either mode.

// ensureRepl builds whichever replication pieces the harness is
// missing: the link (shared for the whole run so message ordinals stay
// cumulative), the standby filesystem, the follower over it, and the
// leader-side replicator. Failover nulls follower+replicator and swaps
// the filesystems, so the next open() rebuilds them with the roles
// reversed — the ex-leader's disk becomes the new standby.
func (h *harness) ensureRepl() error {
	if h.net == nil {
		h.net = &faultfs.NetFault{OnMsg: h.onNetMsg}
	}
	if h.standby == nil {
		h.standby = faultfs.NewMemFS()
	}
	if h.fol == nil {
		fol, err := replica.NewFollower(replica.FollowerOptions{
			Dir:    dataDir,
			FS:     h.standby,
			Shards: h.cfg.Shards,
		})
		if err != nil {
			return err
		}
		h.fol = fol
	}
	if h.rep == nil {
		rep, err := replica.NewReplicator(replica.ReplicatorOptions{
			Peer:    &replica.FaultPeer{Inner: h.fol, Net: h.net},
			FS:      h.fs,
			DataDir: dataDir,
			Shards:  h.cfg.Shards,
			Quorum:  h.cfg.Quorum,
		})
		if err != nil {
			return err
		}
		h.rep = rep
		h.folWarm = make([]bool, h.cfg.Shards)
	}
	return nil
}

// sampleWarm records which shards have been observed in sync since the
// replicator was built. The driver is single-threaded, so sync state
// only changes inside harness calls; sampling every step catches each
// steady state, and missing a transient sync inside one action only
// errs toward treating the standby as colder than it is.
func (h *harness) sampleWarm() {
	for i := range h.folWarm {
		if !h.folWarm[i] && h.rep.ShardStatus(i).InSync {
			h.folWarm[i] = true
		}
	}
}

// clearFragile drops every fragile mark (batches and tombstones): a
// verified full catch-up just proved the mirror holds everything
// durable, so the replay-manufactured acks are as shipped as any.
func (h *harness) clearFragile() {
	for _, sm := range h.sessions {
		for _, b := range sm.batches {
			b.fragile = false
		}
		sm.deleteFragile = false
	}
}

// replStatus adapts the replicator's per-shard state for the server's
// /readyz taxonomy (Options.ReplStatus).
func (h *harness) replStatus(shard int) server.ReplStatus {
	if h.rep == nil {
		return server.ReplStatus{}
	}
	st := h.rep.ShardStatus(shard)
	return server.ReplStatus{
		Role:       st.Role,
		Quorum:     st.Quorum,
		InSync:     st.InSync,
		LagRecords: st.LagRecords,
		LagBytes:   st.LagBytes,
	}
}

// onNetMsg is the link's fault hook: scripted drops by cumulative
// message ordinal, plus one-shot drops queued by the netglitch action.
// Emitting from here is safe for the same reason onOpSync's emit is —
// the driver is single-threaded, so the ship that triggered the
// message is still on the harness's own stack.
func (h *harness) onNetMsg(n int, kind string) error {
	if h.dropNext > 0 {
		h.dropNext--
		h.res.NetDrops++
		h.emit(map[string]any{"action": "netdrop", "at": n, "kind": kind, "src": "glitch"})
		return faultfs.ErrInjected
	}
	for i, nf := range h.script.NetFails {
		if !h.netFired[i] && nf.At == n {
			h.netFired[i] = true
			h.res.NetDrops++
			h.emit(map[string]any{"action": "netdrop", "at": n, "kind": kind, "src": "script"})
			return faultfs.ErrInjected
		}
	}
	return nil
}

// stepReplica is stepOnce's replica-mode action table: the single-node
// workload plus the distributed faults.
func (h *harness) stepReplica() {
	h.sampleWarm()
	n := len(h.live())
	w := h.rng.Intn(100)
	switch {
	case n == 0 || (w < 10 && n < h.cfg.MaxSessions):
		h.doCreate()
	case w < 45:
		h.doApply()
	case w < 51:
		h.doStateCheck()
	case w < 56:
		h.doRetryAcked()
	case w < 61:
		h.doResumeCheck()
	case w < 66:
		h.doParkRestore()
	case w < 69:
		h.doSyncWALs()
	case w < 72:
		h.doDelete()
	case w < 75:
		h.doGracefulRestart()
	case w < 78:
		h.doKillRestart()
	case w < 80:
		h.doPowercut()
	case w < 83:
		h.doFollowerCrash()
	case w < 86:
		h.doNetGlitch()
	case w < 89:
		h.doPartition()
	case w < 93:
		h.doReplCheck()
	case w < 97:
		h.doFailover()
	default:
		h.doRolling()
	}
}

// doFollowerCrash kills and restarts the standby process: its volatile
// writes are lost, a fresh Follower recovers the mirror directory from
// durable bytes (truncate-repairing any torn tail), and the replicator
// is pointed at it and invalidated so every shard re-verifies its
// position. Because the follower fsyncs every applied frame, the
// restarted position equals the last acked one and catch-up resumes
// from there — never a wholesale re-mirror.
func (h *harness) doFollowerCrash() {
	h.standby.Crash()
	fol, err := replica.NewFollower(replica.FollowerOptions{
		Dir:    dataDir,
		FS:     h.standby,
		Shards: h.cfg.Shards,
	})
	if err != nil {
		h.violate("follower restart: %v", err)
		return
	}
	h.fol = fol
	h.rep.SetPeer(&replica.FaultPeer{Inner: fol, Net: h.net})
	h.rep.Invalidate()
	h.res.FollowerCrashes++
	h.emit(map[string]any{"action": "folcrash"})
}

// doNetGlitch queues one message drop: the next replication message of
// any kind fails at the sender. Quorum mode must repair it within the
// same append (or refuse the ack); async mode absorbs it into lag.
func (h *harness) doNetGlitch() {
	h.dropNext++
	h.emit(map[string]any{"action": "netglitch", "pending": h.dropNext})
}

// doPartition toggles the link. While cut, every quorum append fails
// client-visibly (ErrStorage, no ack) and async lag grows; healing
// lets the next ship or replcheck catch the follower back up.
func (h *harness) doPartition() {
	cut := !h.net.Partitioned()
	h.net.SetPartitioned(cut)
	if cut {
		h.res.Partitions++
	}
	h.emit(map[string]any{"action": "partition", "cut": cut})
}

// doReplCheck is the replication oracle: force a full catch-up and
// assert the standby mirrors the leader's newest segment byte for
// byte. Skipped (not failed) when the link is down — lag is legal,
// divergence after a successful catch-up is not.
func (h *harness) doReplCheck() {
	if err := h.rep.CatchUpAll(); err != nil {
		h.emit(map[string]any{"action": "replcheck", "status": "skip", "err": err.Error()})
		return
	}
	for i := 0; i < h.cfg.Shards; i++ {
		dir := replica.ShardDir(dataDir, i)
		segs, err := wal.ListSegments(h.fs, dir)
		if err != nil {
			h.violate("replcheck shard %d: list: %v", i, err)
			continue
		}
		if len(segs) == 0 {
			continue
		}
		newest := segs[len(segs)-1]
		data, err := h.fs.ReadFile(wal.SegmentPath(dir, newest))
		if err != nil {
			h.violate("replcheck shard %d: read: %v", i, err)
			continue
		}
		pos, err := h.fol.Pos(i)
		if err != nil {
			h.violate("replcheck shard %d: follower pos: %v", i, err)
			continue
		}
		if pos.Seg != newest || pos.Off != int64(len(data)) || pos.CRC != wal.Checksum(data) {
			h.violate("replcheck shard %d: follower at %v, leader newest seg=%d len=%d", i, pos, newest, len(data))
			continue
		}
		mirror, err := h.standby.ReadFile(wal.SegmentPath(dir, newest))
		if err != nil || !bytes.Equal(mirror, data) {
			h.violate("replcheck shard %d: mirrored segment %d not byte-identical (err=%v)", i, newest, err)
		}
	}
	h.clearFragile()
	h.res.ReplChecks++
	rep, _ := h.srv.Ready()
	h.emit(map[string]any{"action": "replcheck", "status": "ok", "ready": rep.Status})
}

// doFailover kills the leader without warning — half the time with a
// power cut taking its volatile writes — promotes the standby, and
// reopens the pair with the roles reversed: server.Open recovers the
// promoted mirror directory exactly as it would its own after a crash,
// and the ex-leader's disk becomes the new standby (its divergent
// suffix, if any, is reset away by the first catch-up). Quorum mode
// promises zero acked-op loss across this; async mode may lose the
// unshipped suffix, which makes it a lossy boundary for the model.
func (h *harness) doFailover() {
	h.sampleWarm()
	for i, warm := range h.folWarm {
		if !warm {
			// A standby that never made contact since its rebuild still
			// holds the previous epoch's history; promoting it would be
			// restoring a backup, not failing over. Real deployments
			// gate promotion on /readyz leaving "catching-up" the same
			// way.
			h.emit(map[string]any{"action": "failover", "status": "cold-skip", "shard": i})
			return
		}
	}
	h.collectStats()
	cut := h.rng.Intn(2) == 0
	h.srv.Kill()
	if cut {
		h.fs.Crash()
	}
	if err := h.fol.Promote(); err != nil {
		h.violate("promote: %v", err)
	}
	h.fs, h.standby = h.standby, h.fs
	h.fol, h.rep = nil, nil
	lossOK := !h.cfg.Quorum
	if lossOK {
		h.lossCuts++
	}
	h.res.Failovers++
	h.emit(map[string]any{"action": "failover", "cut": cut})
	if err := h.open(); err != nil {
		h.violate("open after failover: %v", err)
		h.mustReopenBare()
		return
	}
	h.verifyRecovery("failover", lossOK)
}

// doRolling is the zero-loss restart: park every session (their images
// land in the WAL and ship), drain, hand off (final catch-up + the
// follower's permission to promote), promote, and reopen with the
// roles reversed. Unlike failover this is loss-free even in async
// mode — the handoff's catch-up runs after the drain, so the mirror
// holds everything durable. If the handoff cannot reach the follower
// the rolling restart aborts and the old leader simply restarts in
// place, which must also lose nothing.
func (h *harness) doRolling() {
	h.collectStats()
	parked := h.srv.ParkAll()
	h.srv.Drain()
	if err := h.rep.Handoff(); err != nil {
		h.emit(map[string]any{"action": "rolling", "status": "abort", "parked": parked})
		h.res.Restarts++
		if err := h.open(); err != nil {
			h.violate("reopen after aborted rolling: %v", err)
			h.mustReopenBare()
			return
		}
		h.verifyRecovery("restart", false)
		return
	}
	h.clearFragile()
	if err := h.fol.Promote(); err != nil {
		h.violate("rolling promote: %v", err)
	}
	h.fs, h.standby = h.standby, h.fs
	h.fol, h.rep = nil, nil
	h.res.Rollings++
	h.emit(map[string]any{"action": "rolling", "status": "ok", "parked": parked})
	if err := h.open(); err != nil {
		h.violate("open after rolling: %v", err)
		h.mustReopenBare()
		return
	}
	h.verifyRecovery("rolling", false)
}
