package sim

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/wal"
)

// TestReplicaSimQuorumSweep runs the two-node schedule in quorum mode
// across a seed sweep: zero violations means no acked batch was ever
// lost across a failover, no replay double-applied across a promotion,
// and every successful catch-up left the mirror byte-identical.
func TestReplicaSimQuorumSweep(t *testing.T) {
	var fails, rolls, crashes, drops, parts, checks int
	for seed := int64(1); seed <= 12; seed++ {
		r, err := Run(Config{Seed: seed, Steps: 250, Policy: wal.SyncAlways, Replica: true, Quorum: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(r.Violations) != 0 {
			t.Errorf("seed %d: %v", seed, r.Violations)
		}
		fails += r.Failovers
		rolls += r.Rollings
		crashes += r.FollowerCrashes
		drops += r.NetDrops
		parts += r.Partitions
		checks += r.ReplChecks
	}
	if fails == 0 || rolls == 0 || crashes == 0 || drops == 0 || parts == 0 || checks == 0 {
		t.Fatalf("replica schedule left surface untouched: failovers=%d rollings=%d folcrashes=%d drops=%d partitions=%d replchecks=%d",
			fails, rolls, crashes, drops, parts, checks)
	}
}

// TestReplicaSimAsyncSweep sweeps async mode under each sync policy:
// failing over while lagged may lose an acked suffix (the model
// tolerates exactly that — prefix-closed, never reordered), and a
// rolling handoff must still lose nothing.
func TestReplicaSimAsyncSweep(t *testing.T) {
	for _, policy := range []wal.SyncPolicy{wal.SyncAlways, wal.SyncInterval} {
		for seed := int64(1); seed <= 10; seed++ {
			r, err := Run(Config{Seed: seed, Steps: 250, Policy: policy, Replica: true})
			if err != nil {
				t.Fatalf("policy %v seed %d: %v", policy, seed, err)
			}
			if len(r.Violations) != 0 {
				t.Errorf("policy %v seed %d: %v", policy, seed, r.Violations)
			}
		}
	}
}

// TestReplicaSimDeterministic: replica mode keeps the determinism
// contract — both nodes, the link, and every distributed fault replay
// byte-identically from (seed, script).
func TestReplicaSimDeterministic(t *testing.T) {
	for _, quorum := range []bool{false, true} {
		for seed := int64(3); seed <= 6; seed++ {
			a, b, err := ReplayCheck(Config{Seed: seed, Steps: 200, Policy: wal.SyncAlways, Replica: true, Quorum: quorum})
			if err != nil {
				t.Fatalf("quorum=%v seed %d: %v", quorum, seed, err)
			}
			if a.Digest != b.Digest || !bytes.Equal(a.Trace, b.Trace) {
				t.Errorf("quorum=%v seed %d: traces differ", quorum, seed)
			}
		}
	}
}

// TestReplicaSimQuorumRequiresSyncAlways: the ack contract (every ack
// durable on both nodes) needs a durable leader log, the same
// constraint adpmd enforces for -repl-ack quorum.
func TestReplicaSimQuorumRequiresSyncAlways(t *testing.T) {
	_, err := Run(Config{Seed: 1, Steps: 10, Policy: wal.SyncInterval, Replica: true, Quorum: true})
	if err == nil || !strings.Contains(err.Error(), "fsync=always") {
		t.Fatalf("want quorum/fsync config error, got %v", err)
	}
}

// TestReplicaSimScriptedNetDrop: a scripted message drop is part of the
// replay key and fires at the same cumulative ordinal every time.
func TestReplicaSimScriptedNetDrop(t *testing.T) {
	sc := &Script{NetFails: []NetFail{{At: 3}, {At: 9}}}
	a, b, err := ReplayCheck(Config{Seed: 17, Steps: 150, Policy: wal.SyncAlways, Replica: true, Quorum: true, Script: sc})
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest != b.Digest {
		t.Fatalf("scripted replica runs diverged")
	}
	if n := bytes.Count(a.Trace, []byte(`"src":"script"`)); n != 2 {
		t.Fatalf("script drops fired %d times, want 2", n)
	}
	if a.NetDrops < 2 {
		t.Fatalf("NetDrops=%d, want at least the 2 scripted drops", a.NetDrops)
	}
	if len(a.Violations) != 0 {
		t.Fatalf("violations under scripted drops: %v", a.Violations)
	}
}

// TestReplicaSimPlainScheduleUnchanged: gating every replica action and
// RNG draw behind Config.Replica means a non-replica run's trace is
// byte-identical to what it was before replication existed — the
// pinned corpus depends on it, and this pins the mechanism directly.
func TestReplicaSimPlainScheduleUnchanged(t *testing.T) {
	a, err := Run(Config{Seed: 42, Steps: 120, Policy: wal.SyncInterval})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(a.Trace, []byte(`"failover"`)) || bytes.Contains(a.Trace, []byte(`"netdrop"`)) {
		t.Fatalf("replica actions leaked into a plain run")
	}
	if a.Failovers+a.Rollings+a.FollowerCrashes+a.NetDrops+a.Partitions+a.ReplChecks != 0 {
		t.Fatalf("replica counters moved in a plain run: %+v", a)
	}
}
