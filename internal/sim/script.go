package sim

import (
	"encoding/json"
	"fmt"
	"math/rand"
)

// Script is a deterministic fault plan: which storage sync points fail
// during a simulation run. A run's outcome is a pure function of
// (seed, script) — the seed drives the workload schedule and the
// script drives the storage faults — so any failure replays exactly
// from those two values. Run generates a script from the seed when none
// is supplied and reports the one it used in the Result, which is what
// `adpmsim -script` feeds back in.
type Script struct {
	// SyncFails are the scripted fsync failures, addressed by
	// operation-relative sync point (see faultfs.Fault.OnOpSync): the
	// At-th time the Nth sync within a WAL operation of kind Op occurs
	// — counted cumulatively across the whole run, process restarts
	// included — it fails with faultfs.ErrInjected. Nth addressing is
	// what lets a script name "the rotation tail" (rotate/3, the
	// post-removal directory sync) as opposed to merely "some sync".
	SyncFails []SyncFail `json:"sync_fails,omitempty"`
	// NetFails are scripted replication-message drops (replica mode):
	// the At-th message crossing the leader→follower link fails with
	// faultfs.ErrInjected. Message ordinals are cumulative across the
	// run, follower restarts included.
	NetFails []NetFail `json:"net_fails,omitempty"`
}

// NetFail is one scripted replication-message drop.
type NetFail struct {
	// At is the 1-based cumulative replication-message ordinal at which
	// the drop fires. Each entry fires once.
	At int `json:"at"`
}

// SyncFail is one scripted fsync failure.
type SyncFail struct {
	// Op is the WAL operation kind: "append", "rotate", "sync", "open".
	Op string `json:"op"`
	// Nth is the 1-based sync ordinal within the operation.
	Nth int `json:"nth"`
	// At is the 1-based cumulative occurrence of that (Op, Nth) sync
	// point at which the failure fires. Each entry fires once.
	At int `json:"at"`
}

// String renders the script compactly for traces and job summaries.
func (sc *Script) String() string {
	if sc == nil || len(sc.SyncFails) == 0 {
		return "none"
	}
	b, _ := json.Marshal(sc)
	return string(b)
}

// ParseScript decodes a script previously serialized by Result (JSON).
func ParseScript(b []byte) (*Script, error) {
	var sc Script
	if err := json.Unmarshal(b, &sc); err != nil {
		return nil, fmt.Errorf("sim: bad script: %w", err)
	}
	for i, sf := range sc.SyncFails {
		switch sf.Op {
		case "append", "rotate", "sync", "open":
		default:
			return nil, fmt.Errorf("sim: script entry %d: unknown op %q", i, sf.Op)
		}
		if sf.Nth < 1 || sf.At < 1 {
			return nil, fmt.Errorf("sim: script entry %d: nth and at are 1-based", i)
		}
	}
	for i, nf := range sc.NetFails {
		if nf.At < 1 {
			return nil, fmt.Errorf("sim: net entry %d: at is 1-based", i)
		}
	}
	return &sc, nil
}

// genScript derives a fault plan from the workload RNG: usually none
// (most schedules should exercise the happy path's crash/park/restart
// interleavings), sometimes one or two sync failures at early-to-mid
// occurrences so the fail-stop path and its recovery get swept too.
func genScript(rng *rand.Rand) *Script {
	sc := &Script{}
	if rng.Intn(3) != 0 { // 2/3 of seeds: no storage faults
		return sc
	}
	n := 1 + rng.Intn(2)
	for i := 0; i < n; i++ {
		var sf SyncFail
		switch rng.Intn(4) {
		case 0:
			sf = SyncFail{Op: "append", Nth: 1, At: 3 + rng.Intn(25)}
		case 1:
			sf = SyncFail{Op: "rotate", Nth: 1, At: 1 + rng.Intn(3)}
		case 2:
			sf = SyncFail{Op: "rotate", Nth: 2, At: 1 + rng.Intn(3)}
		default:
			// The rotation tail: the post-removal directory sync.
			sf = SyncFail{Op: "rotate", Nth: 3, At: 1 + rng.Intn(3)}
		}
		sc.SyncFails = append(sc.SyncFails, sf)
	}
	return sc
}

// genNetFails extends a script with replication-message drops (replica
// mode only, so plain runs keep their historical schedules): most seeds
// get one or two early-to-mid drops, exercising the quorum repair path
// and the async lag/heal path.
func genNetFails(sc *Script, rng *rand.Rand) {
	if rng.Intn(3) == 0 { // 1/3 of seeds: the link itself never glitches
		return
	}
	n := 1 + rng.Intn(2)
	for i := 0; i < n; i++ {
		sc.NetFails = append(sc.NetFails, NetFail{At: 2 + rng.Intn(60)})
	}
}
