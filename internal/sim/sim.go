// Package sim is a FoundationDB-style deterministic simulation harness
// for the real internal/server stack: one logical scheduler (the
// harness goroutine) drives a seeded workload of session creates,
// keyed operation batches, parks, restarts, process kills, power cuts,
// and scripted storage faults against a server wired to a virtual
// clock (vclock.Manual), an in-memory durability-modeling filesystem
// (faultfs.MemFS), and a seeded PRNG. Nothing in the run reads the
// wall clock, the goroutine scheduler, or a map's iteration order, so
// a run's JSONL trace — every action, every acknowledgement hash,
// every recovery outcome — is a pure function of (seed, script) and
// replays byte for byte.
//
// Determinism is not an end in itself: the harness checks the
// session/durability protocol's invariants continuously —
//
//   - exactly-once acks: a retried idempotency key returns the
//     original acknowledgement, byte-identical, never a double apply;
//   - no acked op lost: after any kill or power cut, every batch the
//     client saw acknowledged is recovered (always under SyncAlways;
//     as a durable prefix under the relaxed policies, where only an
//     un-group-committed suffix may be lost to a power cut);
//   - byte-identical restore: park→restore and crash→recover
//     reproduce session state exactly (δ-determinism end to end);
//   - resume monotonicity: Last-Event-ID resume yields strictly
//     sequential event ids and a stable event log across restores
//
// — and any violation reports the seed that reproduces it.
package sim

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/domain"
	"repro/internal/dpm"
	"repro/internal/faultfs"
	"repro/internal/replica"
	"repro/internal/server"
	"repro/internal/vclock"
	"repro/internal/wal"
)

// dataDir is the leader's (and, by mirror, the follower's) data
// directory on their respective in-memory filesystems.
const dataDir = "data"

// Config parameterizes one simulation run.
type Config struct {
	// Seed drives the workload schedule (and the fault script, when
	// Script is nil).
	Seed int64
	// Steps is the number of workload actions; 0 means DefaultSteps.
	Steps int
	// Shards is the server shard count; 0 means 2.
	Shards int
	// Policy is the WAL durability discipline under test.
	Policy wal.SyncPolicy
	// Script overrides the seed-derived fault plan.
	Script *Script
	// MaxSessions bounds concurrently tracked sessions; 0 means 3.
	MaxSessions int
	// SegmentBytes is the WAL rotation threshold; small values force
	// rotations into the schedule. 0 means 4096.
	SegmentBytes int64
	// Replica runs the whole schedule against a two-node pair: a warm
	// standby (internal/replica Follower on its own MemFS) tails the
	// leader's WALs through a fault-injectable link, and the schedule
	// gains follower crashes, message drops, partitions, failovers, and
	// rolling restarts.
	Replica bool
	// Quorum selects the replication ack mode under Replica: true gates
	// every ack on the follower fsync (zero acked-op loss across
	// failover); false is async shipping (prefix-closed loss while
	// lagged). Quorum requires Policy == SyncAlways, the same constraint
	// adpmd enforces for -repl-ack quorum.
	Quorum bool
}

// DefaultSteps is the workload length when Config.Steps is 0.
const DefaultSteps = 300

// Result is one run's outcome.
type Result struct {
	Seed   int64   `json:"seed"`
	Policy string  `json:"policy"`
	Steps  int     `json:"steps"`
	Script *Script `json:"script"`
	// Digest is the SHA-256 of the trace: the whole run, one hash.
	Digest string `json:"digest"`
	// Trace is the run's JSONL action log.
	Trace []byte `json:"-"`
	// Violations are invariant failures; empty means the run passed.
	Violations []string `json:"violations,omitempty"`

	// Schedule accounting (what the seed actually exercised).
	Acks      int `json:"acks"`
	Replays   int `json:"replays"`
	Creates   int `json:"creates"`
	Deletes   int `json:"deletes"`
	Parks     int `json:"parks"`
	Restores  int `json:"restores"`
	Restarts  int `json:"restarts"`
	Kills     int `json:"kills"`
	Powercuts int `json:"powercuts"`
	Rotations int `json:"rotations"`
	Faults    int `json:"faults"`
	Rejects   int `json:"rejects"`

	// Replica-mode accounting.
	Failovers       int `json:"failovers,omitempty"`
	Rollings        int `json:"rollings,omitempty"`
	FollowerCrashes int `json:"follower_crashes,omitempty"`
	NetDrops        int `json:"net_drops,omitempty"`
	Partitions      int `json:"partitions,omitempty"`
	ReplChecks      int `json:"repl_checks,omitempty"`
}

// batchStatus tracks what the client knows about one keyed batch.
type batchStatus int

const (
	batchAcked   batchStatus = iota // acknowledgement received and recorded
	batchInDoubt                    // storage error: applied-ness unknown
)

// batchRec is one keyed batch in a session's client-side history.
type batchRec struct {
	key    string
	ops    []dpm.Operation
	status batchStatus
	ack    []byte // canonical ack JSON, nil while in doubt
	// fragile marks a quorum-mode batch whose ack was manufactured by
	// replay during recovery: the record is durably logged on the
	// leader but may never have shipped (the original append's ship
	// failed — that's why it was in doubt). A real client can only be
	// told such an ack while the node reports "catching-up" on
	// /readyz, so its loss across a failover is the operator's
	// documented risk, not a protocol violation. The mark clears the
	// moment there is evidence of shipping: a later quorum ack on the
	// same session, or a verified full catch-up.
	fragile bool
}

// sessModel is the client-side model of one session: the oracle the
// server is checked against.
type sessModel struct {
	id       string
	batches  []*batchRec
	state    []byte   // last observed state JSON (nil before first read)
	events   []string // event log as canonical strings, grown by resume checks
	inDoubt  bool     // some batch is in doubt: state/ack comparisons suspended
	applied  int      // ops applied (budget tracking)
	maxOps   int
	retained bool // still expected to exist on the server
	// deleted marks an explicit client Delete whose tombstone is still
	// being enforced; deletedAtCuts is the power-cut count at delete
	// time — under a relaxed sync policy a later power cut may legally
	// drop the unsynced delete record, so the tombstone check stops at
	// the first cut after the delete.
	deleted       bool
	deletedAtCuts int
	// deleteInDoubt marks a Delete that returned a storage error: the
	// tombstone record may or may not be in the log, so the session may
	// legally be gone or alive at the next recovery.
	deleteInDoubt bool
	// deleteFragile marks a quorum-mode tombstone that resolved by
	// replay (see batchRec.fragile): a failover may legally resurrect
	// the session until the tombstone record is known shipped.
	deleteFragile bool
}

// harness is one run's mutable state.
type harness struct {
	cfg    Config
	rng    *rand.Rand
	clk    *vclock.Manual
	fs     *faultfs.MemFS
	script *Script
	fired  []bool
	occur  map[string]int // cumulative (op,nth) sync-point occurrences

	srv      *server.Server
	sessions []*sessModel // creation order; never reordered
	byID     map[string]*sessModel
	keyN     int
	step     int
	// lossCuts counts the crash boundaries across which acked-op loss
	// was legal (relaxed-policy power cuts, async failovers); delete
	// tombstones are only checkable until the first such boundary after
	// the delete.
	lossCuts int

	// Replica-mode state: the standby's filesystem, the follower and
	// the leader-side replicator over it, and the fault-injectable link.
	standby  *faultfs.MemFS
	fol      *replica.Follower
	rep      *replica.Replicator
	net      *faultfs.NetFault
	netFired []bool
	dropNext int
	// folWarm records, per shard, whether the standby has been observed
	// in sync at least once since the replicator was (re)built. A cold
	// standby — one that never made contact since the last failover —
	// holds the previous epoch's history, and promoting it would be
	// restoring a backup, not failing over; doFailover refuses it the
	// same way an operator's runbook would.
	folWarm []bool

	needsRestart bool
	trace        bytes.Buffer
	res          *Result
}

// Run executes one simulation. The returned error covers harness-level
// failures only (a server that cannot even open); protocol violations
// land in Result.Violations.
func Run(cfg Config) (*Result, error) {
	if cfg.Steps <= 0 {
		cfg.Steps = DefaultSteps
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 2
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = 3
	}
	if cfg.SegmentBytes <= 0 {
		cfg.SegmentBytes = 4096
	}
	h := &harness{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		clk:   vclock.NewManual(),
		fs:    faultfs.NewMemFS(),
		occur: map[string]int{},
		byID:  map[string]*sessModel{},
		res:   &Result{Seed: cfg.Seed, Policy: cfg.Policy.String(), Steps: cfg.Steps},
	}
	if cfg.Replica && cfg.Quorum && cfg.Policy != wal.SyncAlways {
		return nil, fmt.Errorf("sim: quorum replication requires fsync=always (the ack contract assumes a durable leader log)")
	}
	h.script = cfg.Script
	if h.script == nil {
		h.script = genScript(h.rng)
		if cfg.Replica {
			genNetFails(h.script, h.rng)
		}
	}
	h.fired = make([]bool, len(h.script.SyncFails))
	h.netFired = make([]bool, len(h.script.NetFails))
	h.res.Script = h.script

	if err := h.open(); err != nil {
		return nil, fmt.Errorf("sim: initial open: %w", err)
	}
	for h.step = 0; h.step < cfg.Steps; h.step++ {
		if len(h.res.Violations) >= 8 {
			break // enough evidence; stop accumulating duplicates
		}
		if h.needsRestart {
			h.needsRestart = false
			if h.cfg.Replica && h.net != nil && h.net.Partitioned() && h.rng.Intn(3) == 0 {
				// A partitioned quorum pair fails every append, and the
				// resulting restart loop would otherwise never reach the
				// partition-toggle action again: ops crews notice a node
				// that restarts into immediate unreadiness, so the link
				// eventually comes back here too.
				h.net.SetPartitioned(false)
				h.emit(map[string]any{"action": "partition", "cut": false})
			}
			h.doKillRestart()
			continue
		}
		h.stepOnce()
	}
	h.collectStats()
	h.srv.Drain()
	h.res.Trace = append([]byte(nil), h.trace.Bytes()...)
	sum := sha256.Sum256(h.res.Trace)
	h.res.Digest = hex.EncodeToString(sum[:])
	return h.res, nil
}

// open starts a server process incarnation over the shared MemFS and
// virtual clock, with a fresh fault wrapper feeding the cumulative
// sync-point counters.
func (h *harness) open() error {
	fault := &faultfs.Fault{Inner: h.fs, OnOpSync: h.onOpSync}
	opts := server.Options{
		Shards:       h.cfg.Shards,
		MailboxSize:  16,
		MaxOps:       512,
		IdleTimeout:  time.Minute,
		DataDir:      dataDir,
		Fsync:        h.cfg.Policy,
		SegmentBytes: h.cfg.SegmentBytes,
		FS:           fault,
		Clock:        h.clk,
		IdemCap:      -1, // exactly-once checks must never hit ack eviction
	}
	if h.cfg.Replica {
		if err := h.ensureRepl(); err != nil {
			return err
		}
		opts.Repl = h.rep
		opts.ReplStatus = h.replStatus
	}
	srv, err := server.Open(opts)
	if err != nil {
		return err
	}
	h.srv = srv
	return nil
}

// onOpSync injects the scripted sync failures, counting (op, nth)
// sync-point occurrences cumulatively across process incarnations.
func (h *harness) onOpSync(op string, nth int, name string) error {
	k := fmt.Sprintf("%s/%d", op, nth)
	h.occur[k]++
	c := h.occur[k]
	for i, sf := range h.script.SyncFails {
		if !h.fired[i] && sf.Op == op && sf.Nth == nth && sf.At == c {
			h.fired[i] = true
			h.res.Faults++
			h.emit(map[string]any{"action": "fault", "op": op, "nth": nth, "at": c})
			return faultfs.ErrInjected
		}
	}
	return nil
}

// emit appends one JSONL trace line, stamping step and virtual time.
func (h *harness) emit(fields map[string]any) {
	fields["step"] = h.step
	fields["vms"] = h.clk.Now().Sub(vclock.Epoch).Milliseconds()
	b, err := json.Marshal(fields)
	if err != nil {
		panic(fmt.Sprintf("sim: unencodable trace line: %v", err))
	}
	h.trace.Write(b)
	h.trace.WriteByte('\n')
}

// violate records one invariant failure, in the trace and the result.
func (h *harness) violate(format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	h.res.Violations = append(h.res.Violations, fmt.Sprintf("step %d: %s", h.step, msg))
	h.emit(map[string]any{"action": "violation", "detail": msg})
}

func shortHash(b []byte) string {
	s := sha256.Sum256(b)
	return hex.EncodeToString(s[:8])
}

// live returns the tracked sessions still expected on the server.
func (h *harness) live() []*sessModel {
	var out []*sessModel
	for _, sm := range h.sessions {
		if sm.retained {
			out = append(out, sm)
		}
	}
	return out
}

// stepOnce picks and executes one workload action.
func (h *harness) stepOnce() {
	// Small virtual-time drift between actions so timestamps order the
	// trace and idle timeouts are reachable by the park action alone.
	h.clk.Advance(time.Duration(1+h.rng.Intn(50)) * time.Millisecond)

	if h.cfg.Replica {
		h.stepReplica()
		return
	}
	n := len(h.live())
	w := h.rng.Intn(100)
	switch {
	case n == 0 || (w < 10 && n < h.cfg.MaxSessions):
		h.doCreate()
	case w < 55:
		h.doApply()
	case w < 63:
		h.doStateCheck()
	case w < 70:
		h.doRetryAcked()
	case w < 77:
		h.doResumeCheck()
	case w < 84:
		h.doParkRestore()
	case w < 88:
		h.doSyncWALs()
	case w < 91:
		h.doDelete()
	case w < 94:
		h.doGracefulRestart()
	case w < 97:
		h.doKillRestart()
	default:
		h.doPowercut()
	}
}

func (h *harness) pick() *sessModel {
	live := h.live()
	if len(live) == 0 {
		return nil
	}
	return live[h.rng.Intn(len(live))]
}

// ---- workload actions ----

func (h *harness) doCreate() {
	resp, err := h.srv.CreateSession(server.CreateSpec{
		Name:   "simplified",
		Mode:   dpm.ADPM,
		MaxOps: 512,
	})
	if err != nil {
		h.emit(map[string]any{"action": "create", "status": errClass(err)})
		if errors.Is(err, server.ErrStorage) {
			h.needsRestart = true
			return
		}
		h.violate("create failed unexpectedly: %v", err)
		return
	}
	if old := h.byID[resp.ID]; old != nil {
		// The server re-issued an id. Legal only when a lossy boundary
		// could have taken the id high-water with it — a power cut under
		// a relaxed sync policy, or an async failover that lost the
		// create's suffix; under SyncAlways with no lossy boundary so
		// far, every create/snapshot carrying the counter is durable
		// before acknowledgement, so reuse means the high-water recovery
		// is broken (e.g. compaction erased a deleted id).
		if h.cfg.Policy == wal.SyncAlways && h.lossCuts == 0 {
			h.violate("session id %s re-issued under SyncAlways", resp.ID)
		}
		h.purgeID(resp.ID)
	}
	sm := &sessModel{id: resp.ID, maxOps: resp.MaxOps, retained: true}
	h.sessions = append(h.sessions, sm)
	h.byID[resp.ID] = sm
	h.res.Creates++
	h.emit(map[string]any{"action": "create", "sess": resp.ID, "status": "ok"})
	h.refreshState(sm)
}

// randBatch builds 1-3 valid synthesis ops on the simplified scenario.
func (h *harness) randBatch() []dpm.Operation {
	n := 1 + h.rng.Intn(3)
	ops := make([]dpm.Operation, n)
	for i := range ops {
		var problem, prop string
		var lo, hi float64
		switch h.rng.Intn(4) {
		case 0:
			problem, prop, lo, hi = "AmpDesign", "Width", 0.5, 10
		case 1:
			problem, prop, lo, hi = "AmpDesign", "Ind", 0.05, 2
		case 2:
			problem, prop, lo, hi = "AmpDesign", "Bias", 0.5, 20
		default:
			problem, prop, lo, hi = "FilterPart", "Beam_len", 5, 30
		}
		v := lo + h.rng.Float64()*(hi-lo)
		ops[i] = dpm.Operation{
			Kind:        dpm.OpSynthesis,
			Problem:     problem,
			Designer:    "sim",
			Assignments: []dpm.Assignment{{Prop: prop, Value: domain.Real(v)}},
		}
	}
	return ops
}

func (h *harness) doApply() {
	sm := h.pick()
	if sm == nil {
		return
	}
	if sm.applied+3 >= sm.maxOps {
		return // stay clear of the budget edge; ErrBudget is not under test
	}
	ops := h.randBatch()
	h.keyN++
	key := fmt.Sprintf("k%d", h.keyN)
	resp, replayed, err := h.srv.ApplyKeyed(sm.id, key, ops)
	switch {
	case err == nil:
		if replayed {
			h.violate("fresh key %s came back replayed", key)
		}
		ack := mustJSON(resp)
		sm.batches = append(sm.batches, &batchRec{key: key, ops: ops, status: batchAcked, ack: ack})
		sm.applied += len(ops)
		if h.cfg.Replica && h.cfg.Quorum {
			// A quorum ack means this record shipped, and the follower
			// only accepts exactly-contiguous appends — so everything
			// earlier in the shard log is mirrored too, including any
			// fragile batches of this session.
			for _, p := range sm.batches {
				p.fragile = false
			}
		}
		h.res.Acks++
		h.emit(map[string]any{"action": "apply", "sess": sm.id, "key": key, "n": len(ops), "status": "ok", "ack": shortHash(ack)})
		h.refreshState(sm)
	case errors.Is(err, server.ErrStorage):
		// In doubt: the record may or may not have reached the log.
		sm.batches = append(sm.batches, &batchRec{key: key, ops: ops, status: batchInDoubt})
		sm.inDoubt = true
		h.needsRestart = true
		h.emit(map[string]any{"action": "apply", "sess": sm.id, "key": key, "status": "storage"})
	case errors.Is(err, server.ErrInvalid), errors.Is(err, server.ErrBudget):
		h.res.Rejects++
		h.emit(map[string]any{"action": "apply", "sess": sm.id, "key": key, "status": errClass(err)})
	default:
		h.violate("apply %s: unexpected error %v", key, err)
	}
}

// doStateCheck re-reads a session's state: it must be byte-identical to
// the last observation (no mutation happened in between — reads are
// reads).
func (h *harness) doStateCheck() {
	sm := h.pick()
	if sm == nil {
		return
	}
	st, err := h.srv.State(sm.id)
	if err != nil {
		h.violate("state %s: %v", sm.id, err)
		return
	}
	cur := mustJSON(st)
	if sm.state != nil && !bytes.Equal(cur, sm.state) {
		h.violate("state %s changed between mutations", sm.id)
	}
	sm.state = cur
	h.emit(map[string]any{"action": "state", "sess": sm.id, "sha": shortHash(cur)})
}

// doRetryAcked replays a random acknowledged key: exactly-once demands
// replayed=true and the byte-original ack.
func (h *harness) doRetryAcked() {
	sm := h.pick()
	if sm == nil || len(sm.batches) == 0 {
		return
	}
	b := sm.batches[h.rng.Intn(len(sm.batches))]
	if b.status != batchAcked {
		return
	}
	resp, replayed, err := h.srv.ApplyKeyed(sm.id, b.key, b.ops)
	if err != nil {
		if errors.Is(err, server.ErrStorage) {
			// The lookup itself cannot touch storage, but a restore of a
			// parked session on a broken shard can.
			h.needsRestart = true
			h.emit(map[string]any{"action": "retry", "sess": sm.id, "key": b.key, "status": "storage"})
			return
		}
		h.violate("retry %s: %v", b.key, err)
		return
	}
	if !replayed {
		h.violate("retry of acked key %s re-applied (double apply)", b.key)
		return
	}
	if ack := mustJSON(resp); !bytes.Equal(ack, b.ack) {
		h.violate("retry of key %s returned a different ack", b.key)
	}
	h.res.Replays++
	h.emit(map[string]any{"action": "retry", "sess": sm.id, "key": b.key, "status": "replayed"})
}

// doResumeCheck subscribes with a Last-Event-ID and asserts the backlog
// is the strictly sequential suffix of a stable event log.
func (h *harness) doResumeCheck() {
	sm := h.pick()
	if sm == nil {
		return
	}
	after := 0
	if len(sm.events) > 0 {
		after = h.rng.Intn(len(sm.events) + 1)
	}
	sub, err := h.srv.Subscribe(sm.id, server.SubscribeOptions{
		AfterID:  after,
		QueueCap: server.MaxSubscriberQueue,
	})
	if err != nil {
		h.violate("subscribe %s: %v", sm.id, err)
		return
	}
	evs := sub.Next(0)
	sub.Close()
	for i, ev := range evs {
		wantID := after + i + 1
		if ev.ID != wantID {
			h.violate("resume %s after %d: event %d has id %d, want %d", sm.id, after, i, ev.ID, wantID)
			return
		}
		s := ev.Event.String()
		switch {
		case wantID-1 < len(sm.events):
			if sm.events[wantID-1] != s {
				h.violate("resume %s: event %d changed: %q vs %q", sm.id, wantID, s, sm.events[wantID-1])
				return
			}
		case wantID-1 == len(sm.events):
			sm.events = append(sm.events, s)
		default:
			h.violate("resume %s: id %d skipped past known log end %d", sm.id, wantID, len(sm.events))
			return
		}
	}
	h.emit(map[string]any{"action": "resume", "sess": sm.id, "after": after, "got": len(evs)})
}

// doParkRestore advances past the idle timeout, sweeps every session
// into its parked image, then touches each one: restore must be
// byte-identical.
func (h *harness) doParkRestore() {
	h.clk.Advance(2 * time.Minute)
	parked := h.srv.Sweep()
	h.res.Parks += parked
	h.emit(map[string]any{"action": "park", "swept": parked})
	for _, sm := range h.live() {
		st, err := h.srv.State(sm.id)
		if err != nil {
			if errors.Is(err, server.ErrStorage) {
				h.needsRestart = true
				h.emit(map[string]any{"action": "restore", "sess": sm.id, "status": "storage"})
				return
			}
			h.violate("restore %s after park: %v", sm.id, err)
			continue
		}
		h.res.Restores++
		cur := mustJSON(st)
		if sm.state != nil && !bytes.Equal(cur, sm.state) {
			h.violate("park→restore %s not byte-identical", sm.id)
		}
		sm.state = cur
	}
}

func (h *harness) doSyncWALs() {
	err := h.srv.SyncWALs()
	if err != nil {
		h.needsRestart = true
	}
	h.emit(map[string]any{"action": "syncwals", "status": errClass(err)})
}

func (h *harness) doDelete() {
	sm := h.pick()
	if sm == nil {
		return
	}
	if _, err := h.srv.Delete(sm.id); err != nil {
		if errors.Is(err, server.ErrStorage) {
			// The tombstone record may or may not have reached the log:
			// the next recovery resolves the session as legally alive or
			// legally deleted.
			sm.deleteInDoubt = true
			h.needsRestart = true
			h.emit(map[string]any{"action": "delete", "sess": sm.id, "status": "storage"})
			return
		}
		h.violate("delete %s: %v", sm.id, err)
		return
	}
	sm.retained = false
	sm.deleted = true
	sm.deletedAtCuts = h.lossCuts
	h.res.Deletes++
	h.emit(map[string]any{"action": "delete", "sess": sm.id, "status": "ok"})
}

// purgeID retires every model entry tracked under a recycled id: the
// old incarnation's checks no longer describe the session now living
// at that address.
func (h *harness) purgeID(id string) {
	kept := h.sessions[:0]
	for _, sm := range h.sessions {
		if sm.id == id {
			continue
		}
		kept = append(kept, sm)
	}
	h.sessions = kept
	delete(h.byID, id)
}

// collectStats folds the incarnation's gauges into the result before
// the server goes away.
func (h *harness) collectStats() {
	for _, st := range h.srv.Stats().Shards {
		h.res.Rotations += int(st.Rotations)
	}
}

// ---- restarts ----

func (h *harness) doGracefulRestart() {
	h.collectStats()
	h.srv.Drain()
	h.res.Restarts++
	h.emit(map[string]any{"action": "restart"})
	if err := h.open(); err != nil {
		h.violate("reopen after drain: %v", err)
		h.mustReopenBare()
		return
	}
	h.verifyRecovery("restart", false)
}

func (h *harness) doKillRestart() {
	h.collectStats()
	h.srv.Kill()
	h.res.Kills++
	h.emit(map[string]any{"action": "kill"})
	if err := h.open(); err != nil {
		h.violate("reopen after kill: %v", err)
		h.mustReopenBare()
		return
	}
	h.verifyRecovery("restart", false)
}

// cutLossOK reports whether a power cut may legally lose acked state
// under the run's sync policy.
func (h *harness) cutLossOK() bool { return h.cfg.Policy != wal.SyncAlways }

func (h *harness) doPowercut() {
	h.collectStats()
	h.srv.Kill()
	h.fs.Crash()
	h.res.Powercuts++
	if h.cutLossOK() {
		h.lossCuts++
	}
	h.emit(map[string]any{"action": "powercut"})
	if err := h.open(); err != nil {
		h.violate("reopen after powercut: %v", err)
		h.mustReopenBare()
		return
	}
	h.verifyRecovery("powercut", h.cutLossOK())
}

// mustReopenBare is the last-resort recovery when a reopen fails (a
// scripted open-time fault): wipe the data dir's volatile state back to
// durable and retry once; a second failure ends the run via panic — the
// harness cannot continue serverless.
func (h *harness) mustReopenBare() {
	h.fs.Crash()
	if h.cutLossOK() {
		h.lossCuts++
	}
	if err := h.open(); err != nil {
		panic(fmt.Sprintf("sim seed %d: server unrecoverable: %v", h.cfg.Seed, err))
	}
	h.verifyRecovery("powercut", h.cutLossOK())
}

// verifyRecovery checks the recovered server against the client model:
// which sessions survived, which acked batches survived (and in what
// pattern), and whether recovered state is byte-identical. kind names
// the crash boundary for reports; lossOK says whether acked-state loss
// is legal across it — true for a power cut under a relaxed sync
// policy (volatile page cache lost) and for an async-mode failover
// (unshipped lag lost with the leader), false everywhere else: a kill
// keeps the volatile view, SyncAlways makes every ack durable, quorum
// makes every ack shipped, and a rolling handoff drains before
// promoting.
func (h *harness) verifyRecovery(kind string, lossOK bool) {
	for _, sm := range h.live() {
		_, err := h.srv.State(sm.id)
		switch {
		case err == nil:
		case errors.Is(err, server.ErrUnknownSession):
			if sm.deleteInDoubt {
				// The storage-failed Delete did log its tombstone and
				// replay finished the job: legally deleted. Under quorum
				// the tombstone may still be unshipped (the failure was
				// the ship), so a failover may yet resurrect it.
				sm.retained = false
				sm.deleted = true
				sm.deletedAtCuts = h.lossCuts
				sm.deleteInDoubt = false
				sm.deleteFragile = h.cfg.Replica && h.cfg.Quorum
				h.emit(map[string]any{"action": "recover", "sess": sm.id, "status": "deleted"})
				continue
			}
			// The whole session vanished: legal only across a lossy
			// boundary that could have taken the create record.
			if !lossOK {
				h.violate("session %s lost across %s", sm.id, kind)
			}
			sm.retained = false
			h.emit(map[string]any{"action": "recover", "sess": sm.id, "status": "lost"})
			continue
		case errors.Is(err, server.ErrStorage):
			h.needsRestart = true
			h.emit(map[string]any{"action": "recover", "sess": sm.id, "status": "storage"})
			continue
		default:
			h.violate("recover %s: %v", sm.id, err)
			continue
		}
		// The session answered, so a doubt-shrouded delete never made the
		// log: the session legally lives on.
		sm.deleteInDoubt = false

		// Retry every keyed batch in order. Replays mark survivors;
		// fresh applies mark losses, which must form a suffix of the
		// acked history (the WAL is ordered, so durability is
		// prefix-closed). Fragile batches sit outside that contract —
		// their acks were only ever manufactured while catching up — so
		// their losses are tolerated but taint the byte-state compare.
		lostAcked := false
		tainted := false
		unresolved := false
		resolved := sm.batches[:0]
		for _, b := range sm.batches {
			resp, replayed, err := h.srv.ApplyKeyed(sm.id, b.key, b.ops)
			if err != nil {
				if b.status == batchInDoubt && (errors.Is(err, server.ErrInvalid) || errors.Is(err, server.ErrBudget)) {
					// Never applied, and by now legitimately unappliable;
					// drop it from the history.
					continue
				}
				if errors.Is(err, server.ErrStorage) {
					// Recovery tripped another scripted fault; keep the
					// batch for the next recovery round.
					if b.fragile || b.status == batchInDoubt {
						tainted = true
					}
					unresolved = true
					resolved = append(resolved, b)
					h.needsRestart = true
					continue
				}
				h.violate("recovery retry %s: %v", b.key, err)
				continue
			}
			ack := mustJSON(resp)
			if replayed {
				switch {
				case b.status == batchAcked:
					if !b.fragile && lostAcked {
						h.violate("batch %s survived after an earlier acked batch was lost (durability not prefix-closed)", b.key)
					}
					if !sm.inDoubt && !b.fragile && !bytes.Equal(ack, b.ack) {
						h.violate("recovered ack for %s differs from the original", b.key)
					}
				case h.cfg.Replica && h.cfg.Quorum:
					// In doubt, resolved by replay: durably logged here,
					// but the original append's ship is exactly what
					// failed, so the mirror may lack it until the next
					// evidence of shipping.
					b.fragile = true
				}
			} else {
				if b.status == batchAcked {
					if b.fragile {
						tainted = true
					} else {
						if !lossOK {
							h.violate("acked batch %s lost across %s", b.key, kind)
						}
						lostAcked = true
						if !sm.inDoubt && !bytes.Equal(ack, b.ack) {
							h.violate("re-applied batch %s produced a different ack (δ not deterministic?)", b.key)
						}
					}
				}
				if h.cfg.Replica && h.cfg.Quorum {
					// This fresh apply just earned a quorum ack, which
					// ships the record and everything before it.
					b.fragile = false
					for _, p := range resolved {
						p.fragile = false
					}
				}
			}
			b.status = batchAcked
			b.ack = ack
			resolved = append(resolved, b)
		}
		sm.batches = resolved

		// With every batch settled, state must be reproducible. An
		// in-doubt batch may have re-entered the history at a different
		// position than the original timeline, and a lost or unresolved
		// fragile batch legitimately changes the fold, so only clean
		// sessions compare against the pre-crash bytes.
		st, err := h.srv.State(sm.id)
		if err != nil {
			h.violate("state %s after recovery: %v", sm.id, err)
			continue
		}
		cur := mustJSON(st)
		if !sm.inDoubt && !lostAcked && !tainted && sm.state != nil && !bytes.Equal(cur, sm.state) {
			h.violate("state %s after %s not byte-identical", sm.id, kind)
		}
		sm.state = cur
		if unresolved {
			// A kept batch's record may still fold in at the next
			// recovery (it was logged; only this round's re-check
			// failed), so this fold is no baseline.
			sm.state = nil
		}
		sm.inDoubt = false
		// The event log is regenerated by replay; known prefixes are
		// re-verified lazily by the next resume check. After a lossy
		// recovery the log may legitimately be shorter.
		if lostAcked || tainted {
			sm.events = nil
		}
		h.emit(map[string]any{"action": "recover", "sess": sm.id, "status": "ok", "sha": shortHash(cur)})
	}
	// Deleted sessions must stay deleted: the delete is acknowledged, so
	// its tombstone is subject to the same durability contract as any
	// other acked record.
	for _, sm := range h.sessions {
		if sm.retained || !sm.deleted {
			continue
		}
		if h.lossCuts > sm.deletedAtCuts {
			// A lossy boundary after the delete (relaxed-fsync power cut,
			// async failover) may have taken the delete record with it —
			// resurrection is legal from here on, so the tombstone is no
			// longer checkable.
			sm.deleted = false
			continue
		}
		if _, err := h.srv.State(sm.id); !errors.Is(err, server.ErrUnknownSession) {
			if sm.deleteFragile {
				// The tombstone never provably shipped, and a promotion
				// restored the mirror from before it: the session is
				// legally alive again, but this model entry no longer
				// describes it — forget it.
				sm.deleted = false
				continue
			}
			h.violate("deleted session %s resurrected across %s (err=%v)", sm.id, kind, err)
			sm.deleted = false // report once, not at every later restart
		}
	}
}

// refreshState re-reads and caches a session's canonical state bytes.
func (h *harness) refreshState(sm *sessModel) {
	st, err := h.srv.State(sm.id)
	if err != nil {
		if errors.Is(err, server.ErrStorage) {
			h.needsRestart = true
			return
		}
		h.violate("state %s: %v", sm.id, err)
		return
	}
	sm.state = mustJSON(st)
}

func errClass(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, server.ErrStorage):
		return "storage"
	case errors.Is(err, server.ErrInvalid):
		return "invalid"
	case errors.Is(err, server.ErrBudget):
		return "budget"
	case errors.Is(err, server.ErrUnknownSession):
		return "unknown"
	default:
		return "error"
	}
}

func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("sim: unencodable value: %v", err))
	}
	return b
}

// ReplayCheck runs the same configuration twice and reports whether the
// two traces (and digests) are byte-identical — the determinism
// contract itself, callable from tests and the CLI.
func ReplayCheck(cfg Config) (*Result, *Result, error) {
	a, err := Run(cfg)
	if err != nil {
		return nil, nil, err
	}
	b, err := Run(cfg)
	if err != nil {
		return a, nil, err
	}
	return a, b, nil
}
