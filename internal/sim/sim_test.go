package sim

import (
	"bytes"
	"testing"

	"repro/internal/wal"
)

// TestSameSeedIdenticalRuns is the determinism contract: two runs from
// the same (seed, script) produce byte-identical traces, the same
// digest, and the same violation list. This is what makes "adpmsim
// -seed N" a complete bug report.
func TestSameSeedIdenticalRuns(t *testing.T) {
	for _, policy := range []wal.SyncPolicy{wal.SyncAlways, wal.SyncInterval} {
		for seed := int64(1); seed <= 4; seed++ {
			a, b, err := ReplayCheck(Config{Seed: seed, Steps: 150, Policy: policy})
			if err != nil {
				t.Fatalf("policy %v seed %d: %v", policy, seed, err)
			}
			if a.Digest != b.Digest {
				t.Errorf("policy %v seed %d: digests differ: %s vs %s", policy, seed, a.Digest, b.Digest)
			}
			if !bytes.Equal(a.Trace, b.Trace) {
				t.Errorf("policy %v seed %d: traces differ (%d vs %d bytes)", policy, seed, len(a.Trace), len(b.Trace))
			}
			if len(a.Violations) != 0 {
				t.Errorf("policy %v seed %d: violations: %v", policy, seed, a.Violations)
			}
		}
	}
}

// TestScriptedFaultDeterminism: an explicit fault script is part of the
// replay key — the same script fires at the same trace position both
// times, and the fail-stop recovery that follows is identical.
func TestScriptedFaultDeterminism(t *testing.T) {
	sc := &Script{SyncFails: []SyncFail{
		{Op: "append", Nth: 1, At: 5},
		{Op: "rotate", Nth: 3, At: 1},
	}}
	a, b, err := ReplayCheck(Config{Seed: 99, Steps: 200, Policy: wal.SyncAlways, Script: sc, SegmentBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest != b.Digest {
		t.Fatalf("scripted runs diverged: %s vs %s", a.Digest, b.Digest)
	}
	if len(a.Violations) != 0 {
		t.Fatalf("violations under scripted faults: %v", a.Violations)
	}
	if a.Faults == 0 {
		t.Fatalf("script never fired (faults=0); sync-point addressing broken?")
	}
}

// TestSimExercisesProtocol: sanity-check that the default schedule
// actually reaches the interesting machinery — crashes, power cuts,
// parks, replays — rather than vacuously passing on a quiet workload.
func TestSimExercisesProtocol(t *testing.T) {
	var acks, replays, parks, kills, cuts, restarts int
	for seed := int64(10); seed < 18; seed++ {
		r, err := Run(Config{Seed: seed, Steps: 200, Policy: wal.SyncAlways})
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Violations) != 0 {
			t.Errorf("seed %d: %v", seed, r.Violations)
		}
		acks += r.Acks
		replays += r.Replays
		parks += r.Parks
		kills += r.Kills
		cuts += r.Powercuts
		restarts += r.Restarts
	}
	if acks == 0 || replays == 0 || parks == 0 || kills == 0 || cuts == 0 || restarts == 0 {
		t.Fatalf("schedule left protocol surface untouched: acks=%d replays=%d parks=%d kills=%d powercuts=%d restarts=%d",
			acks, replays, parks, kills, cuts, restarts)
	}
}
