package solver

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/constraint"
	"repro/internal/dddl"
	"repro/internal/domain"
	"repro/internal/expr"
	"repro/internal/interval"
)

// OptResult reports a constrained minimization outcome.
type OptResult struct {
	// Feasible is true when at least one satisfying point was found.
	Feasible bool
	// Objective is the best (smallest) objective value found.
	Objective float64
	// Witness is the best assignment found.
	Witness map[string]float64
	// Nodes and Evaluations account for the search effort.
	Nodes       int
	Evaluations int64
	// Exhausted is true when the node cap stopped the search; the
	// result is then the best found so far, not a proven optimum.
	Exhausted bool
}

// Minimize searches for an assignment of the target properties that
// satisfies every constraint and minimizes the objective expression,
// using interval branch-and-bound: boxes whose objective lower bound
// cannot beat the incumbent are pruned; candidate points tighten the
// incumbent. Design is "a search process in a design space restricted
// by constraints" (paper §1) — Minimize explores that space for the
// best corner instead of the first feasible one.
func Minimize(net *constraint.Network, objective string, opts Options) (*OptResult, error) {
	objNode, err := expr.Parse(objective)
	if err != nil {
		return nil, fmt.Errorf("solver: objective: %w", err)
	}
	if opts.MaxNodes <= 0 {
		opts.MaxNodes = 100000
	}
	if opts.Precision <= 0 {
		opts.Precision = 1e-4
	}

	work := net.Clone()
	targets, err := pickTargets(work, opts.Targets)
	if err != nil {
		return nil, err
	}
	for _, v := range expr.Vars(objNode) {
		if work.Property(v) == nil {
			return nil, fmt.Errorf("solver: objective references unknown property %q", v)
		}
	}

	o := &optimizer{
		opts:    opts,
		targets: targets,
		obj:     objNode,
		best:    math.Inf(1),
	}
	res := &OptResult{}
	startEvals := work.EvalCount()
	o.explore(work, res)
	res.Evaluations = work.EvalCount() - startEvals
	res.Feasible = o.witness != nil
	res.Objective = o.best
	res.Witness = o.witness
	res.Exhausted = o.exhausted
	return res, nil
}

// MinimizeScenario minimizes an objective over a scenario's design
// variables (derived properties are completed from their formulas).
func MinimizeScenario(scn *dddl.Scenario, objective string, opts Options) (*OptResult, error) {
	net, err := scn.BuildNetwork()
	if err != nil {
		return nil, err
	}
	if opts.Targets == nil {
		derived := map[string]bool{}
		for _, p := range scn.Properties {
			if p.IsDerived() {
				derived[p.Name] = true
			}
		}
		for _, prob := range scn.Problems {
			for _, out := range prob.Outputs {
				if !derived[out] {
					opts.Targets = append(opts.Targets, out)
				}
			}
		}
		sort.Strings(opts.Targets)
	}
	if opts.Complete == nil {
		order := scn.DerivedOrder()
		opts.Complete = func(net *constraint.Network) error {
			for _, pd := range order {
				node, err := expr.Parse(pd.Formula)
				if err != nil {
					return err
				}
				v, err := expr.Eval(node, net)
				if err != nil {
					return err
				}
				if err := net.BindReal(pd.Name, v); err != nil {
					return err
				}
			}
			return nil
		}
	}
	// Expand derived-property references through their defining
	// formulas so branching and probing see the objective's true
	// sensitivity to the design variables.
	objNode, err := expr.Parse(objective)
	if err != nil {
		return nil, fmt.Errorf("solver: objective: %w", err)
	}
	order := scn.DerivedOrder()
	for i := len(order) - 1; i >= 0; i-- {
		formula, err := expr.Parse(order[i].Formula)
		if err != nil {
			return nil, err
		}
		objNode = expr.Substitute(objNode, map[string]expr.Node{order[i].Name: formula})
	}
	return Minimize(net, objNode.String(), opts)
}

type optimizer struct {
	opts      Options
	targets   []string
	obj       expr.Node
	best      float64
	witness   map[string]float64
	exhausted bool
}

func (o *optimizer) explore(net *constraint.Network, res *OptResult) {
	res.Nodes++
	if res.Nodes > o.opts.MaxNodes {
		o.exhausted = true
		return
	}

	pr := net.Propagate(o.opts.PropOpts)
	if len(pr.Violated) > 0 {
		return
	}
	for _, t := range o.targets {
		if net.Property(t).Feasible().IsEmpty() {
			return
		}
	}

	// Bound: prune boxes that cannot beat the incumbent.
	lb := expr.EvalInterval(o.obj, net)
	if lb.IsEmpty() || lb.Lo >= o.best-1e-12 {
		return
	}

	// Probe: a greedy objective-guided dive, then a feasibility-first
	// midpoint dive (the greedy dive often lands outside the feasible
	// region when the optimum sits on a constraint boundary).
	if !o.probe(net, true) {
		o.probe(net, false)
	}

	// Branch on the variable the objective is most sensitive to: widest
	// relative domain among objective variables first, then any target.
	branch := o.chooseBranch(net)
	if branch == "" {
		return // box decided; the probe has scored it
	}

	p := net.Property(branch)
	if reals := p.Feasible().Reals(); reals != nil {
		for _, v := range middleOut(reals) {
			snap := net.Snapshot()
			if err := net.BindReal(branch, v); err != nil {
				return
			}
			o.explore(net, res)
			restoreKeepEvals(net, snap)
			if o.exhausted {
				return
			}
		}
		return
	}
	iv, _ := p.Feasible().Interval()
	mid := iv.Mid()
	halves := []interval.Interval{
		interval.New(iv.Lo, mid),
		interval.New(mid, iv.Hi),
	}
	// Explore the half with the smaller objective lower bound first.
	lo0 := o.objLowerBoundWith(net, branch, halves[0])
	lo1 := o.objLowerBoundWith(net, branch, halves[1])
	if lo1 < lo0 {
		halves[0], halves[1] = halves[1], halves[0]
	}
	for _, h := range halves {
		snap := net.Snapshot()
		p.SetFeasible(domain.FromInterval(h))
		o.explore(net, res)
		restoreKeepEvals(net, snap)
		if o.exhausted {
			return
		}
	}
}

func (o *optimizer) objLowerBoundWith(net *constraint.Network, prop string, iv interval.Interval) float64 {
	p := net.Property(prop)
	saved := p.Feasible()
	p.SetFeasible(domain.FromInterval(iv))
	lb := expr.EvalInterval(o.obj, net)
	p.SetFeasible(saved)
	if lb.IsEmpty() {
		return math.Inf(1)
	}
	return lb.Lo
}

func (o *optimizer) chooseBranch(net *constraint.Network) string {
	objVars := map[string]bool{}
	for _, v := range expr.Vars(o.obj) {
		objVars[v] = true
	}
	best, width := "", 0.0
	bestObj, widthObj := "", 0.0
	for _, t := range o.targets {
		p := net.Property(t)
		if p.IsBound() {
			continue
		}
		rel := p.Feasible().RelativeSize(p.Init)
		if reals := p.Feasible().Reals(); reals != nil {
			if len(reals) <= 1 {
				continue
			}
		} else if rel <= o.opts.Precision {
			continue
		}
		if rel > width {
			best, width = t, rel
		}
		if objVars[t] && rel > widthObj {
			bestObj, widthObj = t, rel
		}
	}
	if bestObj != "" {
		return bestObj
	}
	return best
}

// probe dives to a candidate point and updates the incumbent when the
// point is feasible and better, reporting whether a feasible point was
// reached. With greedy set, each variable is bound at the end of its
// domain the objective prefers; otherwise midpoints.
func (o *optimizer) probe(net *constraint.Network, greedy bool) bool {
	snap := net.Snapshot()
	defer restoreKeepEvals(net, snap)

	point := map[string]float64{}
	order := append([]string(nil), o.targets...)
	sort.SliceStable(order, func(i, j int) bool {
		pi, pj := net.Property(order[i]), net.Property(order[j])
		return pi.Feasible().RelativeSize(pi.Init) < pj.Feasible().RelativeSize(pj.Init)
	})
	for _, t := range order {
		p := net.Property(t)
		if v, ok := p.Value(); ok {
			point[t] = v.Num()
			continue
		}
		// Toward the objective's preferred end: bind the bottom of the
		// domain when the objective increases in t, top when it
		// decreases, midpoint when unknown or in feasibility-first mode.
		dom := p.Feasible()
		sign := 0
		if greedy {
			sign = expr.MonotoneSign(o.obj, t, net)
		}
		var cand float64
		switch sign {
		case +1:
			if v, ok := dom.Min(); ok {
				cand = v
			}
		case -1:
			if v, ok := dom.Max(); ok {
				cand = v
			}
		default:
			m, ok := dom.Mid()
			if !ok {
				return false
			}
			cand = m
		}
		if err := net.BindReal(t, cand); err != nil {
			return false
		}
		point[t] = cand
		if pr := net.Propagate(o.opts.PropOpts); len(pr.Violated) > 0 {
			return false
		}
	}
	if o.opts.Complete != nil {
		if err := o.opts.Complete(net); err != nil {
			return false
		}
	}
	for _, c := range net.Constraints() {
		holds, known := c.HoldsAt(net)
		if known && !holds {
			return false
		}
		if !known && c.StatusOver(net) != constraint.Satisfied {
			return false
		}
	}
	obj, err := expr.Eval(o.obj, net)
	if err != nil || math.IsNaN(obj) {
		return false
	}
	if obj < o.best {
		o.best = obj
		o.witness = point
	}
	return true
}
