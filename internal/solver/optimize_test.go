package solver

import (
	"math"
	"testing"

	"repro/internal/scenario"
)

func TestMinimizeLinear(t *testing.T) {
	// min x + y  s.t.  x + y >= 8, x <= 4, domains [0,10]: optimum 8.
	net := buildNet(t,
		map[string][2]float64{"x": {0, 10}, "y": {0, 10}},
		map[string]string{
			"sum":  "x + y >= 8",
			"xmax": "x <= 4",
		})
	res, err := Minimize(net, "x + y", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("reported infeasible")
	}
	if math.Abs(res.Objective-8) > 0.05 {
		t.Errorf("objective = %v, want ≈8", res.Objective)
	}
	if v := CheckWitness(net, res.Witness); v != nil {
		t.Errorf("witness violates %v", v)
	}
}

func TestMinimizeNonlinear(t *testing.T) {
	// min x² + y²  s.t.  x + y >= 4: optimum at x=y=2, objective 8.
	net := buildNet(t,
		map[string][2]float64{"x": {0, 10}, "y": {0, 10}},
		map[string]string{"sum": "x + y >= 4"})
	res, err := Minimize(net, "sqr(x) + sqr(y)", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("reported infeasible")
	}
	if res.Objective < 7.9 || res.Objective > 8.6 {
		t.Errorf("objective = %v, want ≈8", res.Objective)
	}
}

func TestMinimizeInfeasible(t *testing.T) {
	net := buildNet(t,
		map[string][2]float64{"x": {0, 10}},
		map[string]string{"lo": "x >= 8", "hi": "x <= 2"})
	res, err := Minimize(net, "x", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		t.Errorf("infeasible system produced witness %v", res.Witness)
	}
}

func TestMinimizeObjectiveValidation(t *testing.T) {
	net := buildNet(t, map[string][2]float64{"x": {0, 1}}, nil)
	if _, err := Minimize(net, "x +", Options{}); err == nil {
		t.Error("malformed objective accepted")
	}
	if _, err := Minimize(net, "q", Options{}); err == nil {
		t.Error("unknown objective variable accepted")
	}
}

func TestMinimizeScenarioPower(t *testing.T) {
	// Minimize the receiver's total power while meeting every spec: the
	// optimum must be feasible and clearly below the satisfiability
	// witness's slack-laden power.
	sat, err := SolveScenario(scenario.Receiver(), Options{})
	if err != nil || !sat.Satisfiable {
		t.Fatalf("satisfiability baseline failed: %v", err)
	}
	res, err := MinimizeScenario(scenario.Receiver(), "System_power", Options{MaxNodes: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("optimizer found no feasible point")
	}
	full := fullAssignment(t, scenario.Receiver(), res.Witness)
	net, _ := scenario.Receiver().BuildNetwork()
	if v := CheckWitness(net, full); v != nil {
		t.Errorf("optimized witness violates %v", v)
	}
	if full["System_power"] > 200 {
		t.Errorf("optimized power %v exceeds the budget", full["System_power"])
	}
	// The paper's specs leave lots of power headroom; the optimizer
	// lands near the true optimum of ≈59 mW, far below the 200 mW
	// budget.
	if res.Objective > 80 {
		t.Errorf("optimized power %v not meaningfully minimized", res.Objective)
	}
}

func TestMinimizeMaximizeViaNegation(t *testing.T) {
	// Maximize the simplified case's system gain by minimizing its
	// negation; verify the optimizer pushes toward the gain ceiling.
	res, err := MinimizeScenario(scenario.Simplified(), "0 - System_gain", Options{MaxNodes: 3000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("no feasible point")
	}
	gain := -res.Objective
	// Power cap 100 limits Bias (9B + 2W <= 100); with W=10, B<=8.9:
	// gain = 30·10·2·√8.9 ≈ 1790 max. Expect to get reasonably high.
	if gain < 800 {
		t.Errorf("maximized gain %v suspiciously low", gain)
	}
}
