// Package solver implements a branch-and-prune constraint satisfaction
// search over the design constraint network — the classical CSP
// machinery the paper builds on (its refs [2] Bitner & Reingold's
// backtrack programming and [9] Kumar's constraint satisfaction
// survey). The DCM uses one propagation pass per design operation; the
// solver drives the same propagation to exhaustion inside a
// backtracking search, which makes it useful as
//
//   - a satisfiability oracle for problem scenarios (is the spec set
//     achievable at all?),
//   - a witness generator for tests (no hand-computed solutions), and
//   - a yardstick: the number of search nodes an automatic solver needs
//     gives context for the operation counts of simulated designers.
package solver

import (
	"fmt"
	"sort"

	"repro/internal/constraint"
	"repro/internal/dddl"
	"repro/internal/domain"
	"repro/internal/expr"
	"repro/internal/interval"
)

// Options tune the search.
type Options struct {
	// MaxNodes caps search-tree nodes; 0 means 100000.
	MaxNodes int
	// Precision is the domain width below which a continuous variable is
	// considered decided; 0 means 1e-6 (relative to the initial width).
	Precision float64
	// Targets restricts the search to these properties (plus everything
	// propagation touches); nil means every unbound numeric property.
	Targets []string
	// PropOpts tunes the per-node propagation.
	PropOpts constraint.PropagateOptions
	// Complete, when set, fills in dependent values (e.g. derived
	// performance properties) after the targets are bound to a candidate
	// point and before the point is verified. SolveScenario installs a
	// completion that evaluates the scenario's derived formulas.
	Complete func(net *constraint.Network) error
}

// Result reports the outcome of a search.
type Result struct {
	// Satisfiable is true when a witness was found.
	Satisfiable bool
	// Witness assigns a value to every target property (valid only when
	// Satisfiable).
	Witness map[string]float64
	// Nodes is the number of search-tree nodes visited.
	Nodes int
	// Evaluations is the number of constraint evaluations spent.
	Evaluations int64
	// Exhausted is true when MaxNodes stopped the search before an
	// answer was proven; Satisfiable=false is then inconclusive.
	Exhausted bool
}

// Solve searches for an assignment of the target properties that
// satisfies every constraint in the network, using interval
// branch-and-prune: propagate, split the widest (relative) domain,
// recurse. The input network is not modified.
func Solve(net *constraint.Network, opts Options) (*Result, error) {
	if opts.MaxNodes <= 0 {
		opts.MaxNodes = 100000
	}
	if opts.Precision <= 0 {
		opts.Precision = 1e-6
	}

	work := net.Clone()
	targets, err := pickTargets(work, opts.Targets)
	if err != nil {
		return nil, err
	}

	s := &search{opts: opts, targets: targets}
	res := &Result{}
	startEvals := work.EvalCount()
	found := s.solve(work, res)
	res.Evaluations = work.EvalCount() - startEvals
	res.Satisfiable = found
	res.Exhausted = s.exhausted
	if found {
		res.Witness = s.witness
	}
	return res, nil
}

// SolveScenario builds the scenario's network and searches over the
// design variables (non-derived outputs of its problems).
func SolveScenario(scn *dddl.Scenario, opts Options) (*Result, error) {
	net, err := scn.BuildNetwork()
	if err != nil {
		return nil, err
	}
	if opts.Targets == nil {
		derived := map[string]bool{}
		for _, p := range scn.Properties {
			if p.IsDerived() {
				derived[p.Name] = true
			}
		}
		for _, prob := range scn.Problems {
			for _, out := range prob.Outputs {
				if !derived[out] {
					opts.Targets = append(opts.Targets, out)
				}
			}
		}
		sort.Strings(opts.Targets)
	}
	if opts.Complete == nil {
		order := scn.DerivedOrder()
		opts.Complete = func(net *constraint.Network) error {
			for _, pd := range order {
				node, err := expr.Parse(pd.Formula)
				if err != nil {
					return err
				}
				v, err := expr.Eval(node, net)
				if err != nil {
					return err // an input is unbound; point incomplete
				}
				if err := net.BindReal(pd.Name, v); err != nil {
					return err
				}
			}
			return nil
		}
	}
	return Solve(net, opts)
}

func pickTargets(net *constraint.Network, requested []string) ([]string, error) {
	if requested != nil {
		for _, t := range requested {
			p := net.Property(t)
			if p == nil {
				return nil, fmt.Errorf("solver: unknown target property %q", t)
			}
			if !p.IsNumeric() {
				return nil, fmt.Errorf("solver: target %q is not numeric", t)
			}
		}
		return append([]string(nil), requested...), nil
	}
	var out []string
	for _, p := range net.Properties() {
		if p.IsNumeric() && !p.IsBound() {
			out = append(out, p.Name)
		}
	}
	return out, nil
}

// restoreKeepEvals rewinds the network state but keeps the evaluation
// counter monotone: explored work was still spent.
func restoreKeepEvals(net *constraint.Network, snap *constraint.Snapshot) {
	cur := net.EvalCount()
	net.Restore(snap)
	net.AddEvals(cur - net.EvalCount())
}

type search struct {
	opts      Options
	targets   []string
	witness   map[string]float64
	exhausted bool
}

// solve runs branch-and-prune on net (which it owns and mutates).
func (s *search) solve(net *constraint.Network, res *Result) bool {
	res.Nodes++
	if res.Nodes > s.opts.MaxNodes {
		s.exhausted = true
		return false
	}

	pr := net.Propagate(s.opts.PropOpts)
	if len(pr.Violated) > 0 {
		return false
	}
	for _, t := range s.targets {
		if net.Property(t).Feasible().IsEmpty() {
			return false
		}
	}

	// Probe the box midpoint before splitting: the candidate is cheap to
	// verify and frequently succeeds long before every domain reaches
	// the precision threshold.
	if s.tryPoint(net, res) {
		return true
	}

	// Choose the branching variable: the widest relative domain among
	// undecided targets.
	branch, width := "", 0.0
	for _, t := range s.targets {
		p := net.Property(t)
		if p.IsBound() {
			continue
		}
		rel := p.Feasible().RelativeSize(p.Init)
		if reals := p.Feasible().Reals(); reals != nil {
			if len(reals) <= 1 {
				continue // a single remaining value: decided below
			}
		} else if rel <= s.opts.Precision {
			continue
		}
		if rel > width {
			branch, width = t, rel
		}
	}

	if branch == "" {
		// Every target decided: bind midpoints and verify at the point.
		return s.tryPoint(net, res)
	}

	p := net.Property(branch)
	if reals := p.Feasible().Reals(); reals != nil {
		// Discrete split: try each value, middle-out.
		order := middleOut(reals)
		for _, v := range order {
			snap := net.Snapshot()
			if err := net.BindReal(branch, v); err != nil {
				return false
			}
			if s.solve(net, res) {
				return true
			}
			restoreKeepEvals(net, snap)
			if s.exhausted {
				return false
			}
		}
		return false
	}

	iv, _ := p.Feasible().Interval()
	mid := iv.Mid()
	halves := []interval.Interval{
		interval.New(iv.Lo, mid),
		interval.New(mid, iv.Hi),
	}
	for _, h := range halves {
		snap := net.Snapshot()
		p.SetFeasible(domain.FromInterval(h))
		if s.solve(net, res) {
			return true
		}
		restoreKeepEvals(net, snap)
		if s.exhausted {
			return false
		}
	}
	return false
}

// tryPoint dives greedily to a candidate point: targets are bound one
// at a time to the midpoint of their *current* feasible subspace —
// narrowest relative domain first, re-propagating after each binding so
// later midpoints respect earlier choices — and the complete point is
// then verified against every constraint.
func (s *search) tryPoint(net *constraint.Network, res *Result) bool {
	snap := net.Snapshot()
	point := map[string]float64{}

	order := append([]string(nil), s.targets...)
	sort.SliceStable(order, func(i, j int) bool {
		pi, pj := net.Property(order[i]), net.Property(order[j])
		return pi.Feasible().RelativeSize(pi.Init) < pj.Feasible().RelativeSize(pj.Init)
	})
	for _, t := range order {
		p := net.Property(t)
		if v, ok := p.Value(); ok {
			point[t] = v.Num()
			continue
		}
		m, ok := p.Feasible().Mid()
		if !ok {
			restoreKeepEvals(net, snap)
			return false
		}
		if err := net.BindReal(t, m); err != nil {
			restoreKeepEvals(net, snap)
			return false
		}
		point[t] = m
		if pr := net.Propagate(s.opts.PropOpts); len(pr.Violated) > 0 {
			restoreKeepEvals(net, snap)
			return false
		}
	}
	// Fill in dependent values (derived performance properties), then
	// verify every constraint at the complete point.
	if s.opts.Complete != nil {
		if err := s.opts.Complete(net); err != nil {
			restoreKeepEvals(net, snap)
			return false
		}
	}
	for _, c := range net.Constraints() {
		holds, known := c.HoldsAt(net)
		if known && !holds {
			restoreKeepEvals(net, snap)
			return false
		}
		if !known {
			// An argument outside the target set is unbound: fall back
			// to interval status, requiring definite satisfaction.
			if c.StatusOver(net) != constraint.Satisfied {
				restoreKeepEvals(net, snap)
				return false
			}
		}
	}
	s.witness = point
	return true
}

// middleOut orders values center-first (central discrete values tend to
// leave the most slack).
func middleOut(vals []float64) []float64 {
	out := make([]float64, 0, len(vals))
	lo, hi := 0, len(vals)-1
	mid := len(vals) / 2
	out = append(out, vals[mid])
	for d := 1; len(out) < len(vals); d++ {
		if mid-d >= lo {
			out = append(out, vals[mid-d])
		}
		if mid+d <= hi {
			out = append(out, vals[mid+d])
		}
	}
	return out
}

// CheckWitness verifies a full assignment against every constraint of
// the network; it returns the violated constraint names.
func CheckWitness(net *constraint.Network, assignment map[string]float64) []string {
	work := net.Clone()
	for prop, v := range assignment {
		if p := work.Property(prop); p != nil && p.IsNumeric() {
			if err := work.BindReal(prop, v); err != nil {
				return []string{fmt.Sprintf("bind %s: %v", prop, err)}
			}
		}
	}
	var violated []string
	for _, c := range work.Constraints() {
		if holds, known := c.HoldsAt(work); known && !holds {
			violated = append(violated, c.Name)
		}
	}
	return violated
}
