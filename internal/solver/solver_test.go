package solver

import (
	"testing"

	"repro/internal/constraint"
	"repro/internal/dddl"
	"repro/internal/domain"
	"repro/internal/expr"
	"repro/internal/scenario"
)

func buildNet(t *testing.T, props map[string][2]float64, cons map[string]string) *constraint.Network {
	t.Helper()
	net := constraint.NewNetwork()
	for name, r := range props {
		if err := net.AddProperty(constraint.NewProperty(name, domain.NewInterval(r[0], r[1]))); err != nil {
			t.Fatal(err)
		}
	}
	for name, src := range cons {
		if err := net.AddConstraint(constraint.MustParseConstraint(name, src)); err != nil {
			t.Fatal(err)
		}
	}
	return net
}

func TestSolveLinearSystem(t *testing.T) {
	net := buildNet(t,
		map[string][2]float64{"x": {0, 10}, "y": {0, 10}},
		map[string]string{
			"sum":  "x + y >= 8",
			"cap":  "x + y <= 12",
			"xmax": "x <= 4",
		})
	res, err := Solve(net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Satisfiable {
		t.Fatalf("satisfiable system reported unsat (nodes=%d)", res.Nodes)
	}
	if v := CheckWitness(net, res.Witness); v != nil {
		t.Errorf("witness violates %v (witness %v)", v, res.Witness)
	}
	if res.Nodes <= 0 || res.Evaluations <= 0 {
		t.Error("missing search accounting")
	}
}

func TestSolveUnsat(t *testing.T) {
	net := buildNet(t,
		map[string][2]float64{"x": {0, 10}},
		map[string]string{
			"lo": "x >= 8",
			"hi": "x <= 2",
		})
	res, err := Solve(net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Satisfiable {
		t.Errorf("unsat system reported sat: %v", res.Witness)
	}
	if res.Exhausted {
		t.Error("trivial unsat should be proven, not exhausted")
	}
}

func TestSolveNonlinear(t *testing.T) {
	// x² + y² <= 25 with x*y >= 6 and x >= 2: e.g. (2,3).
	net := buildNet(t,
		map[string][2]float64{"x": {0, 10}, "y": {0, 10}},
		map[string]string{
			"circle": "sqr(x) + sqr(y) <= 25",
			"prod":   "x * y >= 6",
			"xmin":   "x >= 2",
		})
	res, err := Solve(net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Satisfiable {
		t.Fatalf("nonlinear system reported unsat (nodes=%d exhausted=%v)", res.Nodes, res.Exhausted)
	}
	if v := CheckWitness(net, res.Witness); v != nil {
		t.Errorf("witness violates %v: %v", v, res.Witness)
	}
}

func TestSolveDiscreteDomain(t *testing.T) {
	net := constraint.NewNetwork()
	if err := net.AddProperty(constraint.NewProperty("L", domain.NewRealSet(0.1, 0.2, 0.5, 1.0))); err != nil {
		t.Fatal(err)
	}
	if err := net.AddProperty(constraint.NewProperty("x", domain.NewInterval(0, 10))); err != nil {
		t.Fatal(err)
	}
	for name, src := range map[string]string{
		"c1": "L * x >= 2",
		"c2": "L <= 0.5",
	} {
		if err := net.AddConstraint(constraint.MustParseConstraint(name, src)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := Solve(net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Satisfiable {
		t.Fatal("discrete system reported unsat")
	}
	if l := res.Witness["L"]; l != 0.1 && l != 0.2 && l != 0.5 {
		t.Errorf("witness L = %v not in the discrete set", l)
	}
	if v := CheckWitness(net, res.Witness); v != nil {
		t.Errorf("witness violates %v: %v", v, res.Witness)
	}
}

func TestSolveRespectsBoundProperties(t *testing.T) {
	net := buildNet(t,
		map[string][2]float64{"x": {0, 10}, "y": {0, 10}},
		map[string]string{"sum": "x + y == 7"})
	if err := net.BindReal("x", 3); err != nil {
		t.Fatal(err)
	}
	res, err := Solve(net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Satisfiable {
		t.Fatal("reported unsat")
	}
	if y := res.Witness["y"]; y < 3.99 || y > 4.01 {
		t.Errorf("y = %v, want ≈4 (x pinned at 3)", y)
	}
	// The input network must be untouched.
	if net.Property("y").IsBound() {
		t.Error("Solve mutated the input network")
	}
}

func TestSolveTargetsValidation(t *testing.T) {
	net := buildNet(t, map[string][2]float64{"x": {0, 1}}, nil)
	if _, err := Solve(net, Options{Targets: []string{"nope"}}); err == nil {
		t.Error("unknown target accepted")
	}
	if err := net.AddProperty(constraint.NewProperty("s", domain.NewStringSet("a"))); err != nil {
		t.Fatal(err)
	}
	if _, err := Solve(net, Options{Targets: []string{"s"}}); err == nil {
		t.Error("string target accepted")
	}
}

func TestSolveMaxNodesExhaustion(t *testing.T) {
	net := buildNet(t,
		map[string][2]float64{"x": {0, 10}, "y": {0, 10}, "z": {0, 10}},
		map[string]string{
			// A thin feasible shell that needs some splitting.
			"shell1": "sqr(x) + sqr(y) + sqr(z) >= 74.9",
			"shell2": "sqr(x) + sqr(y) + sqr(z) <= 75.1",
		})
	res, err := Solve(net, Options{MaxNodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Satisfiable {
		return // got lucky in 2 nodes; fine
	}
	if !res.Exhausted {
		t.Error("node-capped search must report exhaustion")
	}
}

// TestScenariosSatisfiable proves every built-in scenario solvable by
// machine search — replacing trust in hand-computed witnesses.
func TestScenariosSatisfiable(t *testing.T) {
	for _, name := range scenario.Names() {
		scn, err := scenario.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := SolveScenario(scn, Options{MaxNodes: 20000})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Satisfiable {
			t.Errorf("%s: solver found no witness (nodes=%d, exhausted=%v)",
				name, res.Nodes, res.Exhausted)
			continue
		}
		net, _ := scn.BuildNetwork()
		full := fullAssignment(t, scn, res.Witness)
		if v := CheckWitness(net, full); v != nil {
			t.Errorf("%s: solver witness violates %v", name, v)
		}
	}
}

// TestSweepScenariosSatisfiable proves every Fig. 10 tightness level is
// achievable (the sweep measures search effort, not impossibility).
func TestSweepScenariosSatisfiable(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, g := range scenario.GainSweep() {
		res, err := SolveScenario(scenario.ReceiverWithGain(g), Options{MaxNodes: 50000})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Satisfiable {
			t.Errorf("gain %v: no witness (nodes=%d exhausted=%v)", g, res.Nodes, res.Exhausted)
		}
	}
}

// fullAssignment extends a design-variable witness with the derived
// property values its formulas produce.
func fullAssignment(t *testing.T, scn *dddl.Scenario, witness map[string]float64) map[string]float64 {
	t.Helper()
	net, err := scn.BuildNetwork()
	if err != nil {
		t.Fatal(err)
	}
	for prop, v := range witness {
		if err := net.BindReal(prop, v); err != nil {
			t.Fatal(err)
		}
	}
	full := map[string]float64{}
	for prop, v := range witness {
		full[prop] = v
	}
	for _, pd := range scn.DerivedOrder() {
		// Evaluate the formula over current bindings.
		c := net.Constraint(pd.Name + ".def")
		if c == nil {
			t.Fatalf("missing def constraint for %s", pd.Name)
		}
		v, err := evalFormula(net, pd.Formula)
		if err != nil {
			t.Fatalf("derived %s: %v", pd.Name, err)
		}
		if err := net.BindReal(pd.Name, v); err != nil {
			t.Fatal(err)
		}
		full[pd.Name] = v
	}
	return full
}

func evalFormula(net *constraint.Network, formula string) (float64, error) {
	node, err := expr.Parse(formula)
	if err != nil {
		return 0, err
	}
	return expr.Eval(node, net)
}

// TestRandomScenariosSolvable runs the solver over generated scenarios
// (satisfiable by construction).
func TestRandomScenariosSolvable(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		scn := scenario.MustRandom(seed, 1+int(seed%4))
		res, err := SolveScenario(scn, Options{MaxNodes: 20000})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Satisfiable {
			t.Errorf("seed %d: generated scenario reported unsat (nodes=%d exhausted=%v)",
				seed, res.Nodes, res.Exhausted)
		}
	}
}
