package stats

import (
	"math"
	"math/rand"
	"sort"
)

// CI is a two-sided confidence interval for a statistic.
type CI struct {
	Lo, Hi float64
	// Level is the nominal coverage (e.g. 0.95).
	Level float64
}

// Contains reports whether v lies inside the interval.
func (c CI) Contains(v float64) bool { return c.Lo <= v && v <= c.Hi }

// BootstrapMeanCI estimates a percentile-bootstrap confidence interval
// for the sample mean, using a seeded generator so experiment reports
// are reproducible. resamples <= 0 selects 2000.
func BootstrapMeanCI(vals []float64, level float64, resamples int, seed int64) CI {
	return bootstrapCI(vals, level, resamples, seed, mean)
}

// BootstrapRatioCI estimates a percentile-bootstrap confidence interval
// for mean(a)/mean(b) — the form of every ratio the paper reports
// (operations ratio, spin ratio, evaluation penalties). The two samples
// are resampled independently.
func BootstrapRatioCI(a, b []float64, level float64, resamples int, seed int64) CI {
	if len(a) == 0 || len(b) == 0 {
		return CI{Level: level}
	}
	if resamples <= 0 {
		resamples = 2000
	}
	rng := rand.New(rand.NewSource(seed))
	ratios := make([]float64, 0, resamples)
	for i := 0; i < resamples; i++ {
		mb := mean(resample(rng, b))
		if mb == 0 {
			continue
		}
		ratios = append(ratios, mean(resample(rng, a))/mb)
	}
	return percentileCI(ratios, level)
}

func bootstrapCI(vals []float64, level float64, resamples int, seed int64, stat func([]float64) float64) CI {
	if len(vals) == 0 {
		return CI{Level: level}
	}
	if resamples <= 0 {
		resamples = 2000
	}
	rng := rand.New(rand.NewSource(seed))
	stats := make([]float64, resamples)
	for i := range stats {
		stats[i] = stat(resample(rng, vals))
	}
	return percentileCI(stats, level)
}

func resample(rng *rand.Rand, vals []float64) []float64 {
	out := make([]float64, len(vals))
	for i := range out {
		out[i] = vals[rng.Intn(len(vals))]
	}
	return out
}

func percentileCI(stats []float64, level float64) CI {
	if len(stats) == 0 {
		return CI{Level: level}
	}
	sort.Float64s(stats)
	alpha := (1 - level) / 2
	lo := stats[clampIndex(int(alpha*float64(len(stats))), len(stats))]
	hi := stats[clampIndex(int((1-alpha)*float64(len(stats)))-1, len(stats))]
	return CI{Lo: lo, Hi: hi, Level: level}
}

func clampIndex(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

func mean(vals []float64) float64 {
	s := 0.0
	for _, v := range vals {
		s += v
	}
	return s / float64(len(vals))
}

// WelchT computes Welch's t statistic for the difference of two sample
// means (unequal variances) and the corresponding degrees of freedom.
// The caller compares |t| against a critical value; for the sample
// sizes used here (≥ 30 per arm), |t| > 2 indicates a difference
// significant at roughly the 95% level.
func WelchT(a, b []float64) (t, df float64) {
	if len(a) < 2 || len(b) < 2 {
		return 0, 0
	}
	sa, sb := Summarize(a), Summarize(b)
	va := sa.Std * sa.Std / float64(len(a))
	vb := sb.Std * sb.Std / float64(len(b))
	if va+vb == 0 {
		return 0, 0
	}
	t = (sa.Mean - sb.Mean) / math.Sqrt(va+vb)
	denom := va*va/float64(len(a)-1) + vb*vb/float64(len(b)-1)
	if denom == 0 {
		return t, 0
	}
	df = (va + vb) * (va + vb) / denom
	return t, df
}
