package stats

import (
	"math/rand"
	"testing"
)

func normalish(rng *rand.Rand, n int, mu, sigma float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = mu + sigma*rng.NormFloat64()
	}
	return out
}

func TestBootstrapMeanCICoversTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	hits := 0
	const trials = 40
	for i := 0; i < trials; i++ {
		sample := normalish(rng, 50, 10, 2)
		ci := BootstrapMeanCI(sample, 0.95, 500, int64(i))
		if ci.Contains(10) {
			hits++
		}
		if ci.Lo > ci.Hi {
			t.Fatalf("inverted CI %+v", ci)
		}
	}
	// Nominal 95% coverage; allow generous slack for 40 trials.
	if hits < 32 {
		t.Errorf("CI covered the true mean only %d/%d times", hits, trials)
	}
}

func TestBootstrapMeanCIDeterministic(t *testing.T) {
	sample := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	a := BootstrapMeanCI(sample, 0.9, 300, 7)
	b := BootstrapMeanCI(sample, 0.9, 300, 7)
	if a != b {
		t.Errorf("same seed produced different CIs: %+v vs %+v", a, b)
	}
	c := BootstrapMeanCI(sample, 0.9, 300, 8)
	if a == c {
		t.Error("different seeds produced identical CIs (suspicious)")
	}
}

func TestBootstrapMeanCIEdge(t *testing.T) {
	if ci := BootstrapMeanCI(nil, 0.95, 100, 1); ci.Lo != 0 || ci.Hi != 0 {
		t.Errorf("empty sample CI = %+v", ci)
	}
	// Constant sample: zero-width interval at the constant.
	ci := BootstrapMeanCI([]float64{5, 5, 5}, 0.95, 100, 1)
	if ci.Lo != 5 || ci.Hi != 5 {
		t.Errorf("constant sample CI = %+v", ci)
	}
}

func TestBootstrapRatioCI(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := normalish(rng, 60, 100, 10) // conventional ops
	b := normalish(rng, 60, 25, 3)   // ADPM ops; true ratio 4
	ci := BootstrapRatioCI(a, b, 0.95, 1000, 3)
	if !ci.Contains(4) {
		t.Errorf("ratio CI %+v does not cover the true ratio 4", ci)
	}
	// The paper's claim form: the whole interval above 2.
	if ci.Lo <= 2 {
		t.Errorf("ratio CI %+v should be clearly above 2", ci)
	}
	if got := BootstrapRatioCI(nil, b, 0.95, 100, 1); got.Lo != 0 || got.Hi != 0 {
		t.Errorf("empty numerator CI = %+v", got)
	}
}

func TestWelchT(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := normalish(rng, 60, 100, 15)
	b := normalish(rng, 60, 25, 5)
	tt, df := WelchT(a, b)
	if tt < 10 {
		t.Errorf("clearly separated samples: t = %v, want large", tt)
	}
	if df < 30 {
		t.Errorf("df = %v, want sizeable", df)
	}
	// Same-distribution samples: small |t| most of the time.
	c := normalish(rng, 60, 50, 5)
	d := normalish(rng, 60, 50, 5)
	tt2, _ := WelchT(c, d)
	if tt2 > 4 || tt2 < -4 {
		t.Errorf("same-distribution t = %v, want small", tt2)
	}
	// Degenerate inputs.
	if tt, df := WelchT([]float64{1}, []float64{2, 3}); tt != 0 || df != 0 {
		t.Error("short sample should yield zeros")
	}
	if tt, _ := WelchT([]float64{2, 2, 2}, []float64{2, 2, 2}); tt != 0 {
		t.Error("zero-variance identical samples should yield t=0")
	}
}
