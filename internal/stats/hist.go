package stats

import "math/bits"

// Log-bucketed (HDR-style) histogram layout. Values are non-negative
// int64s (the latency recorders feed nanoseconds). The first
// histSubBuckets buckets are exact (one value each); past that, each
// power-of-two octave is split into histSubBuckets linear sub-buckets,
// bounding the relative quantile error at 1/histSubBuckets (≈3.1%)
// while keeping the whole table small enough to embed per endpoint.
const (
	histSubBits    = 5
	histSubBuckets = 1 << histSubBits
	// histBuckets covers every int64 ≥ 0: the top value (2^63-1) lands
	// in the last bucket, whose upper bound is exactly 2^63-1.
	histBuckets = (63-histSubBits)<<histSubBits + histSubBuckets
)

// histBucket maps a value to its bucket index.
func histBucket(v int64) int {
	if v < histSubBuckets {
		return int(v)
	}
	shift := bits.Len64(uint64(v)) - 1 - histSubBits
	return (shift+1)<<histSubBits + int((v>>uint(shift))&(histSubBuckets-1))
}

// histUpper returns the largest value that maps to bucket i — the
// value Quantile reports for ranks landing in that bucket.
func histUpper(i int) int64 {
	if i < histSubBuckets {
		return int64(i)
	}
	shift := uint(i>>histSubBits - 1)
	lo := int64(histSubBuckets+i&(histSubBuckets-1)) << shift
	return lo + (int64(1) << shift) - 1
}

// LogHist is a log-bucketed histogram of non-negative int64 samples
// (latencies in nanoseconds, sizes in bytes). Recording is O(1) with no
// allocation after the first Observe; quantiles are read back with a
// bounded relative error of 1/32 ≈ 3.1% (exact below 32). Min, max, sum
// and count are tracked exactly. The zero value is ready to use.
//
// A LogHist is not safe for concurrent use: callers either keep one per
// goroutine and Merge at the end (the load generator), or guard it with
// a lock (the server's endpoint recorders).
type LogHist struct {
	counts []uint64
	count  uint64
	sum    int64
	min    int64
	max    int64
}

// Observe records one sample. Negative values clamp to zero.
func (h *LogHist) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	if h.counts == nil {
		h.counts = make([]uint64, histBuckets)
	}
	h.counts[histBucket(v)]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
}

// Reset clears all recorded samples but keeps the bucket table
// allocated, so an Observe after Reset allocates nothing. Benchmarks
// that sweep a parameter reuse one histogram per sweep point this way.
func (h *LogHist) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.count, h.sum, h.min, h.max = 0, 0, 0, 0
}

// Merge folds o into h. o is unchanged.
func (h *LogHist) Merge(o *LogHist) {
	if o == nil || o.count == 0 {
		return
	}
	if h.counts == nil {
		h.counts = make([]uint64, histBuckets)
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
}

// Count returns the number of recorded samples.
func (h *LogHist) Count() uint64 { return h.count }

// Sum returns the exact sum of recorded samples.
func (h *LogHist) Sum() int64 { return h.sum }

// Min returns the exact smallest sample (0 when empty).
func (h *LogHist) Min() int64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the exact largest sample (0 when empty).
func (h *LogHist) Max() int64 {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Mean returns the exact mean (0 when empty).
func (h *LogHist) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns the q-quantile (q in [0,1]) as the upper bound of
// the bucket holding the rank-⌈q·n⌉ sample, clamped to the exact
// observed min/max so Quantile(0) and Quantile(1) are exact. Returns 0
// when empty.
func (h *LogHist) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := uint64(q * float64(h.count))
	if float64(rank) < q*float64(h.count) {
		rank++
	}
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			v := histUpper(i)
			if v > h.max {
				v = h.max
			}
			if v < h.min {
				v = h.min
			}
			return v
		}
	}
	return h.max
}
