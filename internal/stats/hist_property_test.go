package stats

import (
	"math/rand"
	"testing"
)

// Property sweep for the histogram's algebra (ISSUE 7 satellite): the
// identities a latency pipeline leans on when per-worker histograms are
// merged — merge with an empty histogram is the identity, merge is
// commutative in every readout, single samples are reported exactly,
// and quantiles are monotone in q. Randomized but seeded, so failures
// reproduce.

var quantileGrid = []float64{0, 0.001, 0.01, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1}

// sameReadouts asserts every observable of two histograms agrees.
func sameReadouts(t *testing.T, label string, got, want *LogHist) {
	t.Helper()
	if got.Count() != want.Count() || got.Sum() != want.Sum() ||
		got.Min() != want.Min() || got.Max() != want.Max() || got.Mean() != want.Mean() {
		t.Fatalf("%s: aggregates %d/%d/%d/%d vs %d/%d/%d/%d", label,
			got.Count(), got.Sum(), got.Min(), got.Max(),
			want.Count(), want.Sum(), want.Min(), want.Max())
	}
	for _, q := range quantileGrid {
		if got.Quantile(q) != want.Quantile(q) {
			t.Fatalf("%s: Quantile(%g) = %d, want %d", label, q, got.Quantile(q), want.Quantile(q))
		}
	}
}

// randHist builds a histogram of n samples drawn across the full bucket
// range (exact linear region, mid octaves, and huge values).
func randHist(rng *rand.Rand, n int) *LogHist {
	var h LogHist
	for i := 0; i < n; i++ {
		switch rng.Intn(3) {
		case 0:
			h.Observe(rng.Int63n(histSubBuckets)) // exact region
		case 1:
			h.Observe(rng.Int63n(1_000_000_000)) // typical latencies
		default:
			h.Observe(rng.Int63()) // anywhere in int64
		}
	}
	return &h
}

func TestLogHistMergeEmptyIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for round := 0; round < 50; round++ {
		x := randHist(rng, rng.Intn(200)) // including n == 0 and n == 1
		want := &LogHist{}
		want.Merge(x) // copy via merge-into-empty

		// empty.Merge(x) == x — for a zero-value empty and for a
		// previously-used-then-Reset empty (allocated bucket table).
		fresh := &LogHist{}
		fresh.Merge(x)
		sameReadouts(t, "merge(zero-value, x)", fresh, want)

		reset := randHist(rng, 50)
		reset.Reset()
		reset.Merge(x)
		sameReadouts(t, "merge(reset, x)", reset, want)

		// x.Merge(empty) == x — both empty flavors, x unchanged.
		x.Merge(&LogHist{})
		x.Merge(nil)
		used := randHist(rng, 50)
		used.Reset()
		x.Merge(used)
		sameReadouts(t, "merge(x, empty)", x, want)
	}
}

func TestLogHistMergeCommutes(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for round := 0; round < 50; round++ {
		a, b := randHist(rng, rng.Intn(150)), randHist(rng, rng.Intn(150))
		ab := &LogHist{}
		ab.Merge(a)
		ab.Merge(b)
		ba := &LogHist{}
		ba.Merge(b)
		ba.Merge(a)
		sameReadouts(t, "merge order", ab, ba)
	}
}

func TestLogHistSingleSampleExact(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for round := 0; round < 200; round++ {
		v := rng.Int63()
		if round == 0 {
			v = 0 // the boundary sample
		}
		var h LogHist
		h.Observe(v)
		if h.Count() != 1 || h.Min() != v || h.Max() != v || h.Sum() != v || h.Mean() != float64(v) {
			t.Fatalf("single sample %d: aggregates %d/%d/%d/%d", v, h.Count(), h.Min(), h.Max(), h.Sum())
		}
		// Every quantile of a one-sample histogram is that sample,
		// exactly — bucket upper bounds must clamp to the observed value.
		for _, q := range quantileGrid {
			if got := h.Quantile(q); got != v {
				t.Fatalf("single sample %d: Quantile(%g) = %d", v, q, got)
			}
		}
	}
}

func TestLogHistQuantileMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for round := 0; round < 25; round++ {
		h := randHist(rng, 1+rng.Intn(500))
		prev := int64(-1)
		for _, q := range quantileGrid {
			v := h.Quantile(q)
			if v < prev {
				t.Fatalf("Quantile(%g) = %d below previous %d", q, v, prev)
			}
			prev = v
		}
		if h.Quantile(0) != h.Min() || h.Quantile(1) != h.Max() {
			t.Fatalf("extreme quantiles not exact: q0=%d min=%d, q1=%d max=%d",
				h.Quantile(0), h.Min(), h.Quantile(1), h.Max())
		}
	}
}
