package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestLogHistExactBelowLinearRange(t *testing.T) {
	var h LogHist
	for v := int64(0); v < 32; v++ {
		h.Observe(v)
	}
	if h.Count() != 32 || h.Min() != 0 || h.Max() != 31 {
		t.Fatalf("count/min/max = %d/%d/%d", h.Count(), h.Min(), h.Max())
	}
	// Every sample below 32 has its own bucket, so quantiles are exact:
	// rank ⌈q·32⌉ selects sample value rank-1.
	for _, q := range []float64{0.25, 0.5, 0.75, 1} {
		rank := int64(math.Ceil(q * 32))
		if got := h.Quantile(q); got != rank-1 {
			t.Errorf("Quantile(%g) = %d, want %d", q, got, rank-1)
		}
	}
}

func TestLogHistBucketRoundTrip(t *testing.T) {
	// histUpper(i) must be the largest value mapping to bucket i, and
	// histUpper(i)+1 must map to bucket i+1 — no gaps, no overlaps.
	for i := 0; i < histBuckets-1; i++ {
		up := histUpper(i)
		if histBucket(up) != i {
			t.Fatalf("bucket(upper(%d)=%d) = %d", i, up, histBucket(up))
		}
		if up < math.MaxInt64 && histBucket(up+1) != i+1 {
			t.Fatalf("bucket(%d) = %d, want %d", up+1, histBucket(up+1), i+1)
		}
	}
	if got := histBucket(math.MaxInt64); got >= histBuckets {
		t.Fatalf("MaxInt64 bucket %d out of range %d", got, histBuckets)
	}
}

func TestLogHistQuantileErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h LogHist
	samples := make([]int64, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Mix scales: sub-linear, microsecond-ish, and heavy tail.
		var v int64
		switch i % 3 {
		case 0:
			v = rng.Int63n(32)
		case 1:
			v = rng.Int63n(1_000_000)
		default:
			v = rng.Int63n(5_000_000_000)
		}
		samples = append(samples, v)
		h.Observe(v)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		rank := int(math.Ceil(q * float64(len(samples))))
		exact := samples[rank-1]
		got := h.Quantile(q)
		// The reported value is the bucket upper bound of the exact
		// sample: never below it, and within one sub-bucket width above.
		if got < exact {
			t.Errorf("Quantile(%g) = %d below exact %d", q, got, exact)
		}
		if tol := float64(exact)/32 + 1; float64(got-exact) > tol {
			t.Errorf("Quantile(%g) = %d, exact %d: error beyond bound %g", q, got, exact, tol)
		}
	}
	if h.Quantile(1) != samples[len(samples)-1] {
		t.Errorf("Quantile(1) = %d, want exact max %d", h.Quantile(1), samples[len(samples)-1])
	}
	if h.Quantile(0) != samples[0] {
		t.Errorf("Quantile(0) = %d, want exact min %d", h.Quantile(0), samples[0])
	}
}

func TestLogHistMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var whole, a, b LogHist
	for i := 0; i < 5000; i++ {
		v := rng.Int63n(1_000_000_000)
		whole.Observe(v)
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
	}
	a.Merge(&b)
	if a.Count() != whole.Count() || a.Sum() != whole.Sum() ||
		a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Fatalf("merge aggregate mismatch: %d/%d/%d/%d vs %d/%d/%d/%d",
			a.Count(), a.Sum(), a.Min(), a.Max(),
			whole.Count(), whole.Sum(), whole.Min(), whole.Max())
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		if a.Quantile(q) != whole.Quantile(q) {
			t.Errorf("merge Quantile(%g) = %d, want %d", q, a.Quantile(q), whole.Quantile(q))
		}
	}
	// Merging into an empty histogram copies the source exactly.
	var c LogHist
	c.Merge(&whole)
	if c.Count() != whole.Count() || c.Min() != whole.Min() || c.Max() != whole.Max() {
		t.Fatal("merge into empty lost aggregates")
	}
}

func TestLogHistReset(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	var reused, fresh LogHist
	for round := 0; round < 3; round++ {
		reused.Reset()
		fresh = LogHist{}
		for i := 0; i < 2000; i++ {
			v := rng.Int63n(int64(1) << uint(10+round*20))
			reused.Observe(v)
			fresh.Observe(v)
		}
		if reused.Count() != fresh.Count() || reused.Sum() != fresh.Sum() ||
			reused.Min() != fresh.Min() || reused.Max() != fresh.Max() {
			t.Fatalf("round %d: reset histogram diverged from fresh one", round)
		}
		for _, q := range []float64{0.5, 0.99} {
			if reused.Quantile(q) != fresh.Quantile(q) {
				t.Errorf("round %d: Quantile(%g) = %d, want %d", round, q, reused.Quantile(q), fresh.Quantile(q))
			}
		}
	}
	// Reset keeps the bucket table: further observes must not allocate.
	reused.Reset()
	if allocs := testing.AllocsPerRun(100, func() { reused.Observe(42) }); allocs != 0 {
		t.Errorf("Observe after Reset allocates %g times per call", allocs)
	}
	// Reset on a zero-value histogram is a no-op, not a panic.
	var z LogHist
	z.Reset()
	if z.Count() != 0 {
		t.Fatal("reset zero-value histogram has samples")
	}
}

func TestLogHistEmpty(t *testing.T) {
	var h LogHist
	if h.Count() != 0 || h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 || h.Quantile(0.99) != 0 {
		t.Fatal("zero-value histogram not zero everywhere")
	}
	h.Merge(nil)
	h.Merge(&LogHist{})
	if h.Count() != 0 {
		t.Fatal("merging empties changed the count")
	}
	h.Observe(-5)
	if h.Count() != 1 || h.Max() != 0 {
		t.Fatal("negative sample must clamp to zero")
	}
}
