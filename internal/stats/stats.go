// Package stats implements the statistics capture and visualization
// substrate of TeamSim (paper §3.1, §3.1.2): per-operation series,
// multi-run summaries (mean / standard deviation as reported in
// Fig. 9), CSV export for post-simulation analysis, and an ASCII line
// chart standing in for the paper's Gnuplot/Lefty displays.
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N    int
	Mean float64
	// Std is the sample standard deviation (n-1 denominator).
	Std    float64
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes descriptive statistics; the zero Summary is
// returned for an empty sample.
func Summarize(vals []float64) Summary {
	if len(vals) == 0 {
		return Summary{}
	}
	s := Summary{N: len(vals), Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for _, v := range vals {
		sum += v
		s.Min = math.Min(s.Min, v)
		s.Max = math.Max(s.Max, v)
	}
	s.Mean = sum / float64(len(vals))
	if len(vals) > 1 {
		ss := 0.0
		for _, v := range vals {
			d := v - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(vals)-1))
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

// String formats the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2f std=%.2f min=%g max=%g median=%g",
		s.N, s.Mean, s.Std, s.Min, s.Max, s.Median)
}

// SummarizeInts is Summarize over an int slice.
func SummarizeInts(vals []int) Summary {
	f := make([]float64, len(vals))
	for i, v := range vals {
		f[i] = float64(v)
	}
	return Summarize(f)
}

// SummarizeInt64s is Summarize over an int64 slice.
func SummarizeInt64s(vals []int64) Summary {
	f := make([]float64, len(vals))
	for i, v := range vals {
		f[i] = float64(v)
	}
	return Summarize(f)
}

// Series is one named data series; X is implicit (0..n-1) when nil.
type Series struct {
	Name string
	X    []float64
	Y    []float64
	// Marker is the rune used by the ASCII chart; 0 picks a default.
	Marker rune
}

// NewSeries builds a series with implicit X.
func NewSeries(name string, y []float64) Series {
	return Series{Name: name, Y: y}
}

// FromInts builds a series from ints with implicit X.
func FromInts(name string, y []int) Series {
	f := make([]float64, len(y))
	for i, v := range y {
		f[i] = float64(v)
	}
	return Series{Name: name, Y: f}
}

// FromInt64s builds a series from int64s with implicit X.
func FromInt64s(name string, y []int64) Series {
	f := make([]float64, len(y))
	for i, v := range y {
		f[i] = float64(v)
	}
	return Series{Name: name, Y: f}
}

func (s Series) x(i int) float64 {
	if s.X != nil {
		return s.X[i]
	}
	return float64(i)
}

// Sum returns the sum of the series' Y values (e.g. total evaluations
// as the area under the per-operation curve, paper Fig. 7(b) analysis).
func (s Series) Sum() float64 {
	t := 0.0
	for _, v := range s.Y {
		t += v
	}
	return t
}

var defaultMarkers = []rune{'*', '+', 'o', 'x', '#', '@'}

// AsciiChart renders the series as a fixed-size ASCII line chart with
// axes, a legend, and per-series markers — TeamSim's stand-in for the
// Gnuplot window of Fig. 7/8.
func AsciiChart(title string, width, height int, series ...Series) string {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range series {
		for i := range s.Y {
			x, y := s.x(i), s.Y[i]
			if math.IsNaN(x) || math.IsNaN(y) {
				continue
			}
			points++
			minX = math.Min(minX, x)
			maxX = math.Max(maxX, x)
			minY = math.Min(minY, y)
			maxY = math.Max(maxY, y)
		}
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	if points == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	if minX == maxX {
		maxX = minX + 1
	}
	if minY == maxY {
		maxY = minY + 1
	}
	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = make([]rune, width)
		for c := range grid[r] {
			grid[r][c] = ' '
		}
	}
	for si, s := range series {
		marker := s.Marker
		if marker == 0 {
			marker = defaultMarkers[si%len(defaultMarkers)]
		}
		for i := range s.Y {
			x, y := s.x(i), s.Y[i]
			if math.IsNaN(x) || math.IsNaN(y) {
				continue
			}
			c := int(math.Round((x - minX) / (maxX - minX) * float64(width-1)))
			r := height - 1 - int(math.Round((y-minY)/(maxY-minY)*float64(height-1)))
			if r >= 0 && r < height && c >= 0 && c < width {
				grid[r][c] = marker
			}
		}
	}
	yLoLabel := fmt.Sprintf("%.4g", minY)
	yHiLabel := fmt.Sprintf("%.4g", maxY)
	labelW := len(yLoLabel)
	if len(yHiLabel) > labelW {
		labelW = len(yHiLabel)
	}
	for r := 0; r < height; r++ {
		label := strings.Repeat(" ", labelW)
		if r == 0 {
			label = fmt.Sprintf("%*s", labelW, yHiLabel)
		} else if r == height-1 {
			label = fmt.Sprintf("%*s", labelW, yLoLabel)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", labelW), strings.Repeat("-", width))
	fmt.Fprintf(&b, "%s  %-*s%s\n", strings.Repeat(" ", labelW), width-len(fmt.Sprintf("%.4g", maxX)), fmt.Sprintf("%.4g", minX), fmt.Sprintf("%.4g", maxX))
	for si, s := range series {
		marker := s.Marker
		if marker == 0 {
			marker = defaultMarkers[si%len(defaultMarkers)]
		}
		fmt.Fprintf(&b, "  %c %s\n", marker, s.Name)
	}
	return b.String()
}

// WriteCSV writes a header row and records to w in CSV form. Fields
// containing commas or quotes are quoted.
func WriteCSV(w io.Writer, header []string, rows [][]string) error {
	writeRow := func(row []string) error {
		for i, f := range row {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if strings.ContainsAny(f, ",\"\n") {
				f = `"` + strings.ReplaceAll(f, `"`, `""`) + `"`
			}
			if _, err := io.WriteString(w, f); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\n")
		return err
	}
	if err := writeRow(header); err != nil {
		return err
	}
	for _, row := range rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// Histogram counts values into n equal-width buckets over [min, max].
type Histogram struct {
	Min, Max float64
	Counts   []int
}

// NewHistogram builds a histogram of vals with n buckets spanning the
// sample range.
func NewHistogram(vals []float64, n int) Histogram {
	if n <= 0 {
		n = 10
	}
	h := Histogram{Counts: make([]int, n)}
	if len(vals) == 0 {
		return h
	}
	h.Min, h.Max = math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		h.Min = math.Min(h.Min, v)
		h.Max = math.Max(h.Max, v)
	}
	span := h.Max - h.Min
	if span == 0 {
		h.Counts[0] = len(vals)
		return h
	}
	for _, v := range vals {
		i := int((v - h.Min) / span * float64(n))
		if i >= n {
			i = n - 1
		}
		h.Counts[i]++
	}
	return h
}

// String renders the histogram as horizontal bars.
func (h Histogram) String() string {
	var b strings.Builder
	maxCount := 0
	for _, c := range h.Counts {
		if c > maxCount {
			maxCount = c
		}
	}
	if maxCount == 0 {
		return "(empty histogram)\n"
	}
	span := h.Max - h.Min
	for i, c := range h.Counts {
		lo := h.Min + span*float64(i)/float64(len(h.Counts))
		hi := h.Min + span*float64(i+1)/float64(len(h.Counts))
		bar := strings.Repeat("█", c*40/maxCount)
		fmt.Fprintf(&b, "[%8.3g, %8.3g) %4d %s\n", lo, hi, c, bar)
	}
	return b.String()
}
