package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 {
		t.Errorf("N=%d Mean=%v", s.N, s.Mean)
	}
	// sample std of this classic dataset: sqrt(32/7) ≈ 2.138
	if math.Abs(s.Std-math.Sqrt(32.0/7)) > 1e-12 {
		t.Errorf("Std = %v", s.Std)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min, s.Max)
	}
	if s.Median != 4.5 {
		t.Errorf("Median = %v", s.Median)
	}
	if got := Summarize(nil); got.N != 0 || got.Mean != 0 {
		t.Errorf("empty = %+v", got)
	}
	if got := Summarize([]float64{7}); got.Std != 0 || got.Median != 7 {
		t.Errorf("single = %+v", got)
	}
	odd := Summarize([]float64{3, 1, 2})
	if odd.Median != 2 {
		t.Errorf("odd median = %v", odd.Median)
	}
}

func TestSummarizeIntVariants(t *testing.T) {
	if s := SummarizeInts([]int{1, 2, 3}); s.Mean != 2 {
		t.Errorf("ints mean = %v", s.Mean)
	}
	if s := SummarizeInt64s([]int64{10, 20}); s.Mean != 15 {
		t.Errorf("int64s mean = %v", s.Mean)
	}
}

func TestSummaryString(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	str := s.String()
	for _, part := range []string{"n=3", "mean=2.00", "min=1", "max=3"} {
		if !strings.Contains(str, part) {
			t.Errorf("summary %q missing %q", str, part)
		}
	}
}

func TestSeries(t *testing.T) {
	s := FromInts("v", []int{1, 2, 3})
	if s.Sum() != 6 {
		t.Errorf("Sum = %v", s.Sum())
	}
	s64 := FromInt64s("e", []int64{5, 5})
	if s64.Sum() != 10 {
		t.Errorf("int64 Sum = %v", s64.Sum())
	}
	if NewSeries("x", nil).Sum() != 0 {
		t.Error("empty Sum")
	}
}

func TestAsciiChart(t *testing.T) {
	a := FromInts("conventional", []int{0, 2, 5, 9, 4, 1, 0})
	b := FromInts("adpm", []int{0, 1, 2, 1, 0, 0, 0})
	out := AsciiChart("violations per op", 40, 10, a, b)
	for _, part := range []string{"violations per op", "conventional", "adpm", "*", "+", "|", "---"} {
		if !strings.Contains(out, part) {
			t.Errorf("chart missing %q:\n%s", part, out)
		}
	}
	// Axis labels include min and max Y.
	if !strings.Contains(out, "9") || !strings.Contains(out, "0") {
		t.Errorf("chart missing y labels:\n%s", out)
	}
}

func TestAsciiChartEdgeCases(t *testing.T) {
	if out := AsciiChart("empty", 40, 10); !strings.Contains(out, "no data") {
		t.Errorf("empty chart = %q", out)
	}
	// Constant series must not divide by zero.
	out := AsciiChart("flat", 40, 10, FromInts("c", []int{5, 5, 5}))
	if !strings.Contains(out, "c") {
		t.Errorf("flat chart broken:\n%s", out)
	}
	// Single point.
	out = AsciiChart("pt", 40, 10, FromInts("p", []int{3}))
	if !strings.Contains(out, "*") {
		t.Errorf("point chart broken:\n%s", out)
	}
	// Tiny dimensions get clamped.
	out = AsciiChart("tiny", 1, 1, FromInts("p", []int{1, 2}))
	if out == "" {
		t.Error("tiny chart empty")
	}
	// NaN values are skipped.
	out = AsciiChart("nan", 40, 10, NewSeries("n", []float64{1, math.NaN(), 3}))
	if !strings.Contains(out, "n") {
		t.Errorf("nan chart broken:\n%s", out)
	}
	// Explicit X and custom marker.
	s := Series{Name: "x", X: []float64{0, 10}, Y: []float64{0, 1}, Marker: '%'}
	out = AsciiChart("xy", 40, 10, s)
	if !strings.Contains(out, "%") {
		t.Errorf("custom marker missing:\n%s", out)
	}
}

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	err := WriteCSV(&b, []string{"a", "b"}, [][]string{
		{"1", "plain"},
		{"2", `has "quotes", and comma`},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,plain\n2,\"has \"\"quotes\"\", and comma\"\n"
	if b.String() != want {
		t.Errorf("csv = %q, want %q", b.String(), want)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{1, 1, 2, 3, 9}, 4)
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != 5 {
		t.Errorf("histogram lost values: %v", h.Counts)
	}
	if h.Counts[0] != 3 { // 1,1,2 in first bucket [1,3)
		t.Errorf("first bucket = %d", h.Counts[0])
	}
	if h.Counts[3] != 1 { // 9 in last bucket
		t.Errorf("last bucket = %d", h.Counts[3])
	}
	if !strings.Contains(h.String(), "█") {
		t.Error("histogram render missing bars")
	}
	if NewHistogram(nil, 3).String() == "" {
		t.Error("empty histogram render")
	}
	flat := NewHistogram([]float64{2, 2}, 3)
	if flat.Counts[0] != 2 {
		t.Errorf("degenerate histogram = %v", flat.Counts)
	}
	if def := NewHistogram([]float64{1}, 0); len(def.Counts) != 10 {
		t.Errorf("default bucket count = %d", len(def.Counts))
	}
}

func TestQuickSummaryInvariants(t *testing.T) {
	f := func(vals []float64) bool {
		clean := make([]float64, 0, len(vals))
		for _, v := range vals {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				clean = append(clean, math.Mod(v, 1e6))
			}
		}
		s := Summarize(clean)
		if len(clean) == 0 {
			return s.N == 0
		}
		return s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9 &&
			s.Min <= s.Median && s.Median <= s.Max && s.Std >= 0
	}
	if err := quick.Check(f, quickCfg(0)); err != nil {
		t.Error(err)
	}
}

// quickCfg pins the property-test source: seeded generation keeps runs
// reproducible and independent of test order under -shuffle. A zero
// maxCount keeps testing/quick's default.
func quickCfg(maxCount int) *quick.Config {
	return &quick.Config{MaxCount: maxCount, Rand: rand.New(rand.NewSource(1))}
}
