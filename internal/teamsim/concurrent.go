package teamsim

import (
	"fmt"
	"math/rand"

	"repro/internal/dcm"
	"repro/internal/designer"
	"repro/internal/dpm"
	"repro/internal/trace"
)

// RunConcurrent executes one simulation with the distributed
// architecture of Fig. 5: every simulated designer runs in its own
// goroutine (a Minerva III client with a simulated-designer engine) and
// exchanges messages with a DPM server goroutine that serializes the
// next-state function. Scheduling is nondeterministic, so per-run
// statistics vary across executions even for a fixed seed; use Run for
// reproducible experiments.
func RunConcurrent(cfg Config) (*Result, error) {
	if cfg.Scenario == nil {
		return nil, fmt.Errorf("teamsim: Config.Scenario is required")
	}
	maxOps := cfg.maxOps()
	d, err := dpm.FromScenario(cfg.Scenario, cfg.Mode)
	if err != nil {
		return nil, err
	}
	d.PropOpts = cfg.PropOpts

	master := rand.New(rand.NewSource(cfg.Seed))
	team, err := buildTeam(cfg, d, master)
	if err != nil {
		return nil, err
	}
	bus := subscribeTeam(d, team)

	rec := cfg.Tracer
	d.SetTracer(rec)
	bus.SetTracer(rec)
	if rec.Enabled() {
		rec.Emit(trace.Event{Kind: trace.KindRunStart,
			Scenario: cfg.Scenario.Name, Mode: cfg.Mode.String(), Seed: cfg.Seed})
	}

	srv := &server{
		sess: &Session{
			D:      d,
			Bus:    bus,
			Res:    &Result{Mode: cfg.Mode, Seed: cfg.Seed},
			MaxOps: maxOps,
		},
		rec:     rec,
		reqs:    make(chan request),
		done:    make(chan struct{}),
		exited:  make(chan struct{}),
		wake:    make(map[string]chan struct{}, len(team)),
		idle:    map[string]bool{},
		clients: len(team),
	}
	for _, ds := range team {
		srv.wake[ds.ID()] = make(chan struct{}, 1)
	}

	for _, ds := range team {
		go clientLoop(srv, ds)
	}
	// The server loop runs on this goroutine and returns once every
	// client goroutine has exited, so nothing leaks.
	srv.loop()

	res := srv.sess.Finish()
	emitRunEnd(rec, res)
	return res, nil
}

// request is one client→server message.
type request struct {
	kind reqKind
	id   string
	op   *dpm.Operation
	// stage is, for reqIdle, the history stage the client's view was
	// built at; an idle claim based on a stale view is rejected (the
	// client would otherwise miss information that arrived between its
	// view request and its idle claim — a lost wakeup).
	stage int
	reply chan response
}

type reqKind int

const (
	reqView reqKind = iota
	reqApply
	reqIdle
)

type response struct {
	view  *dcm.View
	tr    *dpm.Transition
	err   error
	stop  bool
	stale bool
	stage int
}

// server owns the session; all state transitions happen on its
// goroutine.
type server struct {
	sess    *Session
	rec     *trace.Recorder
	reqs    chan request
	done    chan struct{}
	exited  chan struct{}
	wake    map[string]chan struct{}
	idle    map[string]bool
	clients int
	stopped bool
}

func (s *server) loop() {
	remaining := s.clients
	for remaining > 0 {
		var req request
		select {
		case req = <-s.reqs:
		case <-s.exited:
			remaining--
			continue
		}
		switch req.kind {
		case reqView:
			if s.stopped {
				req.reply <- response{stop: true}
				continue
			}
			s.sess.Bus.Drain(req.id)
			req.reply <- response{view: dcm.BuildView(s.sess.D, req.id), stage: s.sess.D.Stage()}
		case reqApply:
			if s.stopped {
				req.reply <- response{stop: true}
				continue
			}
			// Session.Apply checks the budget on the server goroutine,
			// before δ executes, so in-flight apply requests can never
			// push the operation count past MaxOps: the op that would
			// exceed the budget is rejected, not applied.
			tr, err := s.sess.Apply(*req.op)
			if err == ErrOpBudget {
				s.stop()
				req.reply <- response{stop: true}
				continue
			}
			if err != nil {
				req.reply <- response{err: err}
				s.stop()
				continue
			}
			delete(s.idle, req.id)
			// New information may unblock idle designers.
			for id, ch := range s.wake {
				if s.idle[id] {
					delete(s.idle, id)
					if s.rec.Enabled() {
						s.rec.Emit(trace.Event{Kind: trace.KindWake, Stage: s.sess.D.Stage(), Designer: id})
					}
					select {
					case ch <- struct{}{}:
					default:
					}
				}
			}
			if s.sess.D.Done() || s.sess.Exhausted() {
				s.stop()
			}
			req.reply <- response{tr: tr, stop: s.stopped}
		case reqIdle:
			if req.stage != s.sess.D.Stage() {
				// The design state moved since this client's view; its
				// idleness decision is stale.
				req.reply <- response{stale: true, stop: s.stopped}
				continue
			}
			s.idle[req.id] = true
			if s.rec.Enabled() {
				s.rec.Emit(trace.Event{Kind: trace.KindIdle, Stage: s.sess.D.Stage(),
					Designer: req.id, Idle: len(s.idle)})
			}
			if len(s.idle) == s.clients {
				// Every designer is simultaneously idle: deadlock.
				s.sess.Res.Deadlocked = !s.sess.D.Done()
				s.stop()
			}
			req.reply <- response{stop: s.stopped}
		}
	}
}

func (s *server) stop() {
	if !s.stopped {
		s.stopped = true
		close(s.done)
		for _, ch := range s.wake {
			select {
			case ch <- struct{}{}:
			default:
			}
		}
	}
}

// clientLoop is one simulated-designer client: request view, choose an
// operation, submit it; when idle, wait to be woken by new information.
func clientLoop(srv *server, ds *designer.Designer) {
	defer func() { srv.exited <- struct{}{} }()
	for {
		resp := srv.send(request{kind: reqView, id: ds.ID()})
		if resp.stop {
			return
		}
		stage := resp.stage
		op := ds.SelectOperation(resp.view)
		if op == nil {
			resp = srv.send(request{kind: reqIdle, id: ds.ID(), stage: stage})
			if resp.stop {
				return
			}
			if resp.stale {
				continue // state moved; rebuild the view
			}
			select {
			case <-srv.wake[ds.ID()]:
			case <-srv.done:
				return
			}
			continue
		}
		resp = srv.send(request{kind: reqApply, id: ds.ID(), op: op})
		if resp.err != nil {
			return
		}
		ds.ObserveTransition(resp.tr)
		if resp.stop {
			return
		}
	}
}

func (s *server) send(req request) response {
	req.reply = make(chan response, 1)
	select {
	case s.reqs <- req:
		return <-req.reply
	case <-s.done:
		return response{stop: true}
	}
}
