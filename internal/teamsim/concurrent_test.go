package teamsim

import (
	"testing"
	"time"

	"repro/internal/dpm"
	"repro/internal/scenario"
)

func TestRunConcurrentCompletes(t *testing.T) {
	for _, mode := range []dpm.Mode{dpm.Conventional, dpm.ADPM} {
		for seed := int64(0); seed < 4; seed++ {
			r, err := RunConcurrent(Config{
				Scenario: scenario.Simplified(), Mode: mode, Seed: seed, MaxOps: 3000,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !r.Completed && !r.Deadlocked && r.Operations < 3000 {
				t.Errorf("mode %v seed %d: stopped inexplicably after %d ops", mode, seed, r.Operations)
			}
			if !r.Completed {
				t.Errorf("mode %v seed %d: did not complete (%d ops, deadlocked=%v)",
					mode, seed, r.Operations, r.Deadlocked)
			}
			if len(r.EvalsPerOp) != r.Operations {
				t.Error("series length mismatch")
			}
		}
	}
}

func TestRunConcurrentSensor(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r, err := RunConcurrent(Config{Scenario: scenario.Sensor(), Mode: dpm.ADPM, Seed: 1, MaxOps: 3000})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Completed {
		t.Errorf("sensor concurrent ADPM did not complete: %d ops", r.Operations)
	}
}

// TestRunConcurrentTerminates guards against goroutine leaks / hangs:
// the call must return promptly even across many iterations.
func TestRunConcurrentTerminates(t *testing.T) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10; i++ {
			if _, err := RunConcurrent(Config{
				Scenario: scenario.Simplified(), Mode: dpm.ADPM, Seed: int64(i), MaxOps: 500,
			}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("concurrent engine hung")
	}
}

func TestRunConcurrentMaxOps(t *testing.T) {
	r, err := RunConcurrent(Config{Scenario: scenario.Receiver(), Mode: dpm.Conventional, Seed: 4, MaxOps: 5})
	if err != nil {
		t.Fatal(err)
	}
	if r.Operations > 5 {
		t.Errorf("MaxOps=5 but executed %d", r.Operations)
	}
}

// TestMaxOpsDefaultUnified pins the shared budget default: both engines
// resolve MaxOps=0 through the same helper, so they can never diverge.
func TestMaxOpsDefaultUnified(t *testing.T) {
	if got := (Config{}).maxOps(); got != DefaultMaxOps {
		t.Errorf("zero MaxOps resolves to %d, want DefaultMaxOps=%d", got, DefaultMaxOps)
	}
	if got := (Config{MaxOps: -3}).maxOps(); got != DefaultMaxOps {
		t.Errorf("negative MaxOps resolves to %d, want DefaultMaxOps=%d", got, DefaultMaxOps)
	}
	if got := (Config{MaxOps: 7}).maxOps(); got != 7 {
		t.Errorf("explicit MaxOps resolves to %d, want 7", got)
	}
}

// TestRunConcurrentMaxOpsStress hammers the operation budget under real
// goroutine contention: many iterations, tight budgets, both modes. The
// server rejects an apply once the budget is reached *before* mutating
// the DPM, so Operations must never overshoot — a post-hoc cap would
// leave the network narrowed by operations the Result does not count.
// Run with -race in CI to catch unsynchronized budget reads.
func TestRunConcurrentMaxOpsStress(t *testing.T) {
	for i := 0; i < 20; i++ {
		budget := 1 + i%7
		mode := dpm.ADPM
		if i%2 == 1 {
			mode = dpm.Conventional
		}
		r, err := RunConcurrent(Config{
			Scenario: scenario.Receiver(), Mode: mode, Seed: int64(i), MaxOps: budget,
		})
		if err != nil {
			t.Fatal(err)
		}
		if r.Operations > budget {
			t.Fatalf("iter %d: MaxOps=%d but executed %d operations", i, budget, r.Operations)
		}
		if len(r.EvalsPerOp) != r.Operations || len(r.SpinPerOp) != r.Operations {
			t.Fatalf("iter %d: series lengths (%d, %d) disagree with Operations=%d",
				i, len(r.EvalsPerOp), len(r.SpinPerOp), r.Operations)
		}
	}
}

// TestConcurrentMatchesDeterministicOutcome verifies both engines solve
// the design (final assignments satisfy the specs), even though their
// operation interleavings differ.
func TestConcurrentMatchesDeterministicOutcome(t *testing.T) {
	r, err := RunConcurrent(Config{Scenario: scenario.Simplified(), Mode: dpm.ADPM, Seed: 9, MaxOps: 3000})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Completed {
		t.Fatalf("did not complete: %+v", r)
	}
	if gain := r.FinalValues["System_gain"]; gain < 30 {
		t.Errorf("concurrent result violates gain spec: %v", gain)
	}
	if power := r.FinalValues["Amp_power"]; power > 100 {
		t.Errorf("concurrent result violates power spec: %v", power)
	}
}
