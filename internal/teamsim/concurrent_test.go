package teamsim

import (
	"testing"
	"time"

	"repro/internal/dpm"
	"repro/internal/scenario"
)

func TestRunConcurrentCompletes(t *testing.T) {
	for _, mode := range []dpm.Mode{dpm.Conventional, dpm.ADPM} {
		for seed := int64(0); seed < 4; seed++ {
			r, err := RunConcurrent(Config{
				Scenario: scenario.Simplified(), Mode: mode, Seed: seed, MaxOps: 3000,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !r.Completed && !r.Deadlocked && r.Operations < 3000 {
				t.Errorf("mode %v seed %d: stopped inexplicably after %d ops", mode, seed, r.Operations)
			}
			if !r.Completed {
				t.Errorf("mode %v seed %d: did not complete (%d ops, deadlocked=%v)",
					mode, seed, r.Operations, r.Deadlocked)
			}
			if len(r.EvalsPerOp) != r.Operations {
				t.Error("series length mismatch")
			}
		}
	}
}

func TestRunConcurrentSensor(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r, err := RunConcurrent(Config{Scenario: scenario.Sensor(), Mode: dpm.ADPM, Seed: 1, MaxOps: 3000})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Completed {
		t.Errorf("sensor concurrent ADPM did not complete: %d ops", r.Operations)
	}
}

// TestRunConcurrentTerminates guards against goroutine leaks / hangs:
// the call must return promptly even across many iterations.
func TestRunConcurrentTerminates(t *testing.T) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10; i++ {
			if _, err := RunConcurrent(Config{
				Scenario: scenario.Simplified(), Mode: dpm.ADPM, Seed: int64(i), MaxOps: 500,
			}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("concurrent engine hung")
	}
}

func TestRunConcurrentMaxOps(t *testing.T) {
	r, err := RunConcurrent(Config{Scenario: scenario.Receiver(), Mode: dpm.Conventional, Seed: 4, MaxOps: 5})
	if err != nil {
		t.Fatal(err)
	}
	if r.Operations > 5 {
		t.Errorf("MaxOps=5 but executed %d", r.Operations)
	}
}

// TestConcurrentMatchesDeterministicOutcome verifies both engines solve
// the design (final assignments satisfy the specs), even though their
// operation interleavings differ.
func TestConcurrentMatchesDeterministicOutcome(t *testing.T) {
	r, err := RunConcurrent(Config{Scenario: scenario.Simplified(), Mode: dpm.ADPM, Seed: 9, MaxOps: 3000})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Completed {
		t.Fatalf("did not complete: %+v", r)
	}
	if gain := r.FinalValues["System_gain"]; gain < 30 {
		t.Errorf("concurrent result violates gain spec: %v", gain)
	}
	if power := r.FinalValues["Amp_power"]; power > 100 {
		t.Errorf("concurrent result violates power spec: %v", power)
	}
}
