// Package teamsim implements the design process evaluation environment
// of paper §3.1 (Fig. 5): simulated designers request operations against
// the DPM, statistics are captured per executed operation, and a run
// terminates when the top-level problem is solved, every output has a
// value, and no constraint is violated (§3.1.2).
//
// Two engines are provided: a deterministic seeded event loop (Run),
// used for all reproducible experiments, and a concurrent client/server
// engine (RunConcurrent) mirroring Minerva III's distributed
// architecture, with one goroutine per designer exchanging messages
// with a DPM server goroutine.
package teamsim

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/constraint"
	"repro/internal/dcm"
	"repro/internal/dddl"
	"repro/internal/designer"
	"repro/internal/dpm"
	"repro/internal/notify"
	"repro/internal/trace"
)

// DefaultMaxOps is the operation budget used when Config.MaxOps is 0,
// shared by Run and RunConcurrent.
const DefaultMaxOps = 5000

// Config parameterizes one simulation run.
type Config struct {
	// Scenario is the parsed DDDL problem scenario.
	Scenario *dddl.Scenario
	// Mode selects conventional (λ=F) or ADPM (λ=T) transitions.
	Mode dpm.Mode
	// Seed drives all stochastic designer choices.
	Seed int64
	// MaxOps caps the number of executed operations; 0 means 5000.
	MaxOps int
	// Heuristics toggles the designers' search heuristics; the zero
	// value means DefaultHeuristics.
	Heuristics *designer.Heuristics
	// DeltaFrac sizes conventional fix steps (0 → 0.01, the paper's
	// "around 100 times smaller than E_i").
	DeltaFrac float64
	// PropOpts tunes ADPM propagation.
	PropOpts constraint.PropagateOptions
	// Trace, when non-nil, receives a line per executed operation.
	Trace io.Writer
	// Tracer, when non-nil, receives structured trace events for the
	// whole run: run-start/run-end, one event per operation, propagate
	// and window-refresh summaries, notification deliveries, and
	// idle/wake cycles. See internal/trace.
	Tracer *trace.Recorder
}

// maxOps resolves the configured operation budget.
func (c Config) maxOps() int {
	if c.MaxOps <= 0 {
		return DefaultMaxOps
	}
	return c.MaxOps
}

// Result captures one simulation run's statistics (§3.1.2).
type Result struct {
	// Mode echoes the configured mode.
	Mode dpm.Mode
	// Seed echoes the configured seed.
	Seed int64
	// Completed is true when the termination condition was reached.
	Completed bool
	// Deadlocked is true when every designer went idle before
	// completion (a scenario or heuristic defect).
	Deadlocked bool
	// Operations is N_O, the total number of executed operations.
	Operations int
	// Evaluations is the total number of constraint evaluations
	// (the paper's CAD-resource consumption proxy).
	Evaluations int64
	// Spins counts operations motivated by cross-subsystem violations.
	Spins int
	// NewViolationsPerOp[i] is the number of violations found upon
	// executed operation i (Fig. 7a).
	NewViolationsPerOp []int
	// EvalsPerOp[i] is the number of constraint evaluations due to
	// operation i (Fig. 7b).
	EvalsPerOp []int64
	// OpenViolationsPerOp[i] is the number of violations outstanding
	// after operation i (Fig. 8's violations trace).
	OpenViolationsPerOp []int
	// SpinPerOp[i] is true when operation i was a design spin (Fig. 8's
	// cumulative spin trace).
	SpinPerOp []bool
	// Notifications counts NM deliveries to designers.
	Notifications int
	// FinalValues holds the bound value of every numeric property at
	// termination.
	FinalValues map[string]float64
	// Process is the final design process state: constraint network,
	// problem hierarchy, and the full operation history H_n. Useful for
	// post-simulation inspection (browsers, history analysis).
	Process *dpm.DPM
}

// EvalsPerOpMean returns N_E, the average number of evaluations per
// executed operation (N_T = N_E × N_O, §3.1.2).
func (r *Result) EvalsPerOpMean() float64 {
	if r.Operations == 0 {
		return 0
	}
	return float64(r.Evaluations) / float64(r.Operations)
}

// Run executes one deterministic simulation.
func Run(cfg Config) (*Result, error) {
	if cfg.Scenario == nil {
		return nil, fmt.Errorf("teamsim: Config.Scenario is required")
	}
	maxOps := cfg.maxOps()
	d, err := dpm.FromScenario(cfg.Scenario, cfg.Mode)
	if err != nil {
		return nil, err
	}
	d.PropOpts = cfg.PropOpts

	master := rand.New(rand.NewSource(cfg.Seed))
	team, err := buildTeam(cfg, d, master)
	if err != nil {
		return nil, err
	}
	bus := subscribeTeam(d, team)

	rec := cfg.Tracer
	d.SetTracer(rec)
	bus.SetTracer(rec)
	if rec.Enabled() {
		rec.Emit(trace.Event{Kind: trace.KindRunStart,
			Scenario: cfg.Scenario.Name, Mode: cfg.Mode.String(), Seed: cfg.Seed})
	}

	res := &Result{Mode: cfg.Mode, Seed: cfg.Seed}
	order := make([]int, len(team))
	for i := range order {
		order[i] = i
	}

	for res.Operations < maxOps && !d.Done() {
		// Designers act independently; the loop visits them in a
		// seed-shuffled order each round.
		master.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		acted := false
		for _, idx := range order {
			if res.Operations >= maxOps || d.Done() {
				break
			}
			ds := team[idx]
			bus.Drain(ds.ID()) // consume pending notifications
			view := dcm.BuildView(d, ds.ID())
			op := ds.SelectOperation(view)
			if op == nil {
				// Round-level idleness; per-designer events only at full
				// detail (every idle designer re-idles each round).
				if rec.FullDetail() {
					rec.Emit(trace.Event{Kind: trace.KindIdle, Stage: d.Stage(), Designer: ds.ID()})
				}
				continue
			}
			tr, err := d.Apply(*op)
			if err != nil {
				return nil, fmt.Errorf("teamsim: applying %v: %w", op, err)
			}
			ds.ObserveTransition(tr)
			recordTransition(res, tr)
			publishTransition(bus, res, tr)
			if cfg.Trace != nil {
				fmt.Fprintf(cfg.Trace, "op %4d: %s | new-violations=%d evals=%d\n",
					tr.Stage, tr.Op.String(), len(tr.NewViolations), tr.Evaluations)
			}
			acted = true
		}
		if !acted {
			res.Deadlocked = true
			break
		}
	}
	finishResult(res, d)
	emitRunEnd(rec, res)
	return res, nil
}

// emitRunEnd closes a traced run with the final Result metrics; the
// validator and the differential test reconcile the summed per-event
// counters against exactly these numbers.
func emitRunEnd(rec *trace.Recorder, res *Result) {
	if !rec.Enabled() {
		return
	}
	rec.Emit(trace.Event{
		Kind:          trace.KindRunEnd,
		Mode:          res.Mode.String(),
		Seed:          res.Seed,
		Completed:     res.Completed,
		Deadlocked:    res.Deadlocked,
		Operations:    res.Operations,
		Evaluations:   res.Evaluations,
		Spins:         res.Spins,
		Notifications: res.Notifications,
	})
}

// DisabledHeuristics returns a heuristic set with every toggle off —
// designers degrade to random search. Used by ablation experiments.
func DisabledHeuristics() designer.Heuristics { return designer.Heuristics{} }

// buildTeam creates one simulated designer per problem owner.
func buildTeam(cfg Config, d *dpm.DPM, master *rand.Rand) ([]*designer.Designer, error) {
	owners := cfg.Scenario.Owners()
	if len(owners) == 0 {
		return nil, fmt.Errorf("teamsim: scenario declares no problem owners")
	}
	h := designer.DefaultHeuristics()
	if cfg.Heuristics != nil {
		h = *cfg.Heuristics
	}
	team := make([]*designer.Designer, len(owners))
	for i, o := range owners {
		ds, err := designer.New(designer.Config{
			ID:         o,
			Heuristics: h,
			DeltaFrac:  cfg.DeltaFrac,
			Rand:       rand.New(rand.NewSource(master.Int63())),
		})
		if err != nil {
			return nil, fmt.Errorf("teamsim: designer %q: %w", o, err)
		}
		team[i] = ds
	}
	return team, nil
}

// subscribeTeam registers every designer on the notification bus with
// the NM relevance filter derived from their current concern set.
func subscribeTeam(d *dpm.DPM, team []*designer.Designer) *notify.Bus {
	ids := make([]string, len(team))
	for i, ds := range team {
		ids[i] = ds.ID()
	}
	return subscribeOwners(d, ids)
}

func recordTransition(res *Result, tr *dpm.Transition) {
	res.Operations++
	res.Evaluations += tr.Evaluations
	if tr.IsSpin {
		res.Spins++
	}
	res.NewViolationsPerOp = append(res.NewViolationsPerOp, len(tr.NewViolations))
	res.EvalsPerOp = append(res.EvalsPerOp, tr.Evaluations)
	res.OpenViolationsPerOp = append(res.OpenViolationsPerOp, len(tr.ViolationsAfter))
	res.SpinPerOp = append(res.SpinPerOp, tr.IsSpin)
}

func publishTransition(bus *notify.Bus, res *Result, tr *dpm.Transition) []notify.Event {
	events := notify.DiffEvents(tr.Stage, tr.ViolationsBefore, tr.ViolationsAfter, tr.Narrowed, tr.Emptied)
	for _, e := range events {
		res.Notifications += bus.Publish(e)
	}
	return events
}

func finishResult(res *Result, d *dpm.DPM) {
	res.Completed = d.Done()
	res.Process = d
	res.FinalValues = map[string]float64{}
	for _, p := range d.Net.Properties() {
		if v, ok := p.Value(); ok && !v.IsString() {
			res.FinalValues[p.Name] = v.Num()
		}
	}
}
