package teamsim

import (
	"strings"
	"testing"

	"repro/internal/dpm"
	"repro/internal/notify"
	"repro/internal/scenario"
)

func TestRunRequiresScenario(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("Run without scenario accepted")
	}
	if _, err := RunConcurrent(Config{}); err == nil {
		t.Error("RunConcurrent without scenario accepted")
	}
}

func TestRunSimplifiedBothModesComplete(t *testing.T) {
	for _, mode := range []dpm.Mode{dpm.Conventional, dpm.ADPM} {
		for seed := int64(0); seed < 10; seed++ {
			r, err := Run(Config{Scenario: scenario.Simplified(), Mode: mode, Seed: seed, MaxOps: 3000})
			if err != nil {
				t.Fatal(err)
			}
			if !r.Completed {
				t.Errorf("mode %v seed %d did not complete (%d ops, deadlocked=%v)",
					mode, seed, r.Operations, r.Deadlocked)
			}
			if r.Deadlocked {
				t.Errorf("mode %v seed %d deadlocked", mode, seed)
			}
			if r.Operations <= 0 || r.Evaluations <= 0 {
				t.Errorf("mode %v seed %d: empty result %+v", mode, seed, r)
			}
			if len(r.NewViolationsPerOp) != r.Operations ||
				len(r.EvalsPerOp) != r.Operations ||
				len(r.OpenViolationsPerOp) != r.Operations {
				t.Errorf("series lengths inconsistent with op count")
			}
			// Termination condition: no violations open at the end.
			if last := r.OpenViolationsPerOp[r.Operations-1]; last != 0 {
				t.Errorf("completed run ends with %d open violations", last)
			}
		}
	}
}

func TestRunDeterministicForSeed(t *testing.T) {
	for _, mode := range []dpm.Mode{dpm.Conventional, dpm.ADPM} {
		a, err := Run(Config{Scenario: scenario.Simplified(), Mode: mode, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(Config{Scenario: scenario.Simplified(), Mode: mode, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		if a.Operations != b.Operations || a.Evaluations != b.Evaluations || a.Spins != b.Spins {
			t.Errorf("mode %v: nondeterministic results: %+v vs %+v", mode, a, b)
		}
		for p, v := range a.FinalValues {
			if b.FinalValues[p] != v {
				t.Errorf("mode %v: final value %s differs", mode, p)
			}
		}
	}
}

func TestRunSeedsDiffer(t *testing.T) {
	// Different seeds should (almost always) yield different conventional
	// trajectories.
	ops := map[int]bool{}
	for seed := int64(0); seed < 8; seed++ {
		r, err := Run(Config{Scenario: scenario.Simplified(), Mode: dpm.Conventional, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		ops[r.Operations] = true
	}
	if len(ops) < 2 {
		t.Error("eight seeds produced identical op counts; randomness broken?")
	}
}

func TestRunMaxOpsCap(t *testing.T) {
	r, err := Run(Config{Scenario: scenario.Receiver(), Mode: dpm.Conventional, Seed: 4, MaxOps: 5})
	if err != nil {
		t.Fatal(err)
	}
	if r.Operations > 5 {
		t.Errorf("MaxOps=5 but executed %d", r.Operations)
	}
	if r.Completed {
		t.Error("5 ops cannot complete the receiver")
	}
}

func TestRunTraceOutput(t *testing.T) {
	var sb strings.Builder
	if _, err := Run(Config{Scenario: scenario.Simplified(), Mode: dpm.ADPM, Seed: 1, Trace: &sb}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "synthesis") || !strings.Contains(out, "evals=") {
		t.Errorf("trace output missing expected fields:\n%s", out)
	}
}

func TestRunFinalValuesWithinDomains(t *testing.T) {
	r, err := Run(Config{Scenario: scenario.Simplified(), Mode: dpm.ADPM, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	scn := scenario.Simplified()
	for prop, val := range r.FinalValues {
		pd := scn.Property(prop)
		if pd == nil {
			t.Errorf("final value for unknown property %s", prop)
			continue
		}
		if pd.IsDerived() {
			continue // derived ranges are loose envelopes
		}
		iv, ok := pd.Domain.Interval()
		if ok && !iv.Contains(val) {
			t.Errorf("%s = %v outside E_i %v", prop, val, iv)
		}
	}
	// The gain requirement must actually hold at the final point.
	gain := r.FinalValues["System_gain"]
	if gain < 30 {
		t.Errorf("final System_gain = %v < 30", gain)
	}
	if power := r.FinalValues["Amp_power"]; power > 100 {
		t.Errorf("final Amp_power = %v > 100", power)
	}
}

func TestADPMBeatsConventionalOnOps(t *testing.T) {
	// Aggregate over a handful of seeds: the paper's headline result.
	convOps, adpmOps := 0, 0
	for seed := int64(0); seed < 8; seed++ {
		c, err := Run(Config{Scenario: scenario.Simplified(), Mode: dpm.Conventional, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		a, err := Run(Config{Scenario: scenario.Simplified(), Mode: dpm.ADPM, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		convOps += c.Operations
		adpmOps += a.Operations
	}
	if convOps < 2*adpmOps {
		t.Errorf("conventional ops %d not at least 2x ADPM ops %d", convOps, adpmOps)
	}
}

func TestADPMCostsMoreEvalsPerOp(t *testing.T) {
	c, err := Run(Config{Scenario: scenario.Simplified(), Mode: dpm.Conventional, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(Config{Scenario: scenario.Simplified(), Mode: dpm.ADPM, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if a.EvalsPerOpMean() <= c.EvalsPerOpMean() {
		t.Errorf("ADPM evals/op %.1f not above conventional %.1f",
			a.EvalsPerOpMean(), c.EvalsPerOpMean())
	}
}

func TestNotificationsDelivered(t *testing.T) {
	// The conventional flow produces violation events at verification
	// time; designers subscribed via the NM must receive them.
	total := 0
	for seed := int64(0); seed < 5; seed++ {
		r, err := Run(Config{Scenario: scenario.Simplified(), Mode: dpm.Conventional, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		total += r.Notifications
	}
	if total == 0 {
		t.Error("no notifications delivered across 5 runs")
	}
}

func TestEvalsPerOpMeanZeroOps(t *testing.T) {
	r := &Result{}
	if r.EvalsPerOpMean() != 0 {
		t.Error("zero-op mean should be 0")
	}
}

func TestHeuristicAblationChangesBehavior(t *testing.T) {
	// With every ADPM heuristic disabled, designers degrade to random
	// choices; ops should rise markedly versus the full heuristic set.
	off := DisabledHeuristics()
	fullOps, offOps := 0, 0
	for seed := int64(0); seed < 6; seed++ {
		full, err := Run(Config{Scenario: scenario.Simplified(), Mode: dpm.ADPM, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		bare, err := Run(Config{Scenario: scenario.Simplified(), Mode: dpm.ADPM, Seed: seed, Heuristics: &off, MaxOps: 3000})
		if err != nil {
			t.Fatal(err)
		}
		fullOps += full.Operations
		offOps += bare.Operations
	}
	if offOps <= fullOps {
		t.Errorf("heuristics off (%d ops) not worse than on (%d ops)", offOps, fullOps)
	}
}

// TestPublishTransitionEmptied pins the previously broken wiring from
// Transition.Emptied to SubspaceEmptied events: an emptied property
// produces exactly one SubspaceEmptied and no SubspaceReduced, even when
// it also appears in Narrowed (an emptied subspace necessarily shrank).
func TestPublishTransitionEmptied(t *testing.T) {
	bus := notify.NewBus()
	bus.Subscribe("watcher", nil)
	res := &Result{}
	tr := &dpm.Transition{
		Stage:    4,
		Narrowed: []string{"p", "q"},
		Emptied:  []string{"p"},
	}
	publishTransition(bus, res, tr)
	var emptied, reduced []string
	for _, e := range bus.Drain("watcher") {
		switch e.Kind {
		case notify.SubspaceEmptied:
			emptied = append(emptied, e.Property)
		case notify.SubspaceReduced:
			reduced = append(reduced, e.Property)
		}
	}
	if len(emptied) != 1 || emptied[0] != "p" {
		t.Errorf("SubspaceEmptied events = %v, want exactly [p]", emptied)
	}
	if len(reduced) != 1 || reduced[0] != "q" {
		t.Errorf("SubspaceReduced events = %v, want exactly [q]", reduced)
	}
	if res.Notifications != 2 {
		t.Errorf("Notifications = %d, want 2", res.Notifications)
	}
}
