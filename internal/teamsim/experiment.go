package teamsim

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/dpm"
	"repro/internal/stats"
)

// MultiResult aggregates many seeded runs of one configuration — the
// paper's evaluation executes "over 60 simulations ... varying the
// value of the random seed" per case and mode (§3.2).
type MultiResult struct {
	// Results holds the per-seed results, in seed order.
	Results []*Result
	// Ops summarizes the number of executed operations (Fig. 9a).
	Ops stats.Summary
	// Evals summarizes total constraint evaluations (Fig. 9b).
	Evals stats.Summary
	// EvalsPerOp summarizes the per-operation evaluation averages
	// (Fig. 9b's second bar group).
	EvalsPerOp stats.Summary
	// Spins summarizes design spins per run.
	Spins stats.Summary
	// Completed counts runs reaching the termination condition.
	Completed int
}

// RunMany executes runs simulations with seeds cfg.Seed, cfg.Seed+1, …
// using up to parallelism goroutines (0 = GOMAXPROCS). The per-seed
// engines are fully independent, so the fan-out is embarrassingly
// parallel; results are returned in deterministic seed order.
func RunMany(cfg Config, runs, parallelism int) (*MultiResult, error) {
	if runs <= 0 {
		return nil, fmt.Errorf("teamsim: runs must be positive")
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > runs {
		parallelism = runs
	}

	results := make([]*Result, runs)
	errs := make([]error, runs)
	var wg sync.WaitGroup
	sem := make(chan struct{}, parallelism)
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			c := cfg
			c.Seed = cfg.Seed + int64(i)
			c.Trace = nil  // traces interleave nondeterministically
			c.Tracer = nil // a shared recorder would mix runs
			results[i], errs[i] = Run(c)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return Aggregate(results), nil
}

// Aggregate summarizes a result set.
func Aggregate(results []*Result) *MultiResult {
	m := &MultiResult{Results: results}
	var ops, spins []int
	var evals []int64
	var epo []float64
	for _, r := range results {
		ops = append(ops, r.Operations)
		evals = append(evals, r.Evaluations)
		spins = append(spins, r.Spins)
		epo = append(epo, r.EvalsPerOpMean())
		if r.Completed {
			m.Completed++
		}
	}
	m.Ops = stats.SummarizeInts(ops)
	m.Evals = stats.SummarizeInt64s(evals)
	m.Spins = stats.SummarizeInts(spins)
	m.EvalsPerOp = stats.Summarize(epo)
	return m
}

// OpsSamples returns the per-run operation counts as floats (for
// bootstrap statistics).
func (m *MultiResult) OpsSamples() []float64 {
	out := make([]float64, len(m.Results))
	for i, r := range m.Results {
		out[i] = float64(r.Operations)
	}
	return out
}

// SpinsSamples returns the per-run spin counts as floats.
func (m *MultiResult) SpinsSamples() []float64 {
	out := make([]float64, len(m.Results))
	for i, r := range m.Results {
		out[i] = float64(r.Spins)
	}
	return out
}

// EvalsSamples returns the per-run evaluation totals as floats.
func (m *MultiResult) EvalsSamples() []float64 {
	out := make([]float64, len(m.Results))
	for i, r := range m.Results {
		out[i] = float64(r.Evaluations)
	}
	return out
}

// OpsRatioCI bootstraps a confidence interval for the conventional/ADPM
// operations ratio.
func (c *Comparison) OpsRatioCI(level float64) stats.CI {
	return stats.BootstrapRatioCI(c.Conventional.OpsSamples(), c.ADPM.OpsSamples(), level, 2000, 1)
}

// SpinRatioCI bootstraps a confidence interval for the ADPM/conventional
// spin ratio.
func (c *Comparison) SpinRatioCI(level float64) stats.CI {
	return stats.BootstrapRatioCI(c.ADPM.SpinsSamples(), c.Conventional.SpinsSamples(), level, 2000, 2)
}

// OpsWelchT returns Welch's t statistic for the difference in mean
// operations between the modes.
func (c *Comparison) OpsWelchT() (t, df float64) {
	return stats.WelchT(c.Conventional.OpsSamples(), c.ADPM.OpsSamples())
}

// CompletionRate returns the fraction of runs that completed.
func (m *MultiResult) CompletionRate() float64 {
	if len(m.Results) == 0 {
		return 0
	}
	return float64(m.Completed) / float64(len(m.Results))
}

// Comparison holds the conventional-vs-ADPM aggregates for one design
// case, the unit of Fig. 9.
type Comparison struct {
	Case         string
	Conventional *MultiResult
	ADPM         *MultiResult
}

// OpsRatio returns conventional mean operations / ADPM mean operations
// (the paper reports "at least twice as many operations ... using the
// conventional approach").
func (c *Comparison) OpsRatio() float64 {
	if c.ADPM.Ops.Mean == 0 {
		return 0
	}
	return c.Conventional.Ops.Mean / c.ADPM.Ops.Mean
}

// StdRatio returns conventional std / ADPM std of operations (the paper
// reports ADPM "at least 3 times less variable").
func (c *Comparison) StdRatio() float64 {
	if c.ADPM.Ops.Std == 0 {
		return 0
	}
	return c.Conventional.Ops.Std / c.ADPM.Ops.Std
}

// SpinRatio returns ADPM mean spins / conventional mean spins (the
// paper reports ADPM spins were 7% of conventional).
func (c *Comparison) SpinRatio() float64 {
	if c.Conventional.Spins.Mean == 0 {
		return 0
	}
	return c.ADPM.Spins.Mean / c.Conventional.Spins.Mean
}

// EvalPenaltyTotal returns ADPM mean total evaluations / conventional
// mean total evaluations (Fig. 9b, total bars).
func (c *Comparison) EvalPenaltyTotal() float64 {
	if c.Conventional.Evals.Mean == 0 {
		return 0
	}
	return c.ADPM.Evals.Mean / c.Conventional.Evals.Mean
}

// EvalPenaltyPerOp returns the per-operation evaluation penalty ratio
// (Fig. 9b, per-op bars; the paper notes it exceeds the total penalty).
func (c *Comparison) EvalPenaltyPerOp() float64 {
	if c.Conventional.EvalsPerOp.Mean == 0 {
		return 0
	}
	return c.ADPM.EvalsPerOp.Mean / c.Conventional.EvalsPerOp.Mean
}

// Compare runs both modes over the same seed block and aggregates.
func Compare(name string, cfg Config, runs, parallelism int) (*Comparison, error) {
	conv := cfg
	conv.Mode = dpm.Conventional
	convRes, err := RunMany(conv, runs, parallelism)
	if err != nil {
		return nil, fmt.Errorf("teamsim: conventional runs: %w", err)
	}
	adpm := cfg
	adpm.Mode = dpm.ADPM
	adpmRes, err := RunMany(adpm, runs, parallelism)
	if err != nil {
		return nil, fmt.Errorf("teamsim: ADPM runs: %w", err)
	}
	return &Comparison{Case: name, Conventional: convRes, ADPM: adpmRes}, nil
}
