package teamsim

import (
	"testing"

	"repro/internal/dpm"
	"repro/internal/scenario"
)

func TestRunManyAggregates(t *testing.T) {
	m, err := RunMany(Config{Scenario: scenario.Simplified(), Mode: dpm.ADPM, Seed: 1}, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Results) != 8 {
		t.Fatalf("results = %d", len(m.Results))
	}
	if m.Ops.N != 8 || m.Evals.N != 8 || m.Spins.N != 8 || m.EvalsPerOp.N != 8 {
		t.Error("summaries incomplete")
	}
	if m.Completed != 8 || m.CompletionRate() != 1 {
		t.Errorf("completed = %d rate = %v", m.Completed, m.CompletionRate())
	}
	// Seed order must be deterministic: Results[i] has Seed base+i.
	for i, r := range m.Results {
		if r.Seed != 1+int64(i) {
			t.Errorf("result %d has seed %d", i, r.Seed)
		}
	}
}

func TestRunManyMatchesSequentialRuns(t *testing.T) {
	m, err := RunMany(Config{Scenario: scenario.Simplified(), Mode: dpm.Conventional, Seed: 5}, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		single, err := Run(Config{Scenario: scenario.Simplified(), Mode: dpm.Conventional, Seed: 5 + int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		if single.Operations != m.Results[i].Operations {
			t.Errorf("parallel run %d diverges from sequential (%d vs %d ops)",
				i, m.Results[i].Operations, single.Operations)
		}
	}
}

func TestRunManyValidation(t *testing.T) {
	if _, err := RunMany(Config{Scenario: scenario.Simplified()}, 0, 1); err == nil {
		t.Error("runs=0 accepted")
	}
	if _, err := RunMany(Config{}, 2, 1); err == nil {
		t.Error("missing scenario accepted")
	}
}

func TestAggregateEmpty(t *testing.T) {
	m := Aggregate(nil)
	if m.CompletionRate() != 0 || m.Ops.N != 0 {
		t.Error("empty aggregate misbehaves")
	}
}

func TestCompareRatios(t *testing.T) {
	cmp, err := Compare("simplified", Config{Scenario: scenario.Simplified(), Seed: 1, MaxOps: 3000}, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Case != "simplified" {
		t.Error("case label lost")
	}
	if cmp.Conventional.Ops.Mean <= 0 || cmp.ADPM.Ops.Mean <= 0 {
		t.Fatal("means missing")
	}
	// The paper's headline: conventional needs at least twice the
	// operations of ADPM.
	if r := cmp.OpsRatio(); r < 2 {
		t.Errorf("OpsRatio = %.2f, want >= 2", r)
	}
	// ADPM pays a per-operation evaluation penalty.
	if r := cmp.EvalPenaltyPerOp(); r <= 1 {
		t.Errorf("EvalPenaltyPerOp = %.2f, want > 1", r)
	}
	// Per-op penalty exceeds total penalty (Fig. 7b / 9b analysis).
	if cmp.EvalPenaltyPerOp() <= cmp.EvalPenaltyTotal() {
		t.Errorf("per-op penalty %.2f should exceed total penalty %.2f",
			cmp.EvalPenaltyPerOp(), cmp.EvalPenaltyTotal())
	}
}

func TestComparisonRatioZeroGuards(t *testing.T) {
	c := &Comparison{
		Conventional: Aggregate([]*Result{{}}),
		ADPM:         Aggregate([]*Result{{}}),
	}
	if c.OpsRatio() != 0 || c.StdRatio() != 0 || c.SpinRatio() != 0 ||
		c.EvalPenaltyTotal() != 0 || c.EvalPenaltyPerOp() != 0 {
		t.Error("zero-denominator ratios should be 0")
	}
}
