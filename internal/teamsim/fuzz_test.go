package teamsim

import (
	"testing"

	"repro/internal/dpm"
	"repro/internal/scenario"
)

// TestRandomScenariosCompleteBothModes is the pipeline-level property
// test: for generated (satisfiable-by-construction) scenarios of
// varying team sizes, TeamSim must complete the design process in both
// modes, and ADPM must never lose to the conventional approach on
// aggregate operations.
func TestRandomScenariosCompleteBothModes(t *testing.T) {
	seeds := 12
	if testing.Short() {
		seeds = 4
	}
	totalConv, totalADPM := 0, 0
	for seed := int64(0); seed < int64(seeds); seed++ {
		scn := scenario.MustRandom(seed, 1+int(seed%4))
		for _, mode := range []dpm.Mode{dpm.Conventional, dpm.ADPM} {
			r, err := Run(Config{Scenario: scn, Mode: mode, Seed: seed + 100, MaxOps: 4000})
			if err != nil {
				t.Fatalf("seed %d mode %v: %v", seed, mode, err)
			}
			if !r.Completed {
				t.Errorf("seed %d mode %v: did not complete (%d ops, deadlocked=%v, violations open=%d)",
					seed, mode, r.Operations, r.Deadlocked,
					r.OpenViolationsPerOp[len(r.OpenViolationsPerOp)-1])
				continue
			}
			if mode == dpm.Conventional {
				totalConv += r.Operations
			} else {
				totalADPM += r.Operations
			}
			// Completed runs must satisfy every requirement at the final
			// point: re-verify through the final process.
			for _, c := range r.Process.Net.Constraints() {
				if holds, known := c.HoldsAt(r.Process.Net); known && !holds {
					t.Errorf("seed %d mode %v: completed run violates %s", seed, mode, c.Name)
				}
			}
		}
	}
	if totalADPM >= totalConv {
		t.Errorf("ADPM aggregate ops %d not below conventional %d across random scenarios",
			totalADPM, totalConv)
	}
}

// TestRandomScenariosConcurrentEngine runs a subset through the
// goroutine-per-designer engine.
func TestRandomScenariosConcurrentEngine(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		scn := scenario.MustRandom(seed, 2+int(seed%3))
		r, err := RunConcurrent(Config{Scenario: scn, Mode: dpm.ADPM, Seed: seed, MaxOps: 4000})
		if err != nil {
			t.Fatal(err)
		}
		if !r.Completed {
			t.Errorf("seed %d: concurrent run did not complete (%d ops, deadlocked=%v)",
				seed, r.Operations, r.Deadlocked)
		}
	}
}
