package teamsim

import (
	"encoding/json"
	"io"

	"repro/internal/domain"
	"repro/internal/dpm"
)

// Report is the JSON-serializable form of a simulation run: the
// consolidated statistics TeamSim captures for post-simulation analysis
// (§3.1.2), including the full operation history.
type Report struct {
	Mode       string  `json:"mode"`
	Seed       int64   `json:"seed"`
	Completed  bool    `json:"completed"`
	Deadlocked bool    `json:"deadlocked"`
	Operations int     `json:"operations"`
	Evals      int64   `json:"evaluations"`
	EvalsPerOp float64 `json:"evaluations_per_operation"`
	Spins      int     `json:"spins"`

	// Series hold the per-operation statistics of Figs. 7 and 8.
	NewViolationsPerOp  []int   `json:"new_violations_per_op"`
	OpenViolationsPerOp []int   `json:"open_violations_per_op"`
	EvalsPerOpSeries    []int64 `json:"evals_per_op"`

	FinalValues map[string]float64 `json:"final_values"`

	// History lists every executed operation (present when the Result
	// still carries its process).
	History []HistoryEntry `json:"history,omitempty"`
}

// HistoryEntry is one executed design operation in the history H_n.
type HistoryEntry struct {
	Stage       int                `json:"stage"`
	Kind        string             `json:"kind"`
	Problem     string             `json:"problem"`
	Designer    string             `json:"designer"`
	Assignments map[string]float64 `json:"assignments,omitempty"`
	Verify      []string           `json:"verify,omitempty"`
	MotivatedBy []string           `json:"motivated_by,omitempty"`
	NewViol     []string           `json:"new_violations,omitempty"`
	Evals       int64              `json:"evaluations"`
	Spin        bool               `json:"spin,omitempty"`
}

// BuildReport converts a Result into its serializable form.
func BuildReport(r *Result) *Report {
	rep := &Report{
		Mode:                r.Mode.String(),
		Seed:                r.Seed,
		Completed:           r.Completed,
		Deadlocked:          r.Deadlocked,
		Operations:          r.Operations,
		Evals:               r.Evaluations,
		EvalsPerOp:          r.EvalsPerOpMean(),
		Spins:               r.Spins,
		NewViolationsPerOp:  r.NewViolationsPerOp,
		OpenViolationsPerOp: r.OpenViolationsPerOp,
		EvalsPerOpSeries:    r.EvalsPerOp,
		FinalValues:         r.FinalValues,
	}
	if r.Process != nil {
		for _, tr := range r.Process.History() {
			e := HistoryEntry{
				Stage:       tr.Stage,
				Kind:        tr.Op.Kind.String(),
				Problem:     tr.Op.Problem,
				Designer:    tr.Op.Designer,
				Verify:      tr.Op.Verify,
				MotivatedBy: tr.Op.MotivatedBy,
				NewViol:     tr.NewViolations,
				Evals:       tr.Evaluations,
				Spin:        tr.IsSpin,
			}
			if tr.Op.Kind == dpm.OpSynthesis {
				e.Assignments = map[string]float64{}
				for _, a := range tr.Op.Assignments {
					if !a.Value.IsString() {
						e.Assignments[a.Prop] = a.Value.Num()
					}
				}
			}
			rep.History = append(rep.History, e)
		}
	}
	return rep
}

// WriteJSON writes the run's report as indented JSON.
func (r *Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(BuildReport(r))
}

// ReadReport parses a report previously written by WriteJSON.
func ReadReport(r io.Reader) (*Report, error) {
	var rep Report
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, err
	}
	return &rep, nil
}

// Replay re-executes a report's history against a fresh process built
// from the scenario and returns the resulting process. It verifies the
// engine's determinism contract: replaying a deterministic run must
// reproduce the same final state.
func Replay(cfg Config, rep *Report) (*dpm.DPM, error) {
	d, err := dpm.FromScenario(cfg.Scenario, cfg.Mode)
	if err != nil {
		return nil, err
	}
	d.PropOpts = cfg.PropOpts
	for _, e := range rep.History {
		op := dpm.Operation{
			Problem:     e.Problem,
			Designer:    e.Designer,
			Verify:      e.Verify,
			MotivatedBy: e.MotivatedBy,
		}
		switch e.Kind {
		case "synthesis":
			op.Kind = dpm.OpSynthesis
			for prop, v := range e.Assignments {
				op.Assignments = append(op.Assignments, dpm.Assignment{Prop: prop, Value: domain.Real(v)})
			}
		case "verification":
			op.Kind = dpm.OpVerification
		case "decomposition":
			op.Kind = dpm.OpDecomposition
		}
		if _, err := d.Apply(op); err != nil {
			return nil, err
		}
	}
	return d, nil
}
