package teamsim

import (
	"strings"
	"testing"

	"repro/internal/dpm"
	"repro/internal/scenario"
)

func TestReportRoundTrip(t *testing.T) {
	r, err := Run(Config{Scenario: scenario.Simplified(), Mode: dpm.ADPM, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	rep, err := ReadReport(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Operations != r.Operations || rep.Evals != r.Evaluations ||
		rep.Spins != r.Spins || rep.Completed != r.Completed {
		t.Errorf("report lost statistics: %+v", rep)
	}
	if len(rep.History) != r.Operations {
		t.Errorf("history entries %d != operations %d", len(rep.History), r.Operations)
	}
	if rep.Mode != "ADPM" || rep.Seed != 5 {
		t.Errorf("metadata wrong: %+v", rep)
	}
	for prop, v := range r.FinalValues {
		if rep.FinalValues[prop] != v {
			t.Errorf("final value %s lost", prop)
		}
	}
}

func TestReplayReproducesFinalState(t *testing.T) {
	for _, mode := range []dpm.Mode{dpm.Conventional, dpm.ADPM} {
		cfg := Config{Scenario: scenario.Simplified(), Mode: mode, Seed: 3}
		r, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep := BuildReport(r)
		d, err := Replay(cfg, rep)
		if err != nil {
			t.Fatalf("mode %v: replay failed: %v", mode, err)
		}
		if d.Done() != r.Completed {
			t.Errorf("mode %v: replay completion %v != original %v", mode, d.Done(), r.Completed)
		}
		for prop, want := range r.FinalValues {
			v, ok := d.Net.Property(prop).Value()
			if !ok || v.Num() != want {
				t.Errorf("mode %v: replayed %s = %v, want %v", mode, prop, v, want)
			}
		}
		// Total evaluation counters (including the initial propagation)
		// must agree between the original process and its replay.
		if d.Net.EvalCount() != r.Process.Net.EvalCount() {
			t.Errorf("mode %v: replay evals %d != original %d",
				mode, d.Net.EvalCount(), r.Process.Net.EvalCount())
		}
	}
}

func TestReadReportRejectsGarbage(t *testing.T) {
	if _, err := ReadReport(strings.NewReader("{not json")); err == nil {
		t.Error("garbage accepted")
	}
}
