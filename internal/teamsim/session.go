package teamsim

import (
	"errors"
	"fmt"

	"repro/internal/constraint"
	"repro/internal/dcm"
	"repro/internal/dddl"
	"repro/internal/dpm"
	"repro/internal/notify"
	"repro/internal/trace"
)

// ErrOpBudget is returned by Session.Apply when the session's operation
// budget is exhausted. The operation was not applied: the budget is
// checked before the next-state function δ runs, so a session can never
// execute more than MaxOps operations — a post-hoc cap would leave the
// network narrowed by operations the Result does not count.
var ErrOpBudget = errors.New("teamsim: operation budget exhausted")

// Session bundles one live design session: the DPM owning the design
// state, the notification bus with one subscription per problem owner,
// and the accumulating Result, with the operation budget enforced
// before every apply.
//
// Both the concurrent engine's DPM-server goroutine (RunConcurrent)
// and internal/server's shard loops execute operations exclusively
// through Session.Apply, so the budget-check-before-δ invariant lives
// in exactly one place and cannot regress in only one host.
//
// A Session is not safe for concurrent use; hosts serialize access
// (the concurrent engine on its server goroutine, internal/server on
// the owning shard's event loop).
type Session struct {
	// D is the design process manager holding network, hierarchy, and
	// history.
	D *dpm.DPM
	// Bus is the Notification Manager bus; Apply publishes transition
	// diff events through it.
	Bus *notify.Bus
	// Res accumulates the run statistics across applies.
	Res *Result
	// MaxOps is the resolved operation budget (always > 0).
	MaxOps int
	// OnEvents, when non-nil, receives each applied transition's
	// notification events right after they are published on Bus. Hosts
	// use it to feed live subscriber fan-out (internal/server's SSE hub)
	// without the engine knowing about transports; because Apply is
	// deterministic, a replayed history invokes the hook with exactly
	// the events of the original run.
	OnEvents func(events []notify.Event)
}

// NewSession builds a standalone session from a scenario: a DPM (with
// initial propagation in ADPM mode), a bus with the NM relevance filter
// of every problem owner, and a zero Result. maxOps <= 0 selects
// DefaultMaxOps — the same resolution Config.maxOps applies for the
// simulation engines.
func NewSession(scn *dddl.Scenario, mode dpm.Mode, maxOps int, opts constraint.PropagateOptions) (*Session, error) {
	if scn == nil {
		return nil, fmt.Errorf("teamsim: scenario is required")
	}
	if maxOps <= 0 {
		maxOps = DefaultMaxOps
	}
	d, err := dpm.FromScenario(scn, mode)
	if err != nil {
		return nil, err
	}
	d.PropOpts = opts
	return &Session{
		D:      d,
		Bus:    subscribeOwners(d, scn.Owners()),
		Res:    &Result{Mode: mode},
		MaxOps: maxOps,
	}, nil
}

// SetTracer attaches a trace recorder to the session's DPM and bus;
// nil detaches both.
func (s *Session) SetTracer(rec *trace.Recorder) {
	s.D.SetTracer(rec)
	s.Bus.SetTracer(rec)
}

// Apply executes one design operation against the session. The budget
// check happens before δ executes: the operation that would exceed
// MaxOps is rejected with ErrOpBudget, not applied. On success the
// transition is folded into Res and its diff events are published on
// the bus (deliveries counted in Res.Notifications).
func (s *Session) Apply(op dpm.Operation) (*dpm.Transition, error) {
	if s.Res.Operations >= s.MaxOps {
		return nil, ErrOpBudget
	}
	tr, err := s.D.Apply(op)
	if err != nil {
		return nil, err
	}
	recordTransition(s.Res, tr)
	events := publishTransition(s.Bus, s.Res, tr)
	if s.OnEvents != nil && len(events) > 0 {
		s.OnEvents(events)
	}
	return tr, nil
}

// Remaining returns the unused operation budget.
func (s *Session) Remaining() int {
	if r := s.MaxOps - s.Res.Operations; r > 0 {
		return r
	}
	return 0
}

// Exhausted reports whether the operation budget is used up.
func (s *Session) Exhausted() bool { return s.Res.Operations >= s.MaxOps }

// Finish finalizes and returns the session's Result (termination flag,
// final property values, process handle). Idempotent.
func (s *Session) Finish() *Result {
	finishResult(s.Res, s.D)
	return s.Res
}

// subscribeOwners registers one bus subscription per owner id with the
// NM relevance filter derived from the owner's current concern set: the
// properties visible in their view and the constraints on them. Both
// the simulation engines (via subscribeTeam) and standalone sessions
// subscribe through here, so a replayed operation history produces
// bit-for-bit the same delivery counts as the simulated run.
func subscribeOwners(d *dpm.DPM, owners []string) *notify.Bus {
	bus := notify.NewBus()
	for _, id := range owners {
		view := dcm.BuildView(d, id)
		props := map[string]bool{}
		for name := range view.Props {
			props[name] = true
		}
		cons := map[string]bool{}
		for name := range props {
			for _, c := range d.Net.ConstraintsOn(name) {
				cons[c.Name] = true
			}
		}
		bus.Subscribe(id, notify.PropertyFilter(props, cons))
	}
	return bus
}
