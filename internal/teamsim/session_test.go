package teamsim

import (
	"errors"
	"testing"

	"repro/internal/constraint"
	"repro/internal/domain"
	"repro/internal/dpm"
	"repro/internal/scenario"
)

func synthOp(problem, prop string, v float64) dpm.Operation {
	return dpm.Operation{
		Kind:        dpm.OpSynthesis,
		Problem:     problem,
		Designer:    "test",
		Assignments: []dpm.Assignment{{Prop: prop, Value: domain.Real(v)}},
	}
}

// TestSessionApplyBudget pins the shared apply-with-budget invariant:
// the op that would exceed MaxOps is rejected with ErrOpBudget before δ
// runs — the stage index and network state do not move. Both the
// concurrent engine and internal/server apply through this one helper,
// so the PR 2 budget-overshoot fix cannot regress in only one host.
func TestSessionApplyBudget(t *testing.T) {
	sess, err := NewSession(scenario.Simplified(), dpm.ADPM, 2, constraint.PropagateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ops := []dpm.Operation{
		synthOp("AmpDesign", "Width", 2),
		synthOp("AmpDesign", "Ind", 1),
		synthOp("AmpDesign", "Bias", 3),
	}
	for i, op := range ops[:2] {
		if _, err := sess.Apply(op); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	if sess.Remaining() != 0 || !sess.Exhausted() {
		t.Fatalf("after 2 ops with MaxOps=2: remaining=%d exhausted=%v", sess.Remaining(), sess.Exhausted())
	}
	stage := sess.D.Stage()
	if _, err := sess.Apply(ops[2]); !errors.Is(err, ErrOpBudget) {
		t.Fatalf("third apply: got err %v, want ErrOpBudget", err)
	}
	if sess.D.Stage() != stage {
		t.Errorf("rejected op moved the stage: %d -> %d", stage, sess.D.Stage())
	}
	if sess.Res.Operations != 2 {
		t.Errorf("Operations = %d, want 2", sess.Res.Operations)
	}
	if got, _ := sess.D.Net.Value("Bias"); sess.D.Net.Property("Bias").IsBound() {
		t.Errorf("rejected op bound Bias=%v", got)
	}
}

// TestSessionApplyRecordsAndPublishes verifies that a successful apply
// folds the transition into the Result and publishes its diff events
// (deliveries counted in Notifications), matching the engine loop's
// bookkeeping.
func TestSessionApplyRecordsAndPublishes(t *testing.T) {
	sess, err := NewSession(scenario.Simplified(), dpm.ADPM, 0, constraint.PropagateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sess.MaxOps != DefaultMaxOps {
		t.Fatalf("maxOps <= 0 resolved to %d, want DefaultMaxOps=%d", sess.MaxOps, DefaultMaxOps)
	}
	if _, err := sess.Apply(synthOp("AmpDesign", "Width", 9)); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Apply(synthOp("AmpDesign", "Bias", 19)); err != nil {
		t.Fatal(err)
	}
	res := sess.Res
	if res.Operations != 2 || len(res.EvalsPerOp) != 2 || len(res.OpenViolationsPerOp) != 2 {
		t.Fatalf("series not recorded: %+v", res)
	}
	if res.Evaluations <= 0 {
		t.Errorf("no evaluations recorded")
	}
	// Width=9, Bias=19 pushes Amp_power = 9*19 + 2*9 far over MaxPower:
	// the violation must have been published to the subscribed owners.
	if res.Notifications == 0 {
		t.Errorf("no notification deliveries recorded (violations: %v)", sess.D.Net.Violations())
	}
	fin := sess.Finish()
	if fin.Completed {
		t.Errorf("incomplete design reported Completed")
	}
	if len(fin.FinalValues) == 0 {
		t.Errorf("Finish did not capture final values")
	}
}

// TestSessionSubscribersMatchEngine pins that a standalone session
// subscribes exactly the scenario owners — the precondition for
// replayed histories reproducing the engine's delivery counts.
func TestSessionSubscribersMatchEngine(t *testing.T) {
	scn := scenario.Receiver()
	sess, err := NewSession(scn, dpm.ADPM, 0, constraint.PropagateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	subs := sess.Bus.Subscribers()
	owners := scn.Owners()
	if len(subs) != len(owners) {
		t.Fatalf("subscribers %v != owners %v", subs, owners)
	}
	want := map[string]bool{}
	for _, o := range owners {
		want[o] = true
	}
	for _, id := range subs {
		if !want[id] {
			t.Errorf("unexpected subscriber %q", id)
		}
	}
}
