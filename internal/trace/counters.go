package trace

import (
	"fmt"
	"sort"
	"strings"
)

// DesignerCounters aggregates per-designer activity.
type DesignerCounters struct {
	Operations int64 `json:"operations"`
	Spins      int64 `json:"spins"`
	Evals      int64 `json:"evals"`
	Idles      int64 `json:"idles"`
	Wakes      int64 `json:"wakes"`
}

// Counters are the exact aggregates maintained on every Emit. Unlike
// the ring they never drop: the reconciliation against Result metrics
// (operations, evaluations, notifications, spins) reads these.
type Counters struct {
	Events  uint64 `json:"events"`
	Dropped uint64 `json:"dropped"`
	Runs    int64  `json:"runs"`

	// Operation-level aggregates; Operations/OperationEvals/Spins must
	// reconcile exactly with Result.Operations/.Evaluations/.Spins.
	Operations       int64 `json:"operations"`
	SynthesisOps     int64 `json:"synthesis_ops"`
	VerificationOps  int64 `json:"verification_ops"`
	DecompositionOps int64 `json:"decomposition_ops"`
	OperationEvals   int64 `json:"operation_evals"`
	OperationNanos   int64 `json:"operation_ns"`
	Spins            int64 `json:"spins"`
	NewViolations    int64 `json:"new_violations"`

	// Propagation aggregates.
	PropagateRuns  int64 `json:"propagate_runs"`
	Revisions      int64 `json:"revisions"`
	PropagateEvals int64 `json:"propagate_evals"`
	NarrowedProps  int64 `json:"narrowed_props"`
	EmptiedProps   int64 `json:"emptied_props"`
	CappedRuns     int64 `json:"capped_runs"`
	PropagateNanos int64 `json:"propagate_ns"`

	// Movement-window aggregates.
	WindowRefreshes    int64 `json:"window_refreshes"`
	WindowJobs         int64 `json:"window_jobs"`
	WindowEvals        int64 `json:"window_evals"`
	WindowRefreshNanos int64 `json:"window_refresh_ns"`

	// Notification aggregates; Deliveries must reconcile exactly with
	// Result.Notifications.
	NotifyEvents int64 `json:"notify_events"`
	Deliveries   int64 `json:"deliveries"`
	// NotifyDrops counts events lost at live subscribers' bounded
	// queues. Deliberately outside the Deliveries reconciliation: a drop
	// is flow control on the fan-out side, not a missed publish.
	NotifyDrops int64 `json:"notify_drops,omitempty"`

	// Engine-loop aggregates.
	Idles int64 `json:"idles"`
	Wakes int64 `json:"wakes"`

	// Serving aggregates (internal/server shard traces).
	Evictions int64 `json:"evictions"`

	// Durability aggregates (write-ahead log).
	WALAppends int64 `json:"wal_appends,omitempty"`
	WALBytes   int64 `json:"wal_bytes,omitempty"`
	Recoveries int64 `json:"recoveries,omitempty"`
	// RecoveredSessions counts sessions reconstructed across recoveries.
	RecoveredSessions int64 `json:"recovered_sessions,omitempty"`
	// Restores counts lazy session restores (post-recovery touch or
	// persist-then-evict wakeup).
	Restores int64 `json:"restores,omitempty"`

	// Load-generation aggregates (adpmload phases).
	LoadPhases   int64 `json:"load_phases,omitempty"`
	LoadRequests int64 `json:"load_requests,omitempty"`

	PerDesigner map[string]*DesignerCounters `json:"per_designer,omitempty"`
}

func (c *Counters) designer(id string) *DesignerCounters {
	if id == "" {
		return nil
	}
	dc := c.PerDesigner[id]
	if dc == nil {
		dc = &DesignerCounters{}
		c.PerDesigner[id] = dc
	}
	return dc
}

// apply folds one event into the aggregates.
func (c *Counters) apply(e Event) {
	c.Events++
	switch e.Kind {
	case KindRunStart:
		c.Runs++
	case KindOperation:
		c.Operations++
		switch e.Op {
		case "synthesis":
			c.SynthesisOps++
		case "verification":
			c.VerificationOps++
		case "decomposition":
			c.DecompositionOps++
		}
		c.OperationEvals += e.Evals
		c.OperationNanos += e.DurNanos
		c.NewViolations += int64(e.NewViolations)
		if e.Spin {
			c.Spins++
		}
		if dc := c.designer(e.Designer); dc != nil {
			dc.Operations++
			dc.Evals += e.Evals
			if e.Spin {
				dc.Spins++
			}
		}
	case KindPropagate:
		c.PropagateRuns++
		c.Revisions += int64(e.Revisions)
		c.PropagateEvals += e.Evals
		c.NarrowedProps += int64(e.Narrowed)
		c.EmptiedProps += int64(e.Emptied)
		if e.Capped {
			c.CappedRuns++
		}
		c.PropagateNanos += e.DurNanos
	case KindWindowRefresh:
		c.WindowRefreshes++
		c.WindowJobs += int64(e.Jobs)
		c.WindowEvals += e.Evals
		c.WindowRefreshNanos += e.DurNanos
	case KindNotify:
		c.NotifyEvents++
		c.Deliveries += int64(e.Deliveries)
	case KindIdle:
		c.Idles++
		if dc := c.designer(e.Designer); dc != nil {
			dc.Idles++
		}
	case KindWake:
		c.Wakes++
		if dc := c.designer(e.Designer); dc != nil {
			dc.Wakes++
		}
	case KindEvict:
		c.Evictions++
	case KindWALAppend:
		c.WALAppends++
		c.WALBytes += e.Bytes
	case KindRecover:
		c.Recoveries++
		c.RecoveredSessions += int64(e.Sessions)
	case KindRestore:
		c.Restores++
	case KindLoadPhase:
		c.LoadPhases++
		c.LoadRequests += int64(e.Operations)
	case KindNotifyDrop:
		c.NotifyDrops++
	}
}

func (c Counters) clone() Counters {
	out := c
	out.PerDesigner = make(map[string]*DesignerCounters, len(c.PerDesigner))
	for id, dc := range c.PerDesigner {
		cp := *dc
		out.PerDesigner[id] = &cp
	}
	return out
}

// Summary renders the end-of-run metrics table.
func (c Counters) Summary() string {
	var b strings.Builder
	b.WriteString("trace summary\n")
	row := func(name string, args ...any) {
		fmt.Fprintf(&b, "  %-22s", name)
		fmt.Fprintln(&b, fmt.Sprint(args...))
	}
	row("events", fmt.Sprintf("%d (%d dropped from ring)", c.Events, c.Dropped))
	row("operations", fmt.Sprintf("%d (synthesis %d, verification %d, decomposition %d)",
		c.Operations, c.SynthesisOps, c.VerificationOps, c.DecompositionOps))
	row("evaluations", fmt.Sprintf("%d (%.1f per op)", c.OperationEvals, ratio(c.OperationEvals, c.Operations)))
	row("spins", fmt.Sprintf("%d", c.Spins))
	row("new violations", fmt.Sprintf("%d", c.NewViolations))
	row("propagate runs", fmt.Sprintf("%d (%d revisions, %d evals, %d capped)",
		c.PropagateRuns, c.Revisions, c.PropagateEvals, c.CappedRuns))
	row("subspace changes", fmt.Sprintf("%d narrowed, %d emptied", c.NarrowedProps, c.EmptiedProps))
	row("window refreshes", fmt.Sprintf("%d (%d windows, %d evals)",
		c.WindowRefreshes, c.WindowJobs, c.WindowEvals))
	row("notifications", fmt.Sprintf("%d deliveries over %d events", c.Deliveries, c.NotifyEvents))
	if c.NotifyDrops > 0 {
		row("notify drops", fmt.Sprintf("%d", c.NotifyDrops))
	}
	row("idle/wake", fmt.Sprintf("%d idles, %d wakes", c.Idles, c.Wakes))
	if c.Evictions > 0 {
		row("evictions", fmt.Sprintf("%d", c.Evictions))
	}
	if c.WALAppends > 0 {
		row("wal appends", fmt.Sprintf("%d (%d bytes)", c.WALAppends, c.WALBytes))
	}
	if c.Recoveries > 0 {
		row("recoveries", fmt.Sprintf("%d (%d sessions)", c.Recoveries, c.RecoveredSessions))
	}
	if c.Restores > 0 {
		row("restores", fmt.Sprintf("%d", c.Restores))
	}
	if c.LoadPhases > 0 {
		row("load phases", fmt.Sprintf("%d (%d requests)", c.LoadPhases, c.LoadRequests))
	}
	if ms := float64(c.OperationNanos) / 1e6; ms > 0 {
		row("time in δ", fmt.Sprintf("%.1fms total (%.3fms per op)", ms, ms/float64(max64(c.Operations, 1))))
	}
	if len(c.PerDesigner) > 0 {
		b.WriteString("  per designer:\n")
		ids := make([]string, 0, len(c.PerDesigner))
		for id := range c.PerDesigner {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			dc := c.PerDesigner[id]
			fmt.Fprintf(&b, "    %-20s ops=%-5d spins=%-4d evals=%-8d idles=%-4d wakes=%d\n",
				id, dc.Operations, dc.Spins, dc.Evals, dc.Idles, dc.Wakes)
		}
	}
	return b.String()
}

func ratio(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
