package trace

import (
	"encoding/json"
	"expvar"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
)

// current is the recorder published to the expvar/debug endpoints; the
// cmds point it at their per-run recorder via Publish.
var current atomic.Pointer[Recorder]

// Publish makes rec the recorder visible on the debug endpoints
// (expvar "trace" and the /debug/trace handler). Pass nil to unpublish.
func Publish(rec *Recorder) { current.Store(rec) }

var publishOnce sync.Once

// registerExpvar exposes the published recorder's counters as the
// expvar variable "trace". Guarded by a Once because expvar panics on
// duplicate names.
func registerExpvar() {
	publishOnce.Do(func() {
		expvar.Publish("trace", expvar.Func(func() any {
			rec := current.Load()
			if rec == nil {
				return nil
			}
			return rec.Counters()
		}))
	})
}

// DebugMux returns an http.ServeMux with the standard pprof handlers,
// expvar (including the "trace" counters of the published recorder),
// and a /debug/trace JSON endpoint with the current counter snapshot.
func DebugMux() *http.ServeMux {
	registerExpvar()
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		rec := current.Load()
		if rec == nil {
			w.Write([]byte("null\n"))
			return
		}
		writeJSON(w, rec.Counters())
	})
	return mux
}

// ServeDebug serves DebugMux on addr in a background goroutine and
// returns immediately. Errors (e.g. a busy port) are delivered on the
// returned channel; callers typically just log them.
func ServeDebug(addr string) <-chan error {
	errc := make(chan error, 1)
	go func() {
		errc <- http.ListenAndServe(addr, DebugMux())
	}()
	return errc
}

func writeJSON(w http.ResponseWriter, v any) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Write(append(b, '\n'))
}
