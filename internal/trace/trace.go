// Package trace is the observability layer of the DCM/DPM/TeamSim
// stack: a structured event stream over the quantities the paper counts
// — constraint evaluations, propagation passes, movement-window
// refreshes, notification deliveries, designer spins and idle cycles —
// with per-run recording, JSONL emission, an end-of-run summary, and
// pprof/expvar hooks for the long-running paths.
//
// Cost model. Tracing is off by default and the instrumented hot paths
// are guarded so that the disabled cost is a single nil-pointer compare
// per site (no allocation, no atomic, no time syscall); the engine
// benchmarks enforce 0 additional allocs/op with tracing disabled. A
// Recorder is attached per run (constraint.Network.SetTracer,
// dpm.DPM.SetTracer, teamsim.Config.Tracer); each Recorder additionally
// carries an atomic enable flag so emission can be paused and resumed
// mid-run without unplumbing it. Scratch networks (movement-window and
// resynthesis exploration) never carry a tracer — their propagation
// work surfaces as the aggregated window-refresh events instead.
//
// Correctness contract. The trace is not a parallel bookkeeping scheme
// that may drift from the metrics: every operation event carries the
// transition's evaluation delta, so the summed trace counters equal the
// run's Result metrics exactly. The differential golden test doubles as
// a trace-correctness test by asserting that reconciliation bit for bit.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Kind classifies trace events.
type Kind uint8

// Event kinds.
const (
	// KindRunStart opens one simulation run (scenario, mode, seed).
	KindRunStart Kind = iota
	// KindRunEnd closes one run with its final Result metrics.
	KindRunEnd
	// KindOperation is one executed design operation (δ transition):
	// operation kind, problem, designer, evaluation delta, latency.
	KindOperation
	// KindPropagate is one constraint-propagation fixpoint run on the
	// live network: revisions, evaluations, narrowed/emptied counts.
	KindPropagate
	// KindRevise is one HC4 revise of one constraint (DetailFull only).
	KindRevise
	// KindWindowRefresh is one movement-window refresh batch: job
	// count, worker fan-out, total evaluations, latency.
	KindWindowRefresh
	// KindWindow is one movement-window exploration (DetailFull only).
	KindWindow
	// KindNotify is one Notification Manager publish: the NM event kind,
	// its subject, and how many designers received it.
	KindNotify
	// KindIdle marks a designer going idle (nothing to do at a stage).
	KindIdle
	// KindWake marks an idle designer woken by new information.
	KindWake
	// KindEvict marks a hosted session evicted by its shard (idle
	// timeout): the session id (Name), its scenario, and its final
	// metrics. Emitted by internal/server; the metrics stay part of the
	// shard's run-end totals, so eviction never hides work from the
	// reconciliation.
	KindEvict
	// KindWALAppend is one durable append to a shard's write-ahead log:
	// the framed byte count (Bytes) and the record type (Name). Emitted
	// by internal/server before the logged batch is applied.
	KindWALAppend
	// KindRecover summarizes one shard's WAL recovery at startup: the
	// sessions (Sessions), records (Records), and intact bytes (Bytes)
	// reconstructed, plus any torn tail bytes truncated away
	// (TornBytes).
	KindRecover
	// KindRestore is one lazy session restore (after recovery or
	// persist-then-evict): the session id (Name), its scenario, and the
	// number of replayed operation batches (Records).
	KindRestore
	// KindLoadPhase is one completed load-generation phase (adpmload):
	// the phase label (Name), its client fan-out (Workers), the requests
	// it issued (Operations), the workload seed (Seed), and its
	// wall-clock duration (DurNanos).
	KindLoadPhase
	// KindNotifyDrop is one event lost at a live subscriber's bounded
	// queue (drop-oldest or coalesce): the lost event's NM kind (Event)
	// and subject (Name). Emitted by the notify hub; drops are a
	// flow-control outcome, so they do not feed the delivery
	// reconciliation that KindNotify participates in.
	KindNotifyDrop
	numKinds
)

var kindNames = [numKinds]string{
	"run-start", "run-end", "operation", "propagate", "revise",
	"window-refresh", "window", "notify", "idle", "wake", "evict",
	"wal-append", "recover", "restore", "load-phase", "notify-drop",
}

// String names the kind as it appears in the JSONL stream.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// KindFromString resolves a JSONL kind name; ok is false for unknown
// names.
func KindFromString(s string) (Kind, bool) {
	for i, n := range kindNames {
		if n == s {
			return Kind(i), true
		}
	}
	return 0, false
}

// MarshalJSON writes the kind name.
func (k Kind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON reads a kind name.
func (k *Kind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	kk, ok := KindFromString(s)
	if !ok {
		return fmt.Errorf("trace: unknown event kind %q", s)
	}
	*k = kk
	return nil
}

// Detail selects how much the instrumented paths emit.
type Detail int

// Detail levels.
const (
	// DetailOps (the default) emits run, operation, propagate-summary,
	// window-refresh, notify, and idle/wake events.
	DetailOps Detail = iota
	// DetailFull additionally emits one event per HC4 revise and per
	// movement-window exploration. High volume; ring-bounded.
	DetailFull
)

// Event is one structured trace record. The struct is flat and
// fixed-size so ring storage never allocates; kind-specific fields are
// zero (and omitted from JSON) on other kinds. See docs in DESIGN.md §7
// for the per-kind schema.
type Event struct {
	// Seq is the 1-based emission sequence number within the recorder.
	Seq uint64 `json:"seq"`
	// TNanos is the emission time relative to the recorder start.
	TNanos int64 `json:"t_ns"`
	// Kind classifies the event.
	Kind Kind `json:"kind"`

	// Stage is the design-process stage index (operation, notify, idle).
	Stage int `json:"stage,omitempty"`
	// Op names the operation kind: synthesis, verification, decomposition.
	Op string `json:"op,omitempty"`
	// Problem names the operated-on problem.
	Problem string `json:"problem,omitempty"`
	// Designer identifies the acting/idle/woken designer.
	Designer string `json:"designer,omitempty"`
	// Name is the subject of constraint/property-scoped events: the
	// revised constraint, the explored window property, or the NM
	// event's subject.
	Name string `json:"name,omitempty"`
	// Event names the NM event kind on notify events.
	Event string `json:"event,omitempty"`

	// Evals is the constraint-evaluation delta attributable to the event.
	Evals int64 `json:"evals,omitempty"`
	// Revisions counts HC4 revises of a propagate run.
	Revisions int `json:"revisions,omitempty"`
	// Narrowed counts properties whose feasible subspace shrank
	// (propagate runs) or arguments narrowed (revise events).
	Narrowed int `json:"narrowed,omitempty"`
	// Emptied counts properties whose feasible subspace emptied.
	Emptied int `json:"emptied,omitempty"`
	// Capped marks a propagate run stopped by MaxRevisions.
	Capped bool `json:"capped,omitempty"`
	// Jobs/Workers size a window-refresh batch and its fan-out.
	Jobs    int `json:"jobs,omitempty"`
	Workers int `json:"workers,omitempty"`
	// Deliveries counts designers that received a notify event.
	Deliveries int `json:"deliveries,omitempty"`
	// NewViolations/OpenViolations count violations found by / open
	// after an operation.
	NewViolations  int `json:"new_violations,omitempty"`
	OpenViolations int `json:"open_violations,omitempty"`
	// Spin marks a design spin (cross-subsystem rework).
	Spin bool `json:"spin,omitempty"`
	// Idle is the number of simultaneously idle designers after an
	// idle event.
	Idle int `json:"idle,omitempty"`
	// DurNanos is the wall-clock latency of the traced step.
	DurNanos int64 `json:"dur_ns,omitempty"`

	// Durability fields (wal-append / recover / restore).
	// Bytes is the framed byte count appended or recovered.
	Bytes int64 `json:"bytes,omitempty"`
	// Records counts WAL records recovered or batches replayed.
	Records int `json:"records,omitempty"`
	// Sessions counts sessions reconstructed by a recovery.
	Sessions int `json:"sessions,omitempty"`
	// TornBytes is the truncated torn-tail length of a recovery.
	TornBytes int64 `json:"torn_bytes,omitempty"`

	// Run-scoped fields (run-start / run-end).
	Scenario      string `json:"scenario,omitempty"`
	Mode          string `json:"mode,omitempty"`
	Seed          int64  `json:"seed,omitempty"`
	Completed     bool   `json:"completed,omitempty"`
	Deadlocked    bool   `json:"deadlocked,omitempty"`
	Operations    int    `json:"operations,omitempty"`
	Evaluations   int64  `json:"evaluations,omitempty"`
	Spins         int    `json:"spins,omitempty"`
	Notifications int    `json:"notifications,omitempty"`
}

// Options parameterize a Recorder.
type Options struct {
	// RingSize bounds the in-memory event ring; 0 means 16384. The ring
	// keeps the most recent events; older ones are dropped (counted in
	// Counters.Dropped). Counters are exact regardless of drops.
	RingSize int
	// W, when non-nil, receives every event as one JSON line at
	// emission time (buffered; Close flushes). Streaming loses nothing
	// to ring wrap.
	W io.Writer
	// Detail selects the emission detail level.
	Detail Detail
}

// DefaultRingSize is the event ring capacity when Options.RingSize is 0.
const DefaultRingSize = 16384

// activeRecorders counts enabled recorders process-wide; Active lets
// coarse-grained call sites skip per-recorder checks entirely.
var activeRecorders atomic.Int32

// Active reports whether any enabled Recorder exists in the process.
func Active() bool { return activeRecorders.Load() > 0 }

// Recorder collects the trace of one run. It is safe for concurrent
// use; the deterministic engine emits from one goroutine, the
// concurrent engine from its server goroutine, and the debug HTTP
// handlers read counters concurrently.
type Recorder struct {
	enabled atomic.Bool
	start   time.Time

	mu      sync.Mutex
	seq     uint64
	ring    []Event
	head    int // index of the oldest event
	n       int // events currently in the ring
	dropped uint64
	w       *bufio.Writer
	werr    error
	detail  Detail
	c       Counters
	closed  bool
}

// New returns an enabled Recorder with a preallocated ring.
func New(opts Options) *Recorder {
	size := opts.RingSize
	if size <= 0 {
		size = DefaultRingSize
	}
	r := &Recorder{
		start:  time.Now(),
		ring:   make([]Event, size),
		detail: opts.Detail,
	}
	if opts.W != nil {
		r.w = bufio.NewWriter(opts.W)
	}
	r.c.PerDesigner = map[string]*DesignerCounters{}
	r.enabled.Store(true)
	activeRecorders.Add(1)
	return r
}

// Enabled reports whether the recorder currently accepts events.
func (r *Recorder) Enabled() bool { return r != nil && r.enabled.Load() }

// SetEnabled pauses (false) or resumes (true) emission. The atomic flag
// makes toggling safe from any goroutine mid-run.
func (r *Recorder) SetEnabled(on bool) {
	if r == nil {
		return
	}
	if r.enabled.Swap(on) != on {
		if on {
			activeRecorders.Add(1)
		} else {
			activeRecorders.Add(-1)
		}
	}
}

// Detail returns the configured detail level.
func (r *Recorder) Detail() Detail {
	if r == nil {
		return DetailOps
	}
	return r.detail
}

// FullDetail reports whether per-revise / per-window events are wanted.
func (r *Recorder) FullDetail() bool {
	return r != nil && r.detail >= DetailFull && r.enabled.Load()
}

// Now returns the elapsed nanoseconds since the recorder started.
func (r *Recorder) Now() int64 { return time.Since(r.start).Nanoseconds() }

// Emit records one event: stamps sequence and time, updates counters,
// stores it in the ring (evicting the oldest when full), and streams it
// to the JSONL writer when configured. No-op when paused.
func (r *Recorder) Emit(e Event) {
	if r == nil || !r.enabled.Load() {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	r.seq++
	e.Seq = r.seq
	if e.TNanos == 0 {
		e.TNanos = time.Since(r.start).Nanoseconds()
	}
	r.c.apply(e)
	if r.n == len(r.ring) {
		r.ring[r.head] = e
		r.head = (r.head + 1) % len(r.ring)
		r.dropped++
		r.c.Dropped = r.dropped
	} else {
		r.ring[(r.head+r.n)%len(r.ring)] = e
		r.n++
	}
	if r.w != nil && r.werr == nil {
		b, err := json.Marshal(e)
		if err == nil {
			_, err = r.w.Write(append(b, '\n'))
		}
		if err != nil {
			r.werr = err
		}
	}
}

// Events returns the ring contents in emission order (oldest first).
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, r.n)
	for i := 0; i < r.n; i++ {
		out[i] = r.ring[(r.head+i)%len(r.ring)]
	}
	return out
}

// Counters returns a snapshot of the exact aggregate counters.
func (r *Recorder) Counters() Counters {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.c.clone()
}

// Close flushes the JSONL writer, disables the recorder, and returns
// the first write error encountered while streaming.
func (r *Recorder) Close() error {
	r.SetEnabled(false)
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return r.werr
	}
	r.closed = true
	if r.w != nil {
		if err := r.w.Flush(); err != nil && r.werr == nil {
			r.werr = err
		}
	}
	return r.werr
}
