package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestRingWrapAndDrops(t *testing.T) {
	r := New(Options{RingSize: 4})
	defer r.Close()
	for i := 0; i < 10; i++ {
		r.Emit(Event{Kind: KindNotify, Event: "e", Deliveries: 1})
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(evs))
	}
	// The ring keeps the most recent events, in emission order.
	for i, e := range evs {
		if want := uint64(7 + i); e.Seq != want {
			t.Errorf("event %d has seq %d, want %d", i, e.Seq, want)
		}
	}
	c := r.Counters()
	if c.Events != 10 {
		t.Errorf("Events = %d, want 10 (counters must be exact despite ring drops)", c.Events)
	}
	if c.Dropped != 6 {
		t.Errorf("Dropped = %d, want 6", c.Dropped)
	}
	if c.Deliveries != 10 {
		t.Errorf("Deliveries = %d, want 10", c.Deliveries)
	}
}

func TestCountersPerKind(t *testing.T) {
	r := New(Options{RingSize: 64})
	defer r.Close()
	r.Emit(Event{Kind: KindRunStart, Mode: "adpm"})
	r.Emit(Event{Kind: KindOperation, Op: "synthesis", Problem: "p", Designer: "d1", Evals: 10, Spin: false})
	r.Emit(Event{Kind: KindOperation, Op: "verification", Problem: "p", Designer: "d1", Evals: 5, Spin: true, NewViolations: 2})
	r.Emit(Event{Kind: KindOperation, Op: "decomposition", Problem: "p", Designer: "d2", Evals: 1})
	r.Emit(Event{Kind: KindPropagate, Revisions: 7, Evals: 12, Narrowed: 3, Emptied: 1, Capped: true})
	r.Emit(Event{Kind: KindWindowRefresh, Jobs: 6, Workers: 2, Evals: 30})
	r.Emit(Event{Kind: KindNotify, Event: "violation-appeared", Name: "c1", Deliveries: 3})
	r.Emit(Event{Kind: KindIdle, Designer: "d2", Idle: 1})
	r.Emit(Event{Kind: KindWake, Designer: "d2"})
	c := r.Counters()
	if c.Runs != 1 || c.Operations != 3 || c.SynthesisOps != 1 || c.VerificationOps != 1 || c.DecompositionOps != 1 {
		t.Errorf("operation counters wrong: %+v", c)
	}
	if c.OperationEvals != 16 || c.Spins != 1 || c.NewViolations != 2 {
		t.Errorf("operation aggregates wrong: evals=%d spins=%d newViol=%d", c.OperationEvals, c.Spins, c.NewViolations)
	}
	if c.PropagateRuns != 1 || c.Revisions != 7 || c.PropagateEvals != 12 || c.NarrowedProps != 3 || c.EmptiedProps != 1 || c.CappedRuns != 1 {
		t.Errorf("propagate counters wrong: %+v", c)
	}
	if c.WindowRefreshes != 1 || c.WindowJobs != 6 || c.WindowEvals != 30 {
		t.Errorf("window counters wrong: %+v", c)
	}
	if c.NotifyEvents != 1 || c.Deliveries != 3 {
		t.Errorf("notify counters wrong: %+v", c)
	}
	if c.Idles != 1 || c.Wakes != 1 {
		t.Errorf("idle/wake counters wrong: %+v", c)
	}
	d1 := c.PerDesigner["d1"]
	if d1 == nil || d1.Operations != 2 || d1.Evals != 15 || d1.Spins != 1 {
		t.Errorf("per-designer d1 wrong: %+v", d1)
	}
	d2 := c.PerDesigner["d2"]
	if d2 == nil || d2.Operations != 1 || d2.Idles != 1 || d2.Wakes != 1 {
		t.Errorf("per-designer d2 wrong: %+v", d2)
	}
	if s := c.Summary(); !strings.Contains(s, "operations") || !strings.Contains(s, "d1") {
		t.Errorf("summary missing expected rows:\n%s", s)
	}
}

func TestSetEnabledPausesEmission(t *testing.T) {
	r := New(Options{RingSize: 8})
	defer r.Close()
	if !r.Enabled() {
		t.Fatal("new recorder should be enabled")
	}
	if !Active() {
		t.Fatal("Active() should report the enabled recorder")
	}
	r.Emit(Event{Kind: KindNotify, Event: "a", Deliveries: 1})
	r.SetEnabled(false)
	r.Emit(Event{Kind: KindNotify, Event: "b", Deliveries: 1})
	r.SetEnabled(true)
	r.Emit(Event{Kind: KindNotify, Event: "c", Deliveries: 1})
	if c := r.Counters(); c.Events != 2 {
		t.Errorf("paused emission leaked: %d events, want 2", c.Events)
	}
	// Idempotent toggles must not skew the process-wide active count.
	r.SetEnabled(true)
	r.SetEnabled(true)
	r.Close()
	if Active() {
		t.Error("Active() should be false after Close")
	}
}

func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	if r.Enabled() || r.FullDetail() {
		t.Error("nil recorder must report disabled")
	}
	r.Emit(Event{Kind: KindNotify}) // must not panic
	r.SetEnabled(true)              // must not panic
	if r.Detail() != DetailOps {
		t.Error("nil recorder detail should be DetailOps")
	}
}

func TestJSONLStreamAndValidate(t *testing.T) {
	var buf bytes.Buffer
	r := New(Options{RingSize: 2, W: &buf}) // tiny ring: stream must still see everything
	r.Emit(Event{Kind: KindRunStart, Scenario: "amplifier", Mode: "adpm", Seed: 3})
	r.Emit(Event{Kind: KindOperation, Op: "synthesis", Problem: "p1", Designer: "d1", Evals: 4})
	r.Emit(Event{Kind: KindOperation, Op: "verification", Problem: "p1", Designer: "d1", Evals: 6, Spin: true})
	r.Emit(Event{Kind: KindNotify, Event: "narrowed", Name: "x", Deliveries: 2})
	r.Emit(Event{Kind: KindRunEnd, Completed: true, Operations: 2, Evaluations: 10, Spins: 1, Notifications: 2})
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if n := strings.Count(buf.String(), "\n"); n != 5 {
		t.Fatalf("stream has %d lines, want 5 (ring size must not limit streaming)", n)
	}
	st, err := ValidateJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ValidateJSONL: %v", err)
	}
	if st.Lines != 5 || st.Operations != 2 || st.Evaluations != 10 || st.Spins != 1 || st.Deliveries != 2 {
		t.Errorf("stats wrong: %+v", st)
	}
	if st.ByKind["operation"] != 2 || st.ByKind["run-end"] != 1 {
		t.Errorf("by-kind wrong: %v", st.ByKind)
	}
}

func TestValidateRejectsBadStreams(t *testing.T) {
	cases := []struct {
		name, in, wantErr string
	}{
		{"empty", "", "empty trace"},
		{"garbage", "not json\n", "invalid character"},
		{"unknown kind", `{"seq":1,"t_ns":1,"kind":"bogus"}` + "\n", "unknown event kind"},
		{"seq regression", `{"seq":2,"t_ns":1,"kind":"notify","event":"e"}` + "\n" + `{"seq":1,"t_ns":2,"kind":"notify","event":"e"}` + "\n", "not increasing"},
		{"missing op kind", `{"seq":1,"t_ns":1,"kind":"operation","problem":"p"}` + "\n", "without op kind"},
		{"bad reconciliation", `{"seq":1,"t_ns":1,"kind":"operation","op":"synthesis","problem":"p","evals":4}` + "\n" + `{"seq":2,"t_ns":2,"kind":"run-end","operations":1,"evaluations":9}` + "\n", "evaluations 9 != 4"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ValidateJSONL(strings.NewReader(tc.in))
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("err = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

func TestKindRoundTrip(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		got, ok := KindFromString(k.String())
		if !ok || got != k {
			t.Errorf("KindFromString(%q) = %v, %v", k.String(), got, ok)
		}
	}
	if _, ok := KindFromString("nope"); ok {
		t.Error("KindFromString should reject unknown names")
	}
}
