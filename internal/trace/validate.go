package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// ValidateStats summarizes a validated JSONL trace.
type ValidateStats struct {
	// Lines is the number of non-empty JSONL lines read.
	Lines int
	// ByKind counts events per kind name.
	ByKind map[string]int
	// Operations/Evaluations/Spins/Deliveries are the reconciliation
	// sums recomputed from the stream (operation and notify events).
	Operations  int
	Evaluations int64
	Spins       int
	Deliveries  int
	// RunEnd holds the last run-end event, if any.
	RunEnd *Event
}

// ValidateJSONL reads a JSONL trace and checks it against the schema:
// every line must be a valid event with a known kind, sequence numbers
// must be strictly increasing, timestamps nondecreasing, kind-specific
// required fields present, and — when a run-end event is present — the
// summed operation/evaluation/spin/delivery counters must equal the
// metrics it carries. It returns aggregate stats or the first error.
func ValidateJSONL(r io.Reader) (*ValidateStats, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	st := &ValidateStats{ByKind: map[string]int{}}
	var lastSeq uint64
	var lastT int64
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(raw, &e); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		st.Lines++
		st.ByKind[e.Kind.String()]++
		if e.Seq <= lastSeq {
			return nil, fmt.Errorf("trace: line %d: seq %d not increasing (previous %d)", line, e.Seq, lastSeq)
		}
		lastSeq = e.Seq
		if e.TNanos < lastT {
			return nil, fmt.Errorf("trace: line %d: t_ns %d decreased (previous %d)", line, e.TNanos, lastT)
		}
		lastT = e.TNanos
		if err := checkFields(e); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		switch e.Kind {
		case KindOperation:
			st.Operations++
			st.Evaluations += e.Evals
			if e.Spin {
				st.Spins++
			}
		case KindNotify:
			st.Deliveries += e.Deliveries
		case KindRunEnd:
			ee := e
			st.RunEnd = &ee
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: reading input: %w", err)
	}
	if st.Lines == 0 {
		return nil, fmt.Errorf("trace: empty trace")
	}
	if re := st.RunEnd; re != nil {
		if re.Operations != st.Operations {
			return nil, fmt.Errorf("trace: run-end operations %d != %d summed operation events", re.Operations, st.Operations)
		}
		if re.Evaluations != st.Evaluations {
			return nil, fmt.Errorf("trace: run-end evaluations %d != %d summed operation evals", re.Evaluations, st.Evaluations)
		}
		if re.Spins != st.Spins {
			return nil, fmt.Errorf("trace: run-end spins %d != %d summed spin flags", re.Spins, st.Spins)
		}
		if re.Notifications != st.Deliveries {
			return nil, fmt.Errorf("trace: run-end notifications %d != %d summed deliveries", re.Notifications, st.Deliveries)
		}
	}
	return st, nil
}

// checkFields enforces the kind-specific required fields.
func checkFields(e Event) error {
	switch e.Kind {
	case KindRunStart:
		if e.Mode == "" {
			return fmt.Errorf("run-start without mode")
		}
	case KindRunEnd:
		// Zero operations is legal (an immediately done scenario); no
		// required fields beyond the kind itself.
	case KindOperation:
		if e.Op == "" {
			return fmt.Errorf("operation without op kind")
		}
		if e.Problem == "" {
			return fmt.Errorf("operation without problem")
		}
	case KindPropagate:
		if e.Revisions < 0 || e.Evals < 0 {
			return fmt.Errorf("propagate with negative counters")
		}
	case KindRevise:
		if e.Name == "" {
			return fmt.Errorf("revise without constraint name")
		}
	case KindWindowRefresh:
		if e.Jobs <= 0 || e.Workers <= 0 {
			return fmt.Errorf("window-refresh without jobs/workers")
		}
	case KindWindow:
		if e.Name == "" {
			return fmt.Errorf("window without property name")
		}
	case KindNotify:
		if e.Event == "" {
			return fmt.Errorf("notify without event kind")
		}
	case KindIdle, KindWake:
		if e.Designer == "" {
			return fmt.Errorf("%s without designer", e.Kind)
		}
	case KindEvict:
		if e.Name == "" {
			return fmt.Errorf("evict without session id")
		}
	case KindWALAppend:
		if e.Bytes <= 0 {
			return fmt.Errorf("wal-append without byte count")
		}
	case KindRecover:
		if e.Records < 0 || e.Sessions < 0 || e.Bytes < 0 || e.TornBytes < 0 {
			return fmt.Errorf("recover with negative counters")
		}
	case KindRestore:
		if e.Name == "" {
			return fmt.Errorf("restore without session id")
		}
	case KindLoadPhase:
		if e.Name == "" {
			return fmt.Errorf("load-phase without phase label")
		}
		if e.Operations < 0 || e.Workers < 0 {
			return fmt.Errorf("load-phase with negative counters")
		}
	case KindNotifyDrop:
		if e.Event == "" {
			return fmt.Errorf("notify-drop without event kind")
		}
	default:
		return fmt.Errorf("unknown kind %d", e.Kind)
	}
	return nil
}
