// Package vclock is the clock seam between the serving stack and time
// itself: a tiny Clock interface covering exactly what the server needs
// (a now-reading and tickers), a System implementation backed by
// package time, and a Manual implementation for deterministic
// simulation, where the harness — not the runtime — owns the arrow of
// time.
//
// Manual is deliberately inert: its tickers never fire on their own,
// because a tick delivered into a live goroutine's select races against
// whatever else that goroutine is selecting on, and the scheduling of
// that race is exactly the nondeterminism a simulation exists to
// remove. Instead the harness advances the clock and invokes
// timer-driven work itself (Server.Sweep, Server.SyncWALs), so every
// "timer firing" is an explicit, replayable event in the simulation
// schedule.
package vclock

import (
	"sync"
	"time"
)

// Clock is the time surface the server stack reads through.
type Clock interface {
	// Now returns the current reading.
	Now() time.Time
	// NewTicker returns a ticker with period d.
	NewTicker(d time.Duration) Ticker
}

// Ticker is the subset of time.Ticker the server uses.
type Ticker interface {
	// C returns the tick channel. A nil channel (Manual tickers) simply
	// never becomes ready in a select.
	C() <-chan time.Time
	// Stop releases the ticker.
	Stop()
}

// System is the real clock.
type System struct{}

// Now returns time.Now().
func (System) Now() time.Time { return time.Now() }

// NewTicker wraps time.NewTicker.
func (System) NewTicker(d time.Duration) Ticker {
	return sysTicker{t: time.NewTicker(d)}
}

type sysTicker struct{ t *time.Ticker }

func (s sysTicker) C() <-chan time.Time { return s.t.C }
func (s sysTicker) Stop()               { s.t.Stop() }

// Epoch is the Manual clock's default start: a fixed instant so every
// simulation begins at the same virtual time regardless of the host.
var Epoch = time.Unix(1_000_000_000, 0).UTC()

// Manual is a deterministic virtual clock. Now returns the virtual
// reading; Advance moves it forward. Tickers created from a Manual
// clock are inert (see the package comment) — their C() is nil.
//
// Manual is safe for concurrent reads against Advance (the simulation
// driver advances while shard loops read), guarded by a mutex.
type Manual struct {
	mu  sync.Mutex
	now time.Time
}

// NewManual returns a Manual clock starting at Epoch.
func NewManual() *Manual { return &Manual{now: Epoch} }

// Now returns the current virtual reading.
func (m *Manual) Now() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

// Advance moves the virtual clock forward by d (negative d is ignored)
// and returns the new reading.
func (m *Manual) Advance(d time.Duration) time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	if d > 0 {
		m.now = m.now.Add(d)
	}
	return m.now
}

// Set jumps the clock to t if t is later than the current reading.
func (m *Manual) Set(t time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if t.After(m.now) {
		m.now = t
	}
}

// NewTicker returns an inert ticker: C() is nil, so a select on it
// blocks forever and timer-driven work only happens when the harness
// invokes it explicitly.
func (m *Manual) NewTicker(d time.Duration) Ticker { return manualTicker{} }

type manualTicker struct{}

func (manualTicker) C() <-chan time.Time { return nil }
func (manualTicker) Stop()               {}
