package vclock

import (
	"testing"
	"time"
)

func TestManualAdvanceAndSet(t *testing.T) {
	m := NewManual()
	if got := m.Now(); !got.Equal(Epoch) {
		t.Fatalf("fresh Manual reads %v, want Epoch %v", got, Epoch)
	}
	at := m.Advance(3 * time.Second)
	if want := Epoch.Add(3 * time.Second); !at.Equal(want) {
		t.Fatalf("after Advance(3s): %v, want %v", at, want)
	}
	if got := m.Advance(-time.Hour); !got.Equal(at) {
		t.Fatalf("negative Advance moved the clock: %v", got)
	}
	m.Set(at.Add(-time.Minute))
	if got := m.Now(); !got.Equal(at) {
		t.Fatalf("Set backwards moved the clock: %v", got)
	}
	m.Set(at.Add(time.Minute))
	if got, want := m.Now(), at.Add(time.Minute); !got.Equal(want) {
		t.Fatalf("Set forwards: %v, want %v", got, want)
	}
}

func TestManualTickerInert(t *testing.T) {
	m := NewManual()
	tk := m.NewTicker(time.Nanosecond)
	defer tk.Stop()
	m.Advance(time.Hour)
	select {
	case <-tk.C():
		t.Fatal("Manual ticker fired; it must be inert")
	default:
	}
	if tk.C() != nil {
		t.Fatal("Manual ticker channel is non-nil")
	}
}

func TestSystemClock(t *testing.T) {
	var c Clock = System{}
	before := time.Now()
	got := c.Now()
	if got.Before(before.Add(-time.Second)) {
		t.Fatalf("System.Now %v far behind time.Now %v", got, before)
	}
	tk := c.NewTicker(time.Millisecond)
	defer tk.Stop()
	select {
	case <-tk.C():
	case <-time.After(2 * time.Second):
		t.Fatal("System ticker never fired")
	}
}
