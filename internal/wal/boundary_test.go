package wal

// Exact segment accounting at the rotation boundary: SegmentSize must
// equal the sum of framed record lengths byte for byte (the server's
// rotation predicate compares it to SegmentLimit with >=, so a drift of
// even one byte moves the rotation point), and a snapshot frame exactly
// equal to the limit is legal — the new segment opens already eligible
// for the next rotation, which is precisely the case the server's
// doubling guard exists to absorb.

import (
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/faultfs"
)

func frameLen(t *testing.T, rec *Record) int64 {
	t.Helper()
	payload, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	return int64(len(EncodeFrame(payload)))
}

func TestSegmentAccountingExact(t *testing.T) {
	l, _, err := Open(Options{Dir: t.TempDir(), FS: faultfs.OS{}, Policy: SyncNever, SegmentBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.SegmentLimit() != 1<<20 {
		t.Fatalf("SegmentLimit %d, want %d", l.SegmentLimit(), 1<<20)
	}

	var want int64
	recs := []*Record{
		{Type: TypeCreate, Session: "s0-1", Scenario: "simplified", Mode: "ADPM", MaxOps: 40},
		{Type: TypeOps, Session: "s0-1", Key: "k1", Ops: json.RawMessage(`[{"kind":"verification","problem":"Top"}]`)},
		{Type: TypeOps, Session: "s0-1", Ops: json.RawMessage(`[{"kind":"verification","problem":"Top"}]`)},
		{Type: TypeDelete, Session: "s0-1"},
	}
	for i, rec := range recs {
		fl := frameLen(t, rec)
		n, err := l.Append(rec)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if int64(n) != fl {
			t.Fatalf("append %d reported %d bytes, independent framing says %d", i, n, fl)
		}
		want += fl
		if l.SegmentSize() != want {
			t.Fatalf("after append %d: SegmentSize %d, want exactly %d", i, l.SegmentSize(), want)
		}
	}

	// Identical records frame to identical sizes — there is no
	// per-record sequence number to perturb the payload. The server's
	// boundary tests engineer exact segment sizes on this property.
	a := frameLen(t, recs[2])
	if b := frameLen(t, &Record{Type: TypeOps, Session: "s0-1", Ops: recs[2].Ops}); a != b {
		t.Fatalf("identical ops records framed to %d and %d bytes", a, b)
	}

	// After rotation the segment holds the snapshot frame and nothing
	// else.
	snap := &Record{Type: TypeSnapshot, Sessions: []SessionImage{{
		ID: "s0-1", Scenario: "simplified", Mode: "ADPM", MaxOps: 40,
		Ops: []OpsEntry{{Key: "k1", Ops: recs[1].Ops}},
	}}}
	if err := l.Rotate(snap); err != nil {
		t.Fatal(err)
	}
	if sf := frameLen(t, snap); l.SegmentSize() != sf {
		t.Fatalf("post-rotation SegmentSize %d, want the snapshot frame %d", l.SegmentSize(), sf)
	}
}

// TestSnapshotFrameEqualToLimit opens a log whose limit equals the
// snapshot frame size exactly: rotation succeeds and the fresh segment
// starts at SegmentSize == SegmentLimit, the state the server's
// doubling guard must tolerate without rotating again on every append.
func TestSnapshotFrameEqualToLimit(t *testing.T) {
	snap := &Record{Type: TypeSnapshot, Sessions: []SessionImage{{
		ID: "s0-1", Scenario: "simplified", Mode: "ADPM", MaxOps: 40,
		Ops: []OpsEntry{{Ops: json.RawMessage(`[{"kind":"verification","problem":"Top"}]`)}},
	}}}
	payload, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	limit := int64(len(EncodeFrame(payload)))

	l, _, err := Open(Options{Dir: t.TempDir(), FS: faultfs.OS{}, Policy: SyncNever, SegmentBytes: limit})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Rotate(snap); err != nil {
		t.Fatal(err)
	}
	if l.SegmentSize() != l.SegmentLimit() {
		t.Fatalf("SegmentSize %d != SegmentLimit %d after snapshot-sized rotation", l.SegmentSize(), l.SegmentLimit())
	}

	// The segment folds back to exactly the snapshot's sessions.
	sessions := map[string]*SessionImage{}
	if err := Fold(sessions, snap); err != nil {
		t.Fatal(err)
	}
	if len(sessions) != 1 || sessions["s0-1"] == nil {
		t.Fatalf("snapshot fold produced %v", fmt.Sprint(sessions))
	}
}
