// Package wal is the per-shard write-ahead log behind durable design
// sessions: a segmented, length+CRC32C-framed record stream of accepted
// state transitions (session creates, operation batches, deletes) plus
// periodic snapshot records that make older segments deletable.
//
// The engine's next-state function δ is deterministic bit for bit (the
// differential corpus and trace reconciliation prove it), so the WAL
// does not serialize engine state at all: a snapshot of a session is
// its generating history — the create parameters and every accepted
// operation batch, in order — and recovery is snapshot-load plus
// deterministic replay of the log tail. Replay cost is bounded by the
// per-session operation budget (teamsim.DefaultMaxOps), and the
// recovered state is byte-identical to the pre-crash one by the same
// argument that makes the differential golden test exact.
package wal

import (
	"encoding/json"
	"fmt"
)

// Record types.
const (
	// TypeCreate logs one accepted session creation.
	TypeCreate = "create"
	// TypeOps logs one accepted (validated, about-to-apply) operation
	// batch. It is written and synced before the batch is applied or
	// acked, so every acknowledged batch is recoverable.
	TypeOps = "ops"
	// TypeDelete logs one session retirement.
	TypeDelete = "delete"
	// TypeSnapshot opens a segment with the full session images of the
	// shard at rotation time; it subsumes every earlier record.
	TypeSnapshot = "snapshot"
	// TypeMoved logs one session migrated away to another pair: the
	// image is replaced by a forwarding tombstone naming the new owner's
	// location, so recovery keeps answering misrouted requests with a
	// redirect instead of resurrecting the abandoned copy.
	TypeMoved = "moved"
	// TypeAdopt logs one session migrated in from another pair: the full
	// image (create parameters + accepted batch history) arrives as one
	// record, installing the session exactly as a snapshot would.
	TypeAdopt = "adopt"
)

// OpsEntry is one accepted operation batch inside a session image: the
// client idempotency key (empty when none was supplied) and the batch
// in its wire encoding (internal/server WireOp JSON), which round-trips
// operations exactly.
type OpsEntry struct {
	Key string          `json:"key,omitempty"`
	Ops json.RawMessage `json:"ops"`
}

// SessionImage is the durable form of one session: the create
// parameters plus the accepted batch history. Replaying the history
// through the same apply path reproduces the session bit for bit.
type SessionImage struct {
	// ID is the hosted session id ("s<shard>-<seq>").
	ID string `json:"id"`
	// Scenario is the built-in scenario name the session was created
	// from, when it was created by name.
	Scenario string `json:"scenario,omitempty"`
	// Source is the raw DDDL source the session was created from, when
	// it was created from source (exactly the client's bytes, so the
	// recovery parse is the creation parse).
	Source string `json:"source,omitempty"`
	// Mode is the transition mode ("ADPM" or "conventional").
	Mode string `json:"mode"`
	// MaxOps is the resolved per-session operation budget.
	MaxOps int `json:"max_ops"`
	// Ops is the accepted batch history in acceptance order.
	Ops []OpsEntry `json:"ops,omitempty"`
	// Moved, when non-empty, marks this image as a forwarding tombstone:
	// the session migrated away and now lives at this location (a pair
	// name or base URL; internal/cluster decides the vocabulary). A
	// tombstone carries no history — only the id and the forwarding
	// address — and survives snapshot rotation like any other image.
	Moved string `json:"moved,omitempty"`
}

// Clone deep-copies the image (the Ops slice is shared-structure
// otherwise; RawMessage payloads are immutable by convention).
func (im *SessionImage) Clone() *SessionImage {
	cp := *im
	cp.Ops = append([]OpsEntry(nil), im.Ops...)
	return &cp
}

// Record is one WAL entry. Exactly one of the type-specific field sets
// is populated, keyed by Type.
type Record struct {
	// Type is one of TypeCreate, TypeOps, TypeDelete, TypeSnapshot.
	Type string `json:"type"`
	// Session is the subject session id (create/ops/delete).
	Session string `json:"session,omitempty"`
	// Create parameters (TypeCreate).
	Scenario string `json:"scenario,omitempty"`
	Source   string `json:"source,omitempty"`
	Mode     string `json:"mode,omitempty"`
	MaxOps   int    `json:"max_ops,omitempty"`
	// Key is the client idempotency key of an ops record.
	Key string `json:"key,omitempty"`
	// Location is the forwarding address of a moved record: where the
	// migrated session now lives.
	Location string `json:"location,omitempty"`
	// Ops is the wire-encoded operation batch of an ops record.
	Ops json.RawMessage `json:"ops,omitempty"`
	// Sessions are the full shard images of a snapshot record.
	Sessions []SessionImage `json:"sessions,omitempty"`
	// NextSeq, on a snapshot record, is the server's session-sequence
	// high-water at rotation time. A snapshot subsumes (and deletes)
	// the segments holding earlier create/delete records, so without it
	// compaction would erase all evidence of a deleted session's id and
	// a recovered server could re-issue it — re-attaching the dead
	// incarnation's idempotency keys and Last-Event-ID positions to an
	// unrelated new session.
	NextSeq uint64 `json:"next_seq,omitempty"`
}

// Fold applies one record to the recovered-session map: create inserts
// an image, ops appends to its history, delete removes it, and snapshot
// replaces the whole map. Fold is the single definition of what the log
// means; Open uses it during recovery and tests use it to state
// expected outcomes.
func Fold(sessions map[string]*SessionImage, rec *Record) error {
	switch rec.Type {
	case TypeCreate:
		if rec.Session == "" {
			return fmt.Errorf("wal: create record without session id")
		}
		if _, ok := sessions[rec.Session]; ok {
			return fmt.Errorf("wal: duplicate create for session %s", rec.Session)
		}
		sessions[rec.Session] = &SessionImage{
			ID:       rec.Session,
			Scenario: rec.Scenario,
			Source:   rec.Source,
			Mode:     rec.Mode,
			MaxOps:   rec.MaxOps,
		}
	case TypeOps:
		im := sessions[rec.Session]
		if im == nil {
			return fmt.Errorf("wal: ops record for unknown session %s", rec.Session)
		}
		if im.Moved != "" {
			return fmt.Errorf("wal: ops record for moved session %s", rec.Session)
		}
		im.Ops = append(im.Ops, OpsEntry{Key: rec.Key, Ops: rec.Ops})
	case TypeDelete:
		if _, ok := sessions[rec.Session]; !ok {
			return fmt.Errorf("wal: delete record for unknown session %s", rec.Session)
		}
		delete(sessions, rec.Session)
	case TypeMoved:
		if _, ok := sessions[rec.Session]; !ok {
			return fmt.Errorf("wal: moved record for unknown session %s", rec.Session)
		}
		if rec.Location == "" {
			return fmt.Errorf("wal: moved record for %s without location", rec.Session)
		}
		sessions[rec.Session] = &SessionImage{ID: rec.Session, Moved: rec.Location}
	case TypeAdopt:
		if len(rec.Sessions) != 1 {
			return fmt.Errorf("wal: adopt record carries %d images, want 1", len(rec.Sessions))
		}
		im := rec.Sessions[0].Clone()
		if im.ID == "" {
			return fmt.Errorf("wal: adopt record without session id")
		}
		if im.Moved != "" {
			return fmt.Errorf("wal: adopt record for %s carries a moved tombstone", im.ID)
		}
		// Adopt replaces whatever is present — most often a prior moved
		// tombstone when a session migrates back, or nothing at all.
		sessions[im.ID] = im
	case TypeSnapshot:
		for id := range sessions {
			delete(sessions, id)
		}
		for i := range rec.Sessions {
			im := rec.Sessions[i].Clone()
			sessions[im.ID] = im
		}
	default:
		return fmt.Errorf("wal: unknown record type %q", rec.Type)
	}
	return nil
}
