package wal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/faultfs"
)

// Framing: every record is [payloadLen uint32 LE][crc32c uint32 LE of
// payload][payload JSON]. The frame is written with a single Write, so
// any crash or short write leaves at most one torn record at the tail
// of the newest segment, which recovery detects (short frame or CRC
// mismatch) and truncates away.
const frameHeader = 8

// MaxRecordBytes bounds one record's payload; a length field past this
// is treated as a torn/corrupt frame, not an allocation request.
const MaxRecordBytes = 16 << 20

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// SyncPolicy selects when appended records reach stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs before every append returns: an acknowledged
	// batch is durable against power loss. Highest latency.
	SyncAlways SyncPolicy = iota
	// SyncInterval group-commits: appends return after the buffered
	// write and a periodic Sync (driven by the log's owner) makes them
	// durable. A crash can lose the last interval's acknowledged
	// batches — but never corrupt the log.
	SyncInterval
	// SyncNever leaves flushing to the OS. Crash durability is whatever
	// the page cache got around to; the log still recovers to a
	// consistent prefix.
	SyncNever
)

// String names the policy as accepted by adpmd's -fsync flag.
func (p SyncPolicy) String() string {
	switch p {
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	default:
		return "always"
	}
}

// ParsePolicy resolves a -fsync flag value.
func ParsePolicy(s string) (SyncPolicy, error) {
	switch s {
	case "", "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	}
	return SyncAlways, fmt.Errorf("wal: unknown fsync policy %q (want always, interval, or never)", s)
}

// ErrBroken reports a log that hit an unrecoverable storage error (a
// failed fsync, or a torn append that could not be truncated away).
// The log fails every subsequent append fast: after an fsync failure
// the page cache state is unknowable, so continuing to ack writes
// would be lying about durability (fail-stop, the post-fsyncgate
// discipline).
var ErrBroken = errors.New("wal: log broken by storage error")

// ShipKind classifies one replication stream event.
type ShipKind int

const (
	// ShipAppend carries one framed record appended to the current
	// segment at Off.
	ShipAppend ShipKind = iota
	// ShipRotate announces a new segment Seg whose head Frame is the
	// rotation snapshot; every older segment is subsumed.
	ShipRotate
	// ShipSync marks a group commit: everything shipped so far for Seg
	// up to Off is durable on the leader.
	ShipSync
)

// String names the kind for traces.
func (k ShipKind) String() string {
	switch k {
	case ShipRotate:
		return "rotate"
	case ShipSync:
		return "sync"
	default:
		return "append"
	}
}

// ShipEvent is one event of the log's replication stream: the exact
// bytes (and position) that just became part of the local log. The
// stream is a byte-faithful mirror — replaying every event against an
// empty directory reproduces the leader's segment files.
type ShipEvent struct {
	Kind ShipKind
	// Seg is the segment index the event applies to.
	Seg int
	// Off is the byte offset of Frame within the segment (ShipAppend),
	// or the durable length after a group commit (ShipSync).
	Off int64
	// Frame is the framed record bytes (ShipAppend: one record;
	// ShipRotate: the new segment's snapshot head). Nil for ShipSync.
	Frame []byte
}

// Options parameterize Open.
type Options struct {
	// Dir is the log directory (one per shard).
	Dir string
	// FS is the filesystem; nil is invalid (callers pass faultfs.OS{}
	// or an injected Fault).
	FS faultfs.FS
	// Policy selects the fsync discipline. SyncAlways when zero.
	Policy SyncPolicy
	// SegmentBytes is advisory for the owner's rotation decision; the
	// log itself only reports SegmentSize. 0 means 4 MiB.
	SegmentBytes int64
	// Ship, when non-nil, observes every successful local mutation in
	// commit order (replication). An error from an append ship
	// propagates out of Append — the record stays in the local log, the
	// caller decides whether to ack (quorum replication refuses to).
	// Errors from rotate/sync ships are the shipper's to absorb: the
	// local rotation already happened and must not be unwound.
	Ship func(ev ShipEvent) error
}

// DefaultSegmentBytes is the rotation threshold when unset.
const DefaultSegmentBytes = 4 << 20

// RecoverInfo summarizes what Open reconstructed.
type RecoverInfo struct {
	// Sessions are the live session images after folding every record.
	Sessions map[string]*SessionImage
	// AllSessions holds every session id mentioned anywhere in the log,
	// including sessions later deleted. The server derives its id
	// sequence high-water from this set, not from the surviving
	// sessions: otherwise create→delete→restart would re-issue a dead
	// session's id, and an idempotency key or Last-Event-ID scoped to
	// the old incarnation would silently apply to the new one.
	AllSessions map[string]bool
	// NextSeq is the highest snapshot-recorded session-sequence
	// high-water seen in the log (0 when no snapshot carried one). It
	// keeps the id high-water alive across compaction, which deletes
	// the segments that mentioned dead session ids.
	NextSeq uint64
	// Segments is the number of segment files scanned.
	Segments int
	// Records is the number of intact records folded.
	Records int
	// Bytes is the total intact record bytes (frames included).
	Bytes int64
	// TornBytes is the size of the truncated torn tail, if any.
	TornBytes int64
}

// Log is one shard's write-ahead log. Not safe for concurrent use; the
// owning shard event loop serializes all calls.
type Log struct {
	fs      faultfs.FS
	dir     string
	policy  SyncPolicy
	segMax  int64
	cur     faultfs.File
	curName string
	curIdx  int
	curSize int64
	dirty   bool // unsynced appends outstanding (interval/never policies)
	broken  error
	ship    func(ev ShipEvent) error
}

const segPattern = "wal-%08d.seg"

// segIndex parses a segment file name; ok is false for foreign files.
func segIndex(name string) (int, bool) {
	var idx int
	if _, err := fmt.Sscanf(name, segPattern, &idx); err != nil {
		return 0, false
	}
	return idx, true
}

// Open scans the log directory, folds every intact record into session
// images, truncates a torn tail off the newest segment, and positions
// the log for appending. A torn or CRC-corrupt record in any segment
// but the newest is real corruption and fails the open; in the newest
// it is the expected signature of a crash mid-append.
func Open(opts Options) (*Log, *RecoverInfo, error) {
	if opts.FS == nil {
		return nil, nil, fmt.Errorf("wal: Options.FS is required")
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if err := opts.FS.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	names, err := opts.FS.ReadDir(opts.Dir)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	var segs []int
	for _, n := range names {
		if idx, ok := segIndex(n); ok {
			segs = append(segs, idx)
		}
	}
	sort.Ints(segs)

	info := &RecoverInfo{Sessions: map[string]*SessionImage{}, AllSessions: map[string]bool{}}
	l := &Log{fs: opts.FS, dir: opts.Dir, policy: opts.Policy, segMax: opts.SegmentBytes, ship: opts.Ship}

	faultfs.Mark(opts.FS, "open")
	lastGood := int64(0)
	for i, idx := range segs {
		name := filepath.Join(opts.Dir, fmt.Sprintf(segPattern, idx))
		data, err := opts.FS.ReadFile(name)
		if err != nil {
			return nil, nil, fmt.Errorf("wal: reading %s: %w", name, err)
		}
		info.Segments++
		final := i == len(segs)-1
		good, recs, err := scanSegment(data, info.Sessions, info.AllSessions, &info.NextSeq)
		if err != nil && !final {
			return nil, nil, fmt.Errorf("wal: segment %s: %w", name, err)
		}
		info.Records += recs
		info.Bytes += good
		if final {
			lastGood = good
			if torn := int64(len(data)) - good; torn > 0 {
				info.TornBytes = torn
				f, terr := opts.FS.OpenFile(name, os.O_WRONLY, 0o644)
				if terr != nil {
					return nil, nil, fmt.Errorf("wal: repairing %s: %w", name, terr)
				}
				if terr := f.Truncate(good); terr != nil {
					f.Close()
					return nil, nil, fmt.Errorf("wal: truncating torn tail of %s: %w", name, terr)
				}
				if terr := f.Sync(); terr != nil {
					f.Close()
					return nil, nil, fmt.Errorf("wal: syncing repaired %s: %w", name, terr)
				}
				if terr := f.Close(); terr != nil {
					return nil, nil, fmt.Errorf("wal: closing repaired %s: %w", name, terr)
				}
			}
		}
	}

	// Position for appends: continue the newest segment, or start the
	// first one.
	idx := 1
	if len(segs) > 0 {
		idx = segs[len(segs)-1]
	}
	name := filepath.Join(opts.Dir, fmt.Sprintf(segPattern, idx))
	f, err := opts.FS.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: opening %s for append: %w", name, err)
	}
	if len(segs) == 0 {
		if err := opts.FS.SyncDir(opts.Dir); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: syncing %s: %w", opts.Dir, err)
		}
	} else {
		// Fsync the inherited tail segment: the previous process may
		// have died with acknowledged-but-unsynced appends still in the
		// page cache, and this process's group commits would otherwise
		// report "nothing dirty" while those inherited bytes stay
		// volatile. Syncing here makes recovery a durability
		// checkpoint — everything this open recovered is durable once
		// Open returns.
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: syncing recovered %s: %w", name, err)
		}
	}
	l.cur, l.curName, l.curIdx, l.curSize = f, name, idx, lastGood
	return l, info, nil
}

// scanSegment folds the intact frame prefix of one segment into
// sessions, noting every session id it sees in all (which may be nil).
// It returns the byte length of that prefix, the record count, and a
// non-nil error when the segment does not end cleanly (torn frame, CRC
// mismatch, or undecodable payload).
func scanSegment(data []byte, sessions map[string]*SessionImage, all map[string]bool, nextSeq *uint64) (int64, int, error) {
	off := int64(0)
	recs := 0
	for int64(len(data))-off >= frameHeader {
		n := int64(binary.LittleEndian.Uint32(data[off:]))
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if n > MaxRecordBytes {
			return off, recs, fmt.Errorf("frame length %d exceeds limit at offset %d", n, off)
		}
		if int64(len(data))-off-frameHeader < n {
			return off, recs, fmt.Errorf("torn frame at offset %d", off)
		}
		payload := data[off+frameHeader : off+frameHeader+n]
		if crc32.Checksum(payload, castagnoli) != crc {
			return off, recs, fmt.Errorf("CRC mismatch at offset %d", off)
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return off, recs, fmt.Errorf("undecodable record at offset %d: %v", off, err)
		}
		if all != nil {
			if rec.Session != "" {
				all[rec.Session] = true
			}
			for i := range rec.Sessions {
				all[rec.Sessions[i].ID] = true
			}
		}
		if nextSeq != nil && rec.NextSeq > *nextSeq {
			*nextSeq = rec.NextSeq
		}
		if err := Fold(sessions, &rec); err != nil {
			return off, recs, err
		}
		off += frameHeader + n
		recs++
	}
	if off != int64(len(data)) {
		return off, recs, fmt.Errorf("torn frame header at offset %d", off)
	}
	return off, recs, nil
}

// EncodeFrame frames one record payload (tests and offline tools).
func EncodeFrame(payload []byte) []byte {
	frame := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, castagnoli))
	copy(frame[frameHeader:], payload)
	return frame
}

// Append frames and writes one record, fsyncing first under SyncAlways.
// It returns the framed byte count. On a write error it repairs the
// torn tail by truncating back; if the repair or an fsync fails the log
// is marked broken and every later Append fails fast with ErrBroken.
func (l *Log) Append(rec *Record) (int, error) {
	if l.broken != nil {
		return 0, l.broken
	}
	faultfs.Mark(l.fs, "append")
	payload, err := json.Marshal(rec)
	if err != nil {
		return 0, fmt.Errorf("wal: encoding record: %w", err)
	}
	if len(payload) > MaxRecordBytes {
		return 0, fmt.Errorf("wal: record of %d bytes exceeds limit", len(payload))
	}
	frame := EncodeFrame(payload)
	off := l.curSize
	if _, werr := l.cur.Write(frame); werr != nil {
		// A short write left a torn tail; cut it back so the in-memory
		// state and the log stay in lockstep.
		if terr := l.cur.Truncate(l.curSize); terr != nil {
			l.broken = fmt.Errorf("%w: write failed (%v) and truncate repair failed (%v)", ErrBroken, werr, terr)
			return 0, l.broken
		}
		if serr := l.cur.Sync(); serr != nil {
			l.broken = fmt.Errorf("%w: write failed (%v) and repair sync failed (%v)", ErrBroken, werr, serr)
			return 0, l.broken
		}
		return 0, fmt.Errorf("wal: append: %w", werr)
	}
	if l.policy == SyncAlways {
		if serr := l.cur.Sync(); serr != nil {
			// Fail-stop: after a failed fsync the kernel may have dropped
			// the dirty pages; acking anything further would be unsound.
			l.broken = fmt.Errorf("%w: fsync failed: %v", ErrBroken, serr)
			return 0, l.broken
		}
	} else {
		l.dirty = true
	}
	l.curSize += int64(len(frame))
	if l.ship != nil {
		// The record is locally logged either way; a ship error tells the
		// caller its durability contract (quorum) is not met, so the
		// batch must not be acked. Recovery treats it like any other
		// logged-but-unacked record.
		if serr := l.ship(ShipEvent{Kind: ShipAppend, Seg: l.curIdx, Off: off, Frame: frame}); serr != nil {
			return len(frame), fmt.Errorf("wal: replication ship: %w", serr)
		}
	}
	return len(frame), nil
}

// Sync flushes outstanding appends (the SyncInterval group commit). A
// failed sync breaks the log (see Append).
func (l *Log) Sync() error {
	if l.broken != nil {
		return l.broken
	}
	if !l.dirty {
		return nil
	}
	faultfs.Mark(l.fs, "sync")
	if err := l.cur.Sync(); err != nil {
		l.broken = fmt.Errorf("%w: fsync failed: %v", ErrBroken, err)
		return l.broken
	}
	l.dirty = false
	if l.ship != nil {
		// Sync ships are advisory (the shipper absorbs errors): the local
		// group commit already happened.
		_ = l.ship(ShipEvent{Kind: ShipSync, Seg: l.curIdx, Off: l.curSize})
	}
	return nil
}

// Position returns the append position: the current segment index and
// its byte length.
func (l *Log) Position() (seg int, off int64) { return l.curIdx, l.curSize }

// Broken returns the sticky storage error, if any.
func (l *Log) Broken() error { return l.broken }

// SegmentSize returns the current segment's byte length.
func (l *Log) SegmentSize() int64 { return l.curSize }

// SegmentLimit returns the configured rotation threshold.
func (l *Log) SegmentLimit() int64 { return l.segMax }

// Rotate starts the next segment with the given snapshot record (the
// caller's full session images), syncs it durable, then removes every
// older segment. A failure before the new segment is durable leaves the
// log on the old segment with the partial new one removed; a failure
// while removing old segments is harmless (recovery folds across
// segments in order) and reported for accounting only.
func (l *Log) Rotate(snapshot *Record) error {
	if l.broken != nil {
		return l.broken
	}
	if err := l.Sync(); err != nil {
		return err
	}
	// Everything from here is the rotation proper: the new segment's
	// data sync is rotate#1, its creation SyncDir rotate#2, and the
	// post-removal SyncDir rotate#3 — the "rotation tail".
	faultfs.Mark(l.fs, "rotate")
	payload, err := json.Marshal(snapshot)
	if err != nil {
		return fmt.Errorf("wal: encoding snapshot: %w", err)
	}
	frame := EncodeFrame(payload)
	nextIdx := l.curIdx + 1
	nextName := filepath.Join(l.dir, fmt.Sprintf(segPattern, nextIdx))
	abort := func(f faultfs.File, stage string, err error) error {
		if f != nil {
			f.Close()
		}
		// A partial next segment must not survive, or a snapshot torn
		// mid-write could later be mistaken for the newest state. The
		// removal must itself be made durable with a directory sync:
		// without it a power cut can resurrect the removed segment, and
		// if its snapshot frame was already fsynced (the abort-on-
		// SyncDir-failure case) recovery would fold that stale snapshot
		// AFTER the old segment's newer appends — silently dropping
		// acknowledged batches. If either step fails the log is broken.
		if rerr := l.fs.Remove(nextName); rerr != nil && !errors.Is(rerr, os.ErrNotExist) {
			l.broken = fmt.Errorf("%w: rotate %s failed (%v) and cleanup failed (%v)", ErrBroken, stage, err, rerr)
			return l.broken
		}
		if serr := l.fs.SyncDir(l.dir); serr != nil {
			l.broken = fmt.Errorf("%w: rotate %s failed (%v) and cleanup syncdir failed (%v)", ErrBroken, stage, err, serr)
			return l.broken
		}
		return fmt.Errorf("wal: rotate %s: %w", stage, err)
	}
	f, err := l.fs.OpenFile(nextName, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return abort(nil, "create", err)
	}
	if _, err := f.Write(frame); err != nil {
		return abort(f, "write", err)
	}
	if err := f.Sync(); err != nil {
		return abort(f, "sync", err)
	}
	if err := l.fs.SyncDir(l.dir); err != nil {
		return abort(f, "syncdir", err)
	}
	old := l.cur
	l.cur, l.curName, l.curIdx, l.curSize = f, nextName, nextIdx, int64(len(frame))
	l.dirty = false
	old.Close()
	// Old segments are subsumed by the snapshot; removal failures cost
	// only disk space.
	var removeErr error
	if names, err := l.fs.ReadDir(l.dir); err == nil {
		for _, n := range names {
			if idx, ok := segIndex(n); ok && idx < nextIdx {
				if err := l.fs.Remove(filepath.Join(l.dir, n)); err != nil && removeErr == nil {
					removeErr = err
				}
			}
		}
	}
	if l.ship != nil {
		// Rotation ships are advisory like sync ships: the new segment is
		// already durable locally and cannot be unwound.
		_ = l.ship(ShipEvent{Kind: ShipRotate, Seg: nextIdx, Frame: frame})
	}
	if removeErr != nil {
		return fmt.Errorf("wal: rotated, but removing old segments: %w", removeErr)
	}
	return l.fs.SyncDir(l.dir)
}

// Close flushes and closes the current segment. The broken flag is
// preserved: closing a broken log reports why it broke.
func (l *Log) Close() error {
	if l.cur == nil {
		return l.broken
	}
	var first error
	if l.broken == nil && l.dirty {
		if err := l.cur.Sync(); err != nil {
			first = err
		}
	}
	if err := l.cur.Close(); err != nil && first == nil {
		first = err
	}
	l.cur = nil
	if l.broken != nil {
		return l.broken
	}
	return first
}

// Abandon drops the log's file handle without flushing anything — the
// simulation's process-kill path. Unsynced appends stay wherever the
// filesystem's volatile view has them (a real page cache would too);
// recovery decides what survives. Abandon never reports an error:
// a killed process does not get to hear one.
func (l *Log) Abandon() {
	if l.cur != nil {
		l.cur.Close()
		l.cur = nil
	}
}

// SegmentFile returns the file name of segment idx ("wal-%08d.seg").
func SegmentFile(idx int) string { return fmt.Sprintf(segPattern, idx) }

// SegmentPath returns the path of segment idx inside dir.
func SegmentPath(dir string, idx int) string {
	return filepath.Join(dir, SegmentFile(idx))
}

// ListSegments returns the segment indexes present in dir, ascending —
// the leader-side read used by replication catch-up (it works on the
// directory alone, with or without an open Log).
func ListSegments(fsys faultfs.FS, dir string) ([]int, error) {
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []int
	for _, n := range names {
		if idx, ok := segIndex(n); ok {
			segs = append(segs, idx)
		}
	}
	sort.Ints(segs)
	return segs, nil
}

// Checksum is the log's CRC (crc32 Castagnoli) over data — exported so
// the replication protocol frames its messages and compares segment
// prefixes with the exact same function recovery trusts.
func Checksum(data []byte) uint32 { return crc32.Checksum(data, castagnoli) }

// ChecksumUpdate extends a running Checksum with more data, so a
// follower can maintain its segment-prefix CRC incrementally.
func ChecksumUpdate(crc uint32, data []byte) uint32 {
	return crc32.Update(crc, castagnoli, data)
}

// ScanFrames parses raw segment bytes into per-record frame lengths —
// the chaos harness uses this to enumerate every record boundary of a
// generated log. The bool reports whether the bytes end cleanly.
func ScanFrames(data []byte) (frames []int, clean bool) {
	off := 0
	for len(data)-off >= frameHeader {
		n := int(binary.LittleEndian.Uint32(data[off:]))
		if int64(n) > MaxRecordBytes || len(data)-off-frameHeader < n {
			return frames, false
		}
		payload := data[off+frameHeader : off+frameHeader+n]
		if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(data[off+4:]) {
			return frames, false
		}
		frames = append(frames, frameHeader+n)
		off += frameHeader + n
	}
	return frames, off == len(data)
}
