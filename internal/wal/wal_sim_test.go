package wal

import (
	"path/filepath"
	"testing"

	"repro/internal/faultfs"
)

// TestRecoverInfoAllSessions: a deleted session vanishes from the fold
// but its id must still be reported, so the server never re-issues it.
func TestRecoverInfoAllSessions(t *testing.T) {
	m := faultfs.NewMemFS()
	dir := "wal"
	l, _, err := Open(Options{Dir: dir, FS: m})
	if err != nil {
		t.Fatal(err)
	}
	records := []*Record{
		{Type: TypeCreate, Session: "s0-0", Scenario: "sensor", Mode: "ADPM", MaxOps: 8},
		{Type: TypeDelete, Session: "s0-0"},
		{Type: TypeCreate, Session: "s0-4", Scenario: "sensor", Mode: "ADPM", MaxOps: 8},
	}
	for _, r := range records {
		if _, err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, info, err := Open(Options{Dir: dir, FS: m})
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Sessions) != 1 || info.Sessions["s0-4"] == nil {
		t.Fatalf("surviving sessions: %v", info.Sessions)
	}
	if !info.AllSessions["s0-0"] || !info.AllSessions["s0-4"] || len(info.AllSessions) != 2 {
		t.Fatalf("AllSessions = %v, want both ids including the deleted one", info.AllSessions)
	}
}

// TestAllSessionsFromSnapshot: snapshot images count toward AllSessions
// too (after rotation the create records are gone).
func TestAllSessionsFromSnapshot(t *testing.T) {
	m := faultfs.NewMemFS()
	dir := "wal"
	l, _, err := Open(Options{Dir: dir, FS: m})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(&Record{Type: TypeCreate, Session: "s0-8", Mode: "ADPM", Scenario: "sensor", MaxOps: 8}); err != nil {
		t.Fatal(err)
	}
	snap := &Record{Type: TypeSnapshot, Sessions: []SessionImage{
		{ID: "s0-8", Scenario: "sensor", Mode: "ADPM", MaxOps: 8},
	}}
	if err := l.Rotate(snap); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, info, err := Open(Options{Dir: dir, FS: m})
	if err != nil {
		t.Fatal(err)
	}
	if !info.AllSessions["s0-8"] {
		t.Fatalf("AllSessions = %v, want snapshot image id", info.AllSessions)
	}
}

// TestAbandonSkipsFlush: Abandon under SyncInterval leaves unsynced
// appends volatile; a power cut then loses them, while Close would have
// flushed. The MemFS durable/volatile split makes the distinction
// observable.
func TestAbandonSkipsFlush(t *testing.T) {
	m := faultfs.NewMemFS()
	dir := "wal"
	l, _, err := Open(Options{Dir: dir, FS: m})
	if err != nil {
		t.Fatal(err)
	}
	// Opening the first segment dir-syncs it, so the file survives a
	// crash; its unsynced content does not.
	if _, err := l.Append(&Record{Type: TypeCreate, Session: "s0-0", Mode: "ADPM", Scenario: "sensor", MaxOps: 8}); err != nil {
		t.Fatal(err)
	}
	// SyncAlways is the default policy — reopen under interval to hold
	// bytes volatile.
	l.Close()
	l, _, err = Open(Options{Dir: dir, FS: m, Policy: SyncInterval})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(&Record{Type: TypeOps, Session: "s0-0", Ops: []byte(`[]`)}); err != nil {
		t.Fatal(err)
	}
	l.Abandon()
	crashed := m.Clone()
	crashed.Crash()
	seg := filepath.Join(dir, "wal-00000001.seg")
	vol, _ := m.ReadFile(seg)
	dur, err := crashed.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if len(dur) >= len(vol) {
		t.Fatalf("abandoned log fully durable (%d of %d bytes); Abandon must not flush", len(dur), len(vol))
	}
	sessions := map[string]*SessionImage{}
	good, recs, serr := scanSegment(dur, sessions, nil, nil)
	if serr != nil {
		t.Fatalf("durable prefix does not scan cleanly: %v (good=%d recs=%d)", serr, good, recs)
	}
	if recs != 1 {
		t.Fatalf("durable prefix holds %d records, want just the synced create", recs)
	}
}

// TestOpSyncMarks: the WAL labels its storage operations so faults can
// address "the Nth sync within an append/rotate" instead of a global
// ordinal.
func TestOpSyncMarks(t *testing.T) {
	m := faultfs.NewMemFS()
	type mark struct {
		op  string
		nth int
	}
	var trail []mark
	ff := &faultfs.Fault{Inner: m, OnOpSync: func(op string, nth int, name string) error {
		trail = append(trail, mark{op, nth})
		return nil
	}}
	dir := "wal"
	l, _, err := Open(Options{Dir: dir, FS: ff, SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(&Record{Type: TypeCreate, Session: "s0-0", Mode: "ADPM", Scenario: "sensor", MaxOps: 8}); err != nil {
		t.Fatal(err)
	}
	if err := l.Rotate(&Record{Type: TypeSnapshot}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	want := []mark{
		{"open", 1},   // first-segment creation SyncDir
		{"append", 1}, // SyncAlways fsync
		{"rotate", 1}, // new segment data sync
		{"rotate", 2}, // new segment creation SyncDir
		{"rotate", 3}, // rotation tail: post-removal SyncDir
	}
	if len(trail) != len(want) {
		t.Fatalf("sync trail %v, want %v", trail, want)
	}
	for i := range want {
		if trail[i] != want[i] {
			t.Fatalf("sync trail %v, want %v", trail, want)
		}
	}
}
