package wal

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/faultfs"
)

func openT(t *testing.T, dir string, policy SyncPolicy) (*Log, *RecoverInfo) {
	t.Helper()
	l, info, err := Open(Options{Dir: dir, FS: faultfs.OS{}, Policy: policy})
	if err != nil {
		t.Fatalf("open %s: %v", dir, err)
	}
	return l, info
}

func createRec(id string) *Record {
	return &Record{Type: TypeCreate, Session: id, Scenario: "simplified", Mode: "ADPM", MaxOps: 100}
}

func opsRec(id, key string) *Record {
	return &Record{Type: TypeOps, Session: id, Key: key, Ops: json.RawMessage(`[{"kind":"verification","problem":"P"}]`)}
}

func segPath(dir string, idx int) string {
	return filepath.Join(dir, fmt.Sprintf(segPattern, idx))
}

func TestAppendReopenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, info := openT(t, dir, SyncAlways)
	if len(info.Sessions) != 0 || info.Records != 0 {
		t.Fatalf("fresh dir recovered %+v", info)
	}
	recs := []*Record{
		createRec("s0-0"),
		opsRec("s0-0", "k1"),
		opsRec("s0-0", ""),
		createRec("s0-1"),
		{Type: TypeDelete, Session: "s0-1"},
	}
	total := 0
	for _, r := range recs {
		n, err := l.Append(r)
		if err != nil {
			t.Fatalf("append %s: %v", r.Type, err)
		}
		total += n
	}
	if got := l.SegmentSize(); got != int64(total) {
		t.Errorf("SegmentSize = %d, want %d", got, total)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, info2 := openT(t, dir, SyncAlways)
	defer l2.Close()
	if info2.Records != len(recs) || info2.TornBytes != 0 {
		t.Errorf("recovered %d records (%d torn bytes), want %d/0", info2.Records, info2.TornBytes, len(recs))
	}
	if len(info2.Sessions) != 1 {
		t.Fatalf("recovered sessions %v, want only s0-0", info2.Sessions)
	}
	im := info2.Sessions["s0-0"]
	if im == nil || len(im.Ops) != 2 || im.Ops[0].Key != "k1" || im.Ops[1].Key != "" {
		t.Errorf("recovered image %+v, want 2 batches with keys [k1, \"\"]", im)
	}
	if im.Scenario != "simplified" || im.MaxOps != 100 {
		t.Errorf("create parameters lost: %+v", im)
	}
}

// TestTornTailEveryPrefix is the record-boundary crash matrix at the log
// layer: truncating the segment at every byte offset must recover
// exactly the records whose frames lie wholly before the cut, and leave
// the log appendable.
func TestTornTailEveryPrefix(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, SyncAlways)
	for i := 0; i < 4; i++ {
		if i == 0 {
			if _, err := l.Append(createRec("s0-0")); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if _, err := l.Append(opsRec("s0-0", fmt.Sprintf("k%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(segPath(dir, 1))
	if err != nil {
		t.Fatal(err)
	}
	frames, clean := ScanFrames(data)
	if !clean || len(frames) != 4 {
		t.Fatalf("ScanFrames: %d frames, clean=%v, want 4/true", len(frames), clean)
	}

	for cut := 0; cut <= len(data); cut++ {
		// How many whole frames survive a cut at this offset?
		want, off := 0, 0
		for _, fl := range frames {
			if off+fl <= cut {
				want++
				off += fl
			}
		}
		sub := t.TempDir()
		if err := os.WriteFile(segPath(sub, 1), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l2, info := openT(t, sub, SyncAlways)
		if info.Records != want {
			t.Fatalf("cut at %d: recovered %d records, want %d", cut, info.Records, want)
		}
		if wantTorn := int64(cut - off); info.TornBytes != wantTorn {
			t.Errorf("cut at %d: torn bytes %d, want %d", cut, info.TornBytes, wantTorn)
		}
		// The repaired log must accept appends and recover them.
		if want == 0 {
			if _, err := l2.Append(createRec("s0-0")); err != nil {
				t.Fatalf("cut at %d: append after repair: %v", cut, err)
			}
		} else if _, err := l2.Append(opsRec("s0-0", "post")); err != nil {
			t.Fatalf("cut at %d: append after repair: %v", cut, err)
		}
		if err := l2.Close(); err != nil {
			t.Fatal(err)
		}
		_, info2 := openT(t, sub, SyncAlways)
		if info2.Records != want+1 || info2.TornBytes != 0 {
			t.Errorf("cut at %d: reopen after repair+append recovered %d records (%d torn), want %d/0",
				cut, info2.Records, info2.TornBytes, want+1)
		}
	}
}

func TestCorruptMiddleSegmentFailsOpen(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, SyncAlways)
	if _, err := l.Append(createRec("s0-0")); err != nil {
		t.Fatal(err)
	}
	if err := l.Rotate(&Record{Type: TypeSnapshot, Sessions: []SessionImage{{ID: "s0-0", Scenario: "simplified", Mode: "ADPM", MaxOps: 100}}}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Fabricate an older segment with a corrupt byte: corruption in a
	// non-final segment is unexplainable by a crash and must fail open.
	if err := os.WriteFile(segPath(dir, 1), []byte("garbage that is long enough to look like a frame"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := Open(Options{Dir: dir, FS: faultfs.OS{}})
	if err == nil {
		t.Fatal("open accepted a corrupt non-final segment")
	}
}

func TestRotateCompactsAndRemovesOldSegments(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, SyncAlways)
	if _, err := l.Append(createRec("s0-0")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := l.Append(opsRec("s0-0", "")); err != nil {
			t.Fatal(err)
		}
	}
	snap := &Record{Type: TypeSnapshot, Sessions: []SessionImage{{
		ID: "s0-0", Scenario: "simplified", Mode: "ADPM", MaxOps: 100,
		Ops: []OpsEntry{{Ops: json.RawMessage(`[{"kind":"verification","problem":"P"}]`)}},
	}}}
	if err := l.Rotate(snap); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(segPath(dir, 1)); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("old segment survived rotation: %v", err)
	}
	if _, err := l.Append(opsRec("s0-0", "after")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, info := openT(t, dir, SyncAlways)
	if info.Segments != 1 {
		t.Errorf("scanned %d segments after rotation, want 1", info.Segments)
	}
	im := info.Sessions["s0-0"]
	if im == nil || len(im.Ops) != 2 {
		t.Fatalf("recovered image %+v, want snapshot batch + post-rotation batch", im)
	}
	if im.Ops[1].Key != "after" {
		t.Errorf("post-rotation batch lost: %+v", im.Ops)
	}
}

func TestBrokenLogFailsFast(t *testing.T) {
	dir := t.TempDir()
	var failSyncs bool
	fsys := &faultfs.Fault{OnSync: func(n int, name string) error {
		if failSyncs && strings.HasSuffix(name, ".seg") {
			return faultfs.ErrInjected
		}
		return nil
	}}
	l, _, err := Open(Options{Dir: dir, FS: fsys, Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(createRec("s0-0")); err != nil {
		t.Fatal(err)
	}
	failSyncs = true
	if _, err := l.Append(opsRec("s0-0", "")); !errors.Is(err, ErrBroken) {
		t.Fatalf("append with failing fsync: %v, want ErrBroken", err)
	}
	failSyncs = false
	if _, err := l.Append(opsRec("s0-0", "")); !errors.Is(err, ErrBroken) {
		t.Fatalf("append on broken log: %v, want sticky ErrBroken", err)
	}
	if l.Broken() == nil {
		t.Error("Broken() = nil on a broken log")
	}
	if err := l.Close(); !errors.Is(err, ErrBroken) {
		t.Errorf("Close on broken log: %v, want ErrBroken", err)
	}
}

// TestShortWriteRepairedInPlace: a failed append whose torn tail is
// truncated away leaves the log usable, and the on-disk bytes never
// show the half-written record.
func TestShortWriteRepairedInPlace(t *testing.T) {
	dir := t.TempDir()
	target := 0
	n := 0
	fsys := &faultfs.Fault{OnWrite: func(i int, name string, b []byte) (int, error) {
		n = i
		if i == target {
			return len(b) / 2, nil // short write, default ErrInjected
		}
		return len(b), nil
	}}
	l, _, err := Open(Options{Dir: dir, FS: fsys, Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(createRec("s0-0")); err != nil {
		t.Fatal(err)
	}
	target = n + 1
	if _, err := l.Append(opsRec("s0-0", "torn")); err == nil || errors.Is(err, ErrBroken) {
		t.Fatalf("short-written append: %v, want plain (non-broken) error", err)
	}
	if l.Broken() != nil {
		t.Fatalf("repairable short write broke the log: %v", l.Broken())
	}
	target = 0
	if _, err := l.Append(opsRec("s0-0", "good")); err != nil {
		t.Fatalf("append after repair: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, info := openT(t, dir, SyncAlways)
	if info.TornBytes != 0 || info.Records != 2 {
		t.Errorf("recovered %d records (%d torn bytes), want 2/0 — repair left debris", info.Records, info.TornBytes)
	}
	im := info.Sessions["s0-0"]
	if im == nil || len(im.Ops) != 1 || im.Ops[0].Key != "good" {
		t.Errorf("recovered image %+v, want only the post-repair batch", im)
	}
}

func TestFoldErrors(t *testing.T) {
	sess := map[string]*SessionImage{}
	if err := Fold(sess, createRec("a")); err != nil {
		t.Fatal(err)
	}
	if err := Fold(sess, createRec("a")); err == nil {
		t.Error("duplicate create folded")
	}
	if err := Fold(sess, opsRec("missing", "")); err == nil {
		t.Error("ops for unknown session folded")
	}
	if err := Fold(sess, &Record{Type: TypeDelete, Session: "missing"}); err == nil {
		t.Error("delete for unknown session folded")
	}
	if err := Fold(sess, &Record{Type: "bogus"}); err == nil {
		t.Error("unknown record type folded")
	}
	if err := Fold(sess, &Record{Type: TypeSnapshot, Sessions: []SessionImage{{ID: "b"}}}); err != nil {
		t.Fatal(err)
	}
	if _, ok := sess["a"]; ok {
		t.Error("snapshot did not replace the session map")
	}
	if _, ok := sess["b"]; !ok {
		t.Error("snapshot session missing after fold")
	}
}

func TestParsePolicy(t *testing.T) {
	for in, want := range map[string]SyncPolicy{
		"": SyncAlways, "always": SyncAlways, "interval": SyncInterval, "never": SyncNever,
	} {
		got, err := ParsePolicy(in)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
		if in != "" && got.String() != in {
			t.Errorf("String/Parse round trip broken for %q: %q", in, got.String())
		}
	}
	if _, err := ParsePolicy("sometimes"); err == nil {
		t.Error("ParsePolicy accepted nonsense")
	}
}

func BenchmarkAppend(b *testing.B) {
	for _, policy := range []SyncPolicy{SyncNever, SyncAlways} {
		b.Run(policy.String(), func(b *testing.B) {
			dir := b.TempDir()
			l, _, err := Open(Options{Dir: dir, FS: faultfs.OS{}, Policy: policy})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			rec := opsRec("s0-0", "key")
			if _, err := l.Append(createRec("s0-0")); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := l.Append(rec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
