#!/usr/bin/env bash
# Runs the propagation-engine benchmarks and writes BENCH_propagation.json
# at the repo root: one record per benchmark with ns/op, B/op, and
# allocs/op (mean over -count runs), plus a size-sweep section from
# BenchmarkPropagateScale (grid/layers/hub/sparse × 10²..10⁵ properties)
# and parallel/incremental engine comparisons. Also runs the server/WAL
# durability benchmarks and writes BENCH_server.json — BenchmarkApply
# compares the in-memory accepted-op path against the durable path under
# each fsync policy (the delta is the WAL append overhead),
# BenchmarkAppend isolates the raw framed-record append per policy, and
# BenchmarkState compares the generation-keyed snapshot cache's hit path
# (zero serialization) against a full state rebuild per read.
#
# Finally it runs a hermetic adpmload pass (in-process server, fixed
# seed, oracle on) and leaves its per-endpoint latency report in
# BENCH_load.json.
#
# The script exits non-zero if any expected benchmark is missing from
# the `go test -bench` output (a renamed or deleted benchmark must not
# silently drop out of the artifact).
#
# Usage: scripts/bench.sh [count] [sweep_count]
#   count        benchmark repetitions per entry (default 6)
#   sweep_count  repetitions for the size sweep (default min(count, 3):
#                the 10⁵ points are seconds per iteration)
set -euo pipefail

cd "$(dirname "$0")/.."
COUNT="${1:-6}"
SWEEP_COUNT="${2:-$(( COUNT < 3 ? COUNT : 3 ))}"
PATTERN='BenchmarkFig7Profile|BenchmarkMovementWindow|BenchmarkPropagate$|BenchmarkRunSimplified'
SWEEP_PATTERN='BenchmarkPropagateScale|BenchmarkPropagateParallel|BenchmarkPropagateIncremental'
OUT=BENCH_propagation.json

RAW="$(mktemp)"
SWEEP_RAW="$(mktemp)"
trap 'rm -f "$RAW" "$SWEEP_RAW"' EXIT

# require_bench RAWFILE NAME... — fail loudly when an expected benchmark
# is absent from the raw output (e.g. renamed, deleted, or filtered out).
# A name matches itself, any -GOMAXPROCS suffix, and any sub-benchmark.
require_bench() {
    local raw="$1" missing=0
    shift
    for name in "$@"; do
        if ! grep -Eq "^${name}([/-][^ 	]*)?[[:space:]]" "$raw"; then
            echo "bench.sh: expected benchmark missing from output: $name" >&2
            missing=1
        fi
    done
    if [ "$missing" -ne 0 ]; then
        echo "bench.sh: refusing to write an incomplete $OUT" >&2
        exit 1
    fi
}

go test -run '^$' -bench "$PATTERN" -benchmem -count "$COUNT" . | tee "$RAW"
require_bench "$RAW" \
    BenchmarkFig7Profile \
    BenchmarkPropagate \
    BenchmarkMovementWindow \
    BenchmarkRunSimplified/conventional \
    BenchmarkRunSimplified/adpm

# Size sweep: one short benchtime pass — the large points run seconds
# per iteration, and network construction is cached across -count runs.
go test -run '^$' -bench "$SWEEP_PATTERN" -benchmem -benchtime 100ms \
    -count "$SWEEP_COUNT" -timeout 60m . | tee "$SWEEP_RAW"
sweep_expected=()
for fam in grid layers hub sparse; do
    for n in 100 1000 10000 100000; do
        sweep_expected+=("BenchmarkPropagateScale/$fam/n=$n")
    done
done
require_bench "$SWEEP_RAW" "${sweep_expected[@]}" \
    BenchmarkPropagateParallel/p=1 \
    BenchmarkPropagateParallel/p=2 \
    BenchmarkPropagateIncremental/full-after-edit \
    BenchmarkPropagateIncremental/incremental-after-edit

awk -v out="$OUT" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip -GOMAXPROCS suffix if present
    # fields: name iters ns/op ... B/op ... allocs/op (custom metrics between)
    ns = ""; bytes = ""; allocs = ""; p50 = ""; p99 = ""
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op")     ns = $i
        if ($(i+1) == "B/op")      bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
        if ($(i+1) == "p50-ns")    p50 = $i
        if ($(i+1) == "p99-ns")    p99 = $i
    }
    if (ns != "") {
        if (!(name in n)) { order[++nnames] = name }
        nsum[name] += ns; n[name]++
    }
    if (bytes != "")  { bsum[name] += bytes }
    if (allocs != "") { asum[name] += allocs }
    if (p50 != "")    { p50sum[name] += p50 }
    if (p99 != "")    { p99sum[name] += p99 }
}
function emit(name, extra,    s) {
    s = sprintf("    {\"name\": \"%s\", %s\"runs\": %d, \"ns_per_op\": %.0f", \
        name, extra, n[name], nsum[name]/n[name])
    if (name in p50sum)
        s = s sprintf(", \"p50_ns\": %.0f, \"p99_ns\": %.0f", \
            p50sum[name]/n[name], p99sum[name]/n[name])
    s = s sprintf(", \"bytes_per_op\": %.0f, \"allocs_per_op\": %.1f}", \
        bsum[name]/n[name], asum[name]/n[name])
    return s
}
function section(title, pat, famfield,    i, name, first, extra, parts) {
    printf "  \"%s\": [\n", title >> out
    first = 1
    for (i = 1; i <= nnames; i++) {
        name = order[i]
        if (name !~ pat) continue
        extra = ""
        if (famfield) {
            split(name, parts, "/")
            extra = sprintf("\"family\": \"%s\", \"n\": %d, ", parts[2], substr(parts[3], 3))
        }
        if (!first) printf ",\n" >> out
        first = 0
        printf "%s", emit(name, extra) >> out
    }
    printf "\n  ],\n" >> out
}
END {
    printf "{\n  \"benchmarks\": [\n" > out
    first = 1
    for (i = 1; i <= nnames; i++) {
        name = order[i]
        if (name ~ /^BenchmarkPropagate(Scale|Parallel|Incremental)\//) continue
        if (!first) printf ",\n" >> out
        first = 0
        printf "%s", emit(name, "") >> out
    }
    printf "\n  ],\n" >> out
    section("size_sweep", "^BenchmarkPropagateScale\\/", 1)
    section("parallel", "^BenchmarkPropagateParallel\\/", 0)
    section("incremental", "^BenchmarkPropagateIncremental\\/", 0)
    # Seed baseline (commit 6693656, pre interning/scratch-reuse), same
    # machine class; kept here so regenerated files retain the comparison.
    printf "  \"baseline_seed\": [\n" >> out
    printf "    {\"name\": \"BenchmarkFig7Profile\", \"ns_per_op\": 2413584, \"bytes_per_op\": 851601, \"allocs_per_op\": 20361},\n" >> out
    printf "    {\"name\": \"BenchmarkPropagate\", \"ns_per_op\": 135882, \"bytes_per_op\": 37662, \"allocs_per_op\": 681},\n" >> out
    printf "    {\"name\": \"BenchmarkMovementWindow\", \"ns_per_op\": 161065, \"bytes_per_op\": 65256, \"allocs_per_op\": 804},\n" >> out
    printf "    {\"name\": \"BenchmarkRunSimplified/conventional\", \"ns_per_op\": 1510785, \"bytes_per_op\": 508947, \"allocs_per_op\": 15087},\n" >> out
    printf "    {\"name\": \"BenchmarkRunSimplified/adpm\", \"ns_per_op\": 880190, \"bytes_per_op\": 273817, \"allocs_per_op\": 5358}\n" >> out
    printf "  ]\n}\n" >> out
}' "$RAW" "$SWEEP_RAW"

echo "wrote $OUT"

SRV_PATTERN='BenchmarkApply|BenchmarkAppend|BenchmarkState'
SRV_OUT=BENCH_server.json

go test -run '^$' -bench "$SRV_PATTERN" -benchmem -count "$COUNT" \
    ./internal/server/ ./internal/wal/ | tee "$RAW"
require_bench "$RAW" BenchmarkApply BenchmarkAppend BenchmarkState

awk -v out="$SRV_OUT" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op")     ns = $i
        if ($(i+1) == "B/op")      bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (ns != "")     { nsum[name] += ns;     n[name]++ }
    if (bytes != "")  { bsum[name] += bytes }
    if (allocs != "") { asum[name] += allocs }
}
END {
    printf "{\n  \"benchmarks\": [\n" > out
    first = 1
    for (name in n) {
        if (!first) printf ",\n" >> out
        first = 0
        printf "    {\"name\": \"%s\", \"runs\": %d, \"ns_per_op\": %.0f, \"bytes_per_op\": %.0f, \"allocs_per_op\": %.1f}", \
            name, n[name], nsum[name]/n[name], bsum[name]/n[name], asum[name]/n[name] >> out
    }
    printf "\n  ]\n}\n" >> out
}' "$RAW"

echo "wrote $SRV_OUT"

# Load/capacity report: hermetic (in-process server), fixed seed, one
# closed-loop pass with the sequential oracle cross-check on.
go run ./cmd/adpmload -hermetic -seed 1 -clients 8 -sessions 2 \
    -out BENCH_load.json >/dev/null

echo "wrote BENCH_load.json"
