#!/usr/bin/env bash
# Runs the propagation-engine benchmarks and writes BENCH_propagation.json
# at the repo root: one record per benchmark with ns/op, B/op, and
# allocs/op (mean over -count runs). Also runs the server/WAL durability
# benchmarks and writes BENCH_server.json — BenchmarkApply compares the
# in-memory accepted-op path against the durable path under each fsync
# policy (the delta is the WAL append overhead), and BenchmarkAppend
# isolates the raw framed-record append per policy.
#
# Finally it runs a hermetic adpmload pass (in-process server, fixed
# seed, oracle on) and leaves its per-endpoint latency report in
# BENCH_load.json.
#
# Usage: scripts/bench.sh [count]
#   count  benchmark repetitions per entry (default 6)
set -euo pipefail

cd "$(dirname "$0")/.."
COUNT="${1:-6}"
PATTERN='BenchmarkFig7Profile|BenchmarkMovementWindow|BenchmarkPropagate$|BenchmarkRunSimplified'
OUT=BENCH_propagation.json

RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run '^$' -bench "$PATTERN" -benchmem -count "$COUNT" . | tee "$RAW"

awk -v out="$OUT" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip -GOMAXPROCS suffix if present
    # fields: name iters ns/op ... B/op ... allocs/op (custom metrics between)
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op")     ns = $i
        if ($(i+1) == "B/op")      bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (ns != "")     { nsum[name] += ns;     n[name]++ }
    if (bytes != "")  { bsum[name] += bytes }
    if (allocs != "") { asum[name] += allocs }
}
END {
    printf "{\n  \"benchmarks\": [\n" > out
    first = 1
    for (name in n) {
        if (!first) printf ",\n" >> out
        first = 0
        printf "    {\"name\": \"%s\", \"runs\": %d, \"ns_per_op\": %.0f, \"bytes_per_op\": %.0f, \"allocs_per_op\": %.1f}", \
            name, n[name], nsum[name]/n[name], bsum[name]/n[name], asum[name]/n[name] >> out
    }
    printf "\n  ],\n" >> out
    # Seed baseline (commit 6693656, pre interning/scratch-reuse), same
    # machine class; kept here so regenerated files retain the comparison.
    printf "  \"baseline_seed\": [\n" >> out
    printf "    {\"name\": \"BenchmarkFig7Profile\", \"ns_per_op\": 2413584, \"bytes_per_op\": 851601, \"allocs_per_op\": 20361},\n" >> out
    printf "    {\"name\": \"BenchmarkPropagate\", \"ns_per_op\": 135882, \"bytes_per_op\": 37662, \"allocs_per_op\": 681},\n" >> out
    printf "    {\"name\": \"BenchmarkMovementWindow\", \"ns_per_op\": 161065, \"bytes_per_op\": 65256, \"allocs_per_op\": 804},\n" >> out
    printf "    {\"name\": \"BenchmarkRunSimplified/conventional\", \"ns_per_op\": 1510785, \"bytes_per_op\": 508947, \"allocs_per_op\": 15087},\n" >> out
    printf "    {\"name\": \"BenchmarkRunSimplified/adpm\", \"ns_per_op\": 880190, \"bytes_per_op\": 273817, \"allocs_per_op\": 5358}\n" >> out
    printf "  ]\n}\n" >> out
}' "$RAW"

echo "wrote $OUT"

SRV_PATTERN='BenchmarkApply|BenchmarkAppend'
SRV_OUT=BENCH_server.json

go test -run '^$' -bench "$SRV_PATTERN" -benchmem -count "$COUNT" \
    ./internal/server/ ./internal/wal/ | tee "$RAW"

awk -v out="$SRV_OUT" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op")     ns = $i
        if ($(i+1) == "B/op")      bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (ns != "")     { nsum[name] += ns;     n[name]++ }
    if (bytes != "")  { bsum[name] += bytes }
    if (allocs != "") { asum[name] += allocs }
}
END {
    printf "{\n  \"benchmarks\": [\n" > out
    first = 1
    for (name in n) {
        if (!first) printf ",\n" >> out
        first = 0
        printf "    {\"name\": \"%s\", \"runs\": %d, \"ns_per_op\": %.0f, \"bytes_per_op\": %.0f, \"allocs_per_op\": %.1f}", \
            name, n[name], nsum[name]/n[name], bsum[name]/n[name], asum[name]/n[name] >> out
    }
    printf "\n  ]\n}\n" >> out
}' "$RAW"

echo "wrote $SRV_OUT"

# Load/capacity report: hermetic (in-process server), fixed seed, one
# closed-loop pass with the sequential oracle cross-check on.
go run ./cmd/adpmload -hermetic -seed 1 -clients 8 -sessions 2 \
    -out BENCH_load.json >/dev/null

echo "wrote BENCH_load.json"
